//! End-to-end smoke tests of the real CLI binaries (spawned processes,
//! exactly as a user would run them).

use std::path::PathBuf;
use std::process::Command;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("plssvm_bin_smoke").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let exe = match bin {
        "svm-train" => env!("CARGO_BIN_EXE_svm-train"),
        "svm-predict" => env!("CARGO_BIN_EXE_svm-predict"),
        "svm-scale" => env!("CARGO_BIN_EXE_svm-scale"),
        "generate-data" => env!("CARGO_BIN_EXE_generate-data"),
        _ => panic!("unknown binary {bin}"),
    };
    let out = Command::new(exe).args(args).output().expect("spawn");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_pipeline_through_the_binaries() {
    let dir = tmpdir("pipeline");
    let data = dir.join("train.dat");
    let scaled = dir.join("scaled.dat");
    let model = dir.join("train.model");
    let preds = dir.join("preds.txt");

    // generate
    let (ok, stdout, stderr) = run(
        "generate-data",
        &[
            "--points",
            "80",
            "--features",
            "6",
            "--seed",
            "4",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("80 points"), "{stdout}");

    // scale (stdout → file)
    let (ok, scaled_content, stderr) = run(
        "svm-scale",
        &["-l", "-1", "-u", "1", data.to_str().unwrap()],
    );
    assert!(ok, "{stderr}");
    std::fs::write(&scaled, &scaled_content).unwrap();
    assert_eq!(scaled_content.lines().count(), 80);

    // train on the simulated GPU
    let (ok, stdout, stderr) = run(
        "svm-train",
        &[
            "-e",
            "1e-8",
            "--backend",
            "cuda",
            "-n",
            "2",
            scaled.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("simulated device time"), "{stdout}");
    assert!(model.exists());

    // predict
    let (ok, stdout, stderr) = run(
        "svm-predict",
        &[
            scaled.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Accuracy"), "{stdout}");
    let acc: f64 = stdout
        .split('=')
        .nth(1)
        .unwrap()
        .trim()
        .split('%')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(acc >= 97.0, "{stdout}");
    assert_eq!(std::fs::read_to_string(&preds).unwrap().lines().count(), 80);
}

#[test]
fn fault_injected_training_through_the_binary() {
    let dir = tmpdir("fault");
    let data = dir.join("train.dat");
    let model = dir.join("train.model");
    let metrics = dir.join("metrics.jsonl");
    let (ok, _, stderr) = run(
        "generate-data",
        &[
            "--points",
            "60",
            "--features",
            "8",
            "--seed",
            "21",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");

    // fail-stop device 1 of 4 mid-solve, with transient noise and
    // periodic CG checkpoints; training must still converge
    let (ok, stdout, stderr) = run(
        "svm-train",
        &[
            "-e",
            "1e-8",
            "--backend",
            "cuda",
            "-n",
            "4",
            "--fault-plan",
            "fail:1@4;transient:3@1x2",
            "--checkpoint-every",
            "4",
            "--metrics-out",
            metrics.to_str().unwrap(),
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("converged: true"), "{stdout}");
    assert!(stdout.contains("training accuracy"), "{stdout}");
    assert!(model.exists());

    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"type\":\"recovery\""), "{json}");
    assert!(json.contains("\"kind\":\"failover\""), "{json}");
    assert!(json.contains("\"kind\":\"retry\""), "{json}");
    assert!(json.contains("\"kind\":\"checkpoint\""), "{json}");

    // a malformed plan is a usage error, not a crash
    let (ok, _, stderr) = run(
        "svm-train",
        &[
            "--backend",
            "cuda",
            "--fault-plan",
            "explode:0@1",
            data.to_str().unwrap(),
        ],
    );
    assert!(!ok);
    assert!(stderr.contains("fault"), "{stderr}");
}

/// Like [`run`], with extra environment variables set for the child —
/// the only race-free way to test `PLSSVM_FORCE_ISA` (mutating the
/// parent's environment would leak across parallel tests).
fn run_env(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let exe = match bin {
        "svm-train" => env!("CARGO_BIN_EXE_svm-train"),
        "svm-predict" => env!("CARGO_BIN_EXE_svm-predict"),
        _ => panic!("unknown binary {bin}"),
    };
    let mut cmd = Command::new(exe);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn force_isa_env_round_trips_through_the_binaries() {
    let dir = tmpdir("force_isa");
    let data = dir.join("train.dat");
    let model = dir.join("train.model");
    let preds = dir.join("preds.txt");
    let (ok, _, stderr) = run(
        "generate-data",
        &[
            "--points",
            "60",
            "--features",
            "5",
            "--seed",
            "19",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");

    // forcing the scalar tier is honored and surfaced in --verbose
    let (ok, stdout, stderr) = run_env(
        "svm-train",
        &[
            "-e",
            "1e-8",
            "--verbose",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
        &[("PLSSVM_FORCE_ISA", "scalar")],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("simd dispatch: scalar"), "{stdout}");
    assert!(stdout.contains("forced via PLSSVM_FORCE_ISA"), "{stdout}");
    assert!(model.exists());

    // predict surfaces the dispatch too
    let (ok, stdout, stderr) = run_env(
        "svm-predict",
        &[
            "--verbose",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ],
        &[("PLSSVM_FORCE_ISA", "scalar")],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("simd dispatch: scalar"), "{stdout}");

    // a typo in the override warns but never fails the run: the engine
    // falls back to auto-detection
    let (ok, stdout, stderr) = run_env(
        "svm-train",
        &[
            "-e",
            "1e-8",
            "--verbose",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
        &[("PLSSVM_FORCE_ISA", "avx9000")],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("WARNING: PLSSVM_FORCE_ISA"), "{stdout}");
    assert!(stdout.contains("auto-detected"), "{stdout}");
}

#[test]
fn train_help_and_errors_exit_nonzero() {
    let (ok, _, stderr) = run("svm-train", &["--help"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(stderr.contains("-t kernel_type"), "{stderr}");

    let (ok, _, stderr) = run("svm-train", &["/nonexistent/input.dat"]);
    assert!(!ok);
    assert!(stderr.contains("svm-train:"), "{stderr}");

    let (ok, _, stderr) = run("svm-predict", &["only-one-arg"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");

    let (ok, _, stderr) = run("svm-scale", &[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");

    let (ok, _, stderr) = run("generate-data", &["--points", "10"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn lowrank_resume_is_a_usage_error_with_exit_code_2() {
    let dir = tmpdir("lowrank_resume");
    let data = dir.join("train.dat");
    run(
        "generate-data",
        &[
            "--points",
            "40",
            "--features",
            "4",
            "--seed",
            "7",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    // --resume with --solver lowrank is rejected at parse time: the
    // checkpoint journal streams exact-CG state only
    let exe = env!("CARGO_BIN_EXE_svm-train");
    let out = Command::new(exe)
        .args([
            "--solver",
            "lowrank",
            "--rank",
            "16",
            "--checkpoint-dir",
            dir.join("journal").to_str().unwrap(),
            "--resume",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--resume"), "{stderr}");
    assert!(stderr.contains("lowrank"), "{stderr}");

    // the help text documents the solver flags
    let (ok, _, help) = run("svm-train", &["--help"]);
    assert!(!ok);
    assert!(help.contains("--solver"), "{help}");
    assert!(help.contains("--rank"), "{help}");
    assert!(help.contains("--landmarks"), "{help}");
}

#[test]
fn cross_validation_through_the_binary() {
    let dir = tmpdir("cv");
    let data = dir.join("train.dat");
    run(
        "generate-data",
        &[
            "--points",
            "60",
            "--features",
            "4",
            "--seed",
            "5",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    let (ok, stdout, stderr) = run("svm-train", &["-v", "4", data.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Cross Validation Accuracy"), "{stdout}");
}

#[test]
fn arff_input_through_the_binary() {
    let dir = tmpdir("arff");
    let data = dir.join("train.arff");
    run(
        "generate-data",
        &[
            "--points",
            "50",
            "--features",
            "4",
            "--seed",
            "6",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "--format",
            "arff",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    let (ok, stdout, stderr) = run("svm-train", &["-e", "1e-8", data.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("training accuracy"), "{stdout}");
}

#[test]
fn storage_faults_through_the_binary_exit_4_or_retry_to_success() {
    let dir = tmpdir("io_faults");
    let data = dir.join("train.dat");
    run(
        "generate-data",
        &[
            "--points",
            "50",
            "--features",
            "4",
            "--seed",
            "19",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );

    // a persistent ENOSPC on every model-write operation: distinct exit
    // code 4 (storage failure), no model file left behind
    let model = dir.join("refused.model");
    let exe = env!("CARGO_BIN_EXE_svm-train");
    let out = Command::new(exe)
        .args([
            "-e",
            "1e-8",
            "--io-faults",
            "enospc:write@0~model!",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4), "storage failures must exit 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("storage failure"), "{stderr}");
    assert!(stderr.contains("ENOSPC"), "{stderr}");
    assert!(!model.exists(), "no torn model may survive");

    // a transient fault on the same operation is retried to success
    let model = dir.join("retried.model");
    let (ok, _, stderr) = run(
        "svm-train",
        &[
            "-e",
            "1e-8",
            "--io-faults",
            "enospc:write@0~model",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    assert!(model.exists());

    // a malformed plan is a usage error (exit 2)
    let out = Command::new(exe)
        .args(["--io-faults", "explode:write@1", data.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // the help text documents the storage-fault flags and exit code 4
    let (ok, _, help) = run("svm-train", &["--help"]);
    assert!(!ok);
    assert!(help.contains("--io-faults"), "{help}");
    assert!(help.contains("--on-io-degraded"), "{help}");
    assert!(help.contains("4 storage failure"), "{help}");
}
