//! Serving-equals-CLI conformance: for every model kind the CLI can
//! produce — {serial, openmp, simgpu} × {linear, rbf} × {f32, f64}
//! training, plus multiclass and SVR — `svm-serve` must answer exactly
//! what `svm-predict` writes, byte for byte, at every batch size. The
//! batcher, the wire protocol, and the panelized predict path must be
//! invisible in the output.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::LsSvm;
use plssvm_data::model::KernelSpec;
use plssvm_data::read_libsvm_file;
use plssvm_data::synthetic::{generate_blobs, BlobsConfig};
use plssvm_simgpu::hw;
use plssvm_simgpu::Backend as DeviceApi;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("plssvm_serve_conf").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let exe = match bin {
        "svm-train" => env!("CARGO_BIN_EXE_svm-train"),
        "svm-predict" => env!("CARGO_BIN_EXE_svm-predict"),
        "generate-data" => env!("CARGO_BIN_EXE_generate-data"),
        _ => panic!("unknown binary {bin}"),
    };
    let out = Command::new(exe).args(args).output().expect("spawn");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pipes `input` through `svm-serve --max-batch N` in stdin mode and
/// returns its stdout (the protocol responses).
fn serve_stdin(model: &Path, max_batch: usize, input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_svm-serve"))
        .args([
            "-q",
            "--reload-poll-ms",
            "0",
            "--max-batch",
            &max_batch.to_string(),
            model.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn svm-serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "svm-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// The conformance oracle: `svm-predict`'s output file must equal
/// `svm-serve`'s stdout for the same test lines, at batch sizes
/// {1, 3, max} — the micro-batcher must never change an answer.
fn assert_serving_matches(tag: &str, model: &Path, test_file: &Path) {
    let preds = model.with_extension("preds");
    let (ok, _, stderr) = run(
        "svm-predict",
        &[
            test_file.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ],
    );
    assert!(ok, "[{tag}] svm-predict failed: {stderr}");
    let expected = std::fs::read_to_string(&preds).unwrap();
    assert!(!expected.is_empty(), "[{tag}] empty prediction file");

    let input = std::fs::read_to_string(test_file).unwrap();
    for max_batch in [1usize, 3, 64] {
        let served = serve_stdin(model, max_batch, &input);
        assert_eq!(
            served, expected,
            "[{tag}] serve output diverged from svm-predict at max_batch={max_batch}"
        );
    }
}

/// Writes the shared binary classification data set (linearly separable
/// planes) and returns its path.
fn binary_data(dir: &Path) -> PathBuf {
    let data = dir.join("train.dat");
    let (ok, _, stderr) = run(
        "generate-data",
        &[
            "--points",
            "60",
            "--features",
            "6",
            "--seed",
            "11",
            "--sep",
            "3.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    data
}

/// f64 models through the real `svm-train` binary: every backend × kernel
/// combination serves bit-identically to `svm-predict`.
#[test]
fn cli_trained_f64_models_serve_bit_identically() {
    let dir = tmpdir("f64");
    let data = binary_data(&dir);
    for backend in ["serial", "openmp", "cuda"] {
        for (kernel, extra) in [("0", None), ("2", Some(["-g", "0.5"]))] {
            let model = dir.join(format!("{backend}-t{kernel}.model"));
            let mut args = vec!["-e", "1e-10", "-t", kernel, "--backend", backend];
            if let Some(g) = &extra {
                args.extend_from_slice(g);
            }
            args.push(data.to_str().unwrap());
            args.push(model.to_str().unwrap());
            let (ok, _, stderr) = run("svm-train", &args);
            assert!(ok, "[{backend} -t {kernel}] svm-train failed: {stderr}");
            assert_serving_matches(&format!("f64 {backend} -t {kernel}"), &model, &data);
        }
    }
}

/// f32-trained models (the CLI's text model format is precision-agnostic,
/// so an f32 training run is a legitimate CLI-producible model file):
/// every backend × kernel combination serves bit-identically.
#[test]
fn f32_trained_models_serve_bit_identically() {
    let dir = tmpdir("f32");
    let data_file = binary_data(&dir);
    let data = read_libsvm_file::<f32>(data_file.to_str().unwrap(), None).unwrap();
    let backends: [(&str, BackendSelection); 3] = [
        ("serial", BackendSelection::Serial),
        ("openmp", BackendSelection::openmp(Some(2))),
        (
            "simgpu",
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ),
    ];
    for (bname, backend) in backends {
        for (kname, kernel) in [
            ("linear", KernelSpec::Linear),
            ("rbf", KernelSpec::Rbf { gamma: 0.5f32 }),
        ] {
            let out = LsSvm::<f32>::new()
                .with_kernel(kernel)
                .with_epsilon(1e-6)
                .with_backend(backend.clone())
                .train(&data)
                .unwrap();
            let model = dir.join(format!("{bname}-{kname}.model"));
            out.model.save(&model).unwrap();
            assert_serving_matches(&format!("f32 {bname} {kname}"), &model, &data_file);
        }
    }
}

/// Multiclass container models (one-vs-one over 3 classes) serve the
/// same label stream `svm-predict` writes.
#[test]
fn multiclass_models_serve_bit_identically() {
    let dir = tmpdir("multiclass");
    let data_file = dir.join("blobs.dat");
    let blobs = generate_blobs::<f64>(&BlobsConfig::new(45, 4, 3, 9)).unwrap();
    let mut text = String::new();
    for i in 0..blobs.points() {
        text.push_str(&blobs.labels[i].to_string());
        for j in 0..blobs.features() {
            text.push_str(&format!(" {}:{}", j + 1, blobs.x.get(i, j)));
        }
        text.push('\n');
    }
    std::fs::write(&data_file, text).unwrap();

    let model = dir.join("blobs.model");
    let (ok, _, stderr) = run(
        "svm-train",
        &[
            "-e",
            "1e-8",
            data_file.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(ok, "multiclass svm-train failed: {stderr}");
    assert!(
        std::fs::read_to_string(&model)
            .unwrap()
            .starts_with("plssvm_multiclass"),
        "expected a multiclass container model"
    );
    assert_serving_matches("multiclass ovo", &model, &data_file);
}

/// Epsilon-SVR models serve the same regression values (full float
/// formatting) `svm-predict` writes.
#[test]
fn svr_models_serve_bit_identically() {
    let dir = tmpdir("svr");
    let data = binary_data(&dir);
    let model = dir.join("svr.model");
    let (ok, _, stderr) = run(
        "svm-train",
        &[
            "-s",
            "3",
            "-e",
            "1e-10",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(ok, "svr svm-train failed: {stderr}");
    assert_serving_matches("svr", &model, &data);
}
