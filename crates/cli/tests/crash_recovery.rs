//! Crash-injection recovery through the real `svm-train` binary.
//!
//! The end-to-end acceptance property: an `svm-train --checkpoint-dir`
//! process killed immediately after any checkpoint generation becomes
//! durable must, when rerun with `--resume`, write a model file
//! byte-identical to the uninterrupted run's. The kill is injected with
//! `PLSSVM_CRASH_AFTER_GENERATION` (the journal aborts the process right
//! after the chosen generation hits disk), exactly the mechanism the
//! library-level harness uses — here exercised through the same binary,
//! flags and files a user would touch.

use std::path::{Path, PathBuf};
use std::process::Command;

const CRASH_AFTER_ENV: &str = "PLSSVM_CRASH_AFTER_GENERATION";

fn svm_train() -> &'static str {
    env!("CARGO_BIN_EXE_svm-train")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("plssvm_bin_crash")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(data: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_generate-data"))
        .args([
            "--points",
            "90",
            "--features",
            "7",
            "--seed",
            "47",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());
}

fn train_args(data: &Path, model: &Path, journal: Option<&Path>, resume: bool) -> Vec<String> {
    let mut args = vec![
        "-t".into(),
        "2".into(),
        "-g".into(),
        "0.25".into(),
        "-e".into(),
        "1e-10".into(),
        "--backend".into(),
        "serial".into(),
    ];
    if let Some(dir) = journal {
        args.push("--checkpoint-dir".into());
        args.push(dir.to_str().unwrap().into());
        args.push("--checkpoint-every".into());
        args.push("4".into());
    }
    if resume {
        args.push("--resume".into());
    }
    args.push(data.to_str().unwrap().into());
    args.push(model.to_str().unwrap().into());
    args
}

/// Runs `svm-train` to completion, asserting success.
fn train_ok(data: &Path, model: &Path, journal: Option<&Path>, resume: bool) -> String {
    let out = Command::new(svm_train())
        .args(train_args(data, model, journal, resume))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "svm-train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs `svm-train` with crash injection armed and asserts it died by
/// signal (the journal's abort), leaving no model file behind.
fn train_crashing(data: &Path, model: &Path, journal: &Path, crash_gen: u64) {
    let status = Command::new(svm_train())
        .args(train_args(data, model, Some(journal), false))
        .env(CRASH_AFTER_ENV, crash_gen.to_string())
        .status()
        .unwrap();
    assert!(
        status.code().is_none(),
        "expected death by signal at generation {crash_gen}, got {status:?}"
    );
    assert!(
        !model.exists(),
        "a crashed run must not leave a model file (atomic write)"
    );
}

fn generation_files(journal: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(journal)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("gen-") && n.ends_with(".ckpt"))
        })
        .collect();
    files.sort();
    files
}

/// Kill the binary at several checkpoint generations; every `--resume`
/// rerun must write a byte-identical model.
#[test]
fn kill_and_resume_through_the_binary_is_byte_identical() {
    let dir = tmpdir("kill");
    let data = dir.join("train.dat");
    generate(&data);

    // the uninterrupted reference (no journal involved)
    let reference = dir.join("reference.model");
    train_ok(&data, &reference, None, false);
    let reference_bytes = std::fs::read(&reference).unwrap();

    // how many generations does an uninterrupted journaled run produce?
    let probe_journal = dir.join("probe-journal");
    let probe_model = dir.join("probe.model");
    train_ok(&data, &probe_model, Some(&probe_journal), false);
    assert_eq!(
        std::fs::read(&probe_model).unwrap(),
        reference_bytes,
        "journaling must not perturb the model"
    );
    // retention keeps the last 4 generations; the newest file names the
    // total generation count
    let newest = generation_files(&probe_journal).pop().expect("generations");
    let total: u64 = newest
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .trim_start_matches("gen-")
        .trim_end_matches(".ckpt")
        .parse()
        .unwrap();
    assert!(
        total >= 3,
        "need several generations to kill at, got {total}"
    );

    for crash_gen in [1, total / 2 + 1, total] {
        let journal = dir.join(format!("journal-g{crash_gen}"));
        let model = dir.join(format!("crashed-g{crash_gen}.model"));
        train_crashing(&data, &model, &journal, crash_gen);

        let resumed = dir.join(format!("resumed-g{crash_gen}.model"));
        let stdout = train_ok(&data, &resumed, Some(&journal), true);
        assert_eq!(
            std::fs::read(&resumed).unwrap(),
            reference_bytes,
            "resume after crash at generation {crash_gen} must be byte-identical"
        );
        assert!(stdout.contains("converged: true"), "{stdout}");
    }
}

/// A corrupted newest generation (bit rot after the crash) must fall
/// back to the previous generation and still converge to the
/// byte-identical model.
#[test]
fn corrupted_tail_falls_back_through_the_binary() {
    let dir = tmpdir("corrupt");
    let data = dir.join("train.dat");
    generate(&data);

    let reference = dir.join("reference.model");
    train_ok(&data, &reference, None, false);

    let journal = dir.join("journal");
    let model = dir.join("crashed.model");
    train_crashing(&data, &model, &journal, 3);

    // flip one payload bit in the newest generation
    let newest = generation_files(&journal).pop().unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, &bytes).unwrap();

    let resumed = dir.join("resumed.model");
    let stdout = train_ok(&data, &resumed, Some(&journal), true);
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        std::fs::read(&reference).unwrap(),
        "fallback to the previous generation must still give the reference model"
    );
    assert!(stdout.contains("converged: true"), "{stdout}");
}

/// `--resume` against a journal from a different training invocation is
/// a hard, structured error — never a silent wrong-model resume.
#[test]
fn resume_against_a_foreign_journal_is_rejected() {
    let dir = tmpdir("foreign");
    let data = dir.join("train.dat");
    generate(&data);

    let journal = dir.join("journal");
    let model = dir.join("a.model");
    train_ok(&data, &model, Some(&journal), false);

    // same data, different cost: a different training job
    let out = Command::new(svm_train())
        .args([
            "-t",
            "2",
            "-g",
            "0.25",
            "-c",
            "10",
            "-e",
            "1e-10",
            "--backend",
            "serial",
            "--checkpoint-dir",
            journal.to_str().unwrap(),
            "--resume",
            data.to_str().unwrap(),
            dir.join("b.model").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different training invocation"), "{stderr}");
    assert!(!dir.join("b.model").exists());

    // --resume without --checkpoint-dir is a usage error (exit code 2)
    let out = Command::new(svm_train())
        .args(["--resume", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint-dir"));
}

/// An empty journal directory (the process died before the first
/// checkpoint) resumes as a fresh start, not an error.
#[test]
fn resume_with_an_empty_journal_is_a_fresh_start() {
    let dir = tmpdir("empty");
    let data = dir.join("train.dat");
    generate(&data);

    let reference = dir.join("reference.model");
    train_ok(&data, &reference, None, false);

    let journal = dir.join("journal");
    std::fs::create_dir_all(&journal).unwrap();
    let model = dir.join("fresh.model");
    let stdout = train_ok(&data, &model, Some(&journal), true);
    assert!(stdout.contains("converged: true"), "{stdout}");
    assert_eq!(
        std::fs::read(&model).unwrap(),
        std::fs::read(&reference).unwrap()
    );
}
