//! Weighted (robust) LS-SVM — Suykens et al., *"Weighted least squares
//! support vector machines: robustness and sparse approximation"* (the
//! paper's reference \[25\]).
//!
//! The LS-SVM's squared loss makes it sensitive to outliers and label
//! noise: every point pulls on the hyperplane proportionally to its
//! residual. The weighted procedure repairs this in two stages:
//!
//! 1. train the plain LS-SVM; its support values give the error variables
//!    `ξᵢ = αᵢ/C` directly,
//! 2. compute robust weights `vᵢ` from the standardized residuals using a
//!    robust scale estimate (`ŝ = MAD/0.6745`) with Hampel-style cutoffs
//!    `c₁ = 2.5`, `c₂ = 3.0`, and retrain with the per-sample ridge
//!    `1/(C·vᵢ)`.
//!
//! Mechanically, only the diagonal of the LS-SVM system changes, which the
//! [`crate::matrix_free::QTildeParams`] per-sample ridge supports on every
//! backend.

use plssvm_data::libsvm::LabeledData;
use plssvm_data::Real;
use plssvm_simgpu::device::AtomicScalar;

use crate::error::SvmError;
use crate::svm::{LsSvm, TrainOutput};

/// Hampel cutoffs of Suykens' weighting function.
pub const C1: f64 = 2.5;
/// See [`C1`].
pub const C2: f64 = 3.0;
/// Weight floor (Suykens uses 10⁻⁴) so the system stays positive definite.
pub const MIN_WEIGHT: f64 = 1e-4;

/// Robust weights from LS-SVM support values: `ξᵢ = αᵢ/C`, standardized by
/// the MAD-based robust scale, mapped through the Hampel function
///
/// ```text
/// v(ξ/ŝ) = 1                     if |ξ/ŝ| ≤ c₁
///        = (c₂ − |ξ/ŝ|)/(c₂−c₁)  if c₁ < |ξ/ŝ| ≤ c₂
///        = MIN_WEIGHT            otherwise
/// ```
pub fn robust_weights<T: Real>(alpha: &[T], cost: T) -> Vec<T> {
    assert!(!alpha.is_empty());
    let xi: Vec<f64> = alpha.iter().map(|a| a.to_f64() / cost.to_f64()).collect();
    // robust scale: median absolute deviation about the median
    let mut sorted = xi.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<f64> = xi.iter().map(|v| (v - median).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let mad = deviations[deviations.len() / 2];
    let scale = (mad / 0.6745).max(f64::MIN_POSITIVE);

    xi.iter()
        .map(|&v| {
            let z = ((v - median) / scale).abs();
            let w = if z <= C1 {
                1.0
            } else if z <= C2 {
                (C2 - z) / (C2 - C1)
            } else {
                MIN_WEIGHT
            };
            T::from_f64(w.max(MIN_WEIGHT))
        })
        .collect()
}

/// Output of the two-stage robust training.
#[derive(Debug)]
pub struct RobustTrainOutput<T> {
    /// Stage 1: the unweighted LS-SVM.
    pub unweighted: TrainOutput<T>,
    /// Stage 2: the reweighted LS-SVM.
    pub weighted: TrainOutput<T>,
    /// The weights applied in stage 2.
    pub weights: Vec<T>,
    /// How many points received a weight below 1 (suspected outliers).
    pub downweighted: usize,
}

/// Runs the two-stage weighted LS-SVM procedure of \[25\] with `trainer`'s
/// configuration.
pub fn train_robust<T: AtomicScalar>(
    data: &LabeledData<T>,
    trainer: &LsSvm<T>,
) -> Result<RobustTrainOutput<T>, SvmError> {
    if trainer.sample_weights.is_some() {
        return Err(SvmError::Solver(
            "train_robust derives its own weights; remove with_sample_weights".into(),
        ));
    }
    let unweighted = trainer.train(data)?;
    let weights = robust_weights(&unweighted.model.coef, trainer.cost);
    let downweighted = weights.iter().filter(|w| w.to_f64() < 1.0).count();
    let weighted = trainer
        .clone()
        .with_sample_weights(weights.clone())
        .train(data)?;
    Ok(RobustTrainOutput {
        unweighted,
        weighted,
        weights,
        downweighted,
    })
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::svm::accuracy;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn data_with_outliers(seed: u64) -> (LabeledData<f64>, Vec<usize>) {
        // clean separable data, then flip a few labels AND blow up the
        // corresponding points so they act as leverage outliers
        let mut d = generate_planes::<f64>(
            &PlanesConfig::new(120, 4, seed)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap();
        let outliers = vec![3usize, 47, 90];
        for &i in &outliers {
            d.y[i] = -d.y[i];
            for f in 0..4 {
                let v = d.x.get(i, f);
                d.x.set(i, f, v * 1.5);
            }
        }
        (d, outliers)
    }

    #[test]
    fn weights_flag_outliers() {
        let (data, outliers) = data_with_outliers(11);
        let trainer = LsSvm::new().with_epsilon(1e-8);
        let out = train_robust(&data, &trainer).unwrap();
        assert!(out.downweighted >= outliers.len());
        // the injected outliers must be among the most downweighted points
        for &i in &outliers {
            assert!(
                out.weights[i] < 0.9,
                "outlier {i} kept weight {}",
                out.weights[i]
            );
        }
        // the weighted model should not be worse on the clean points
        let clean_indices: Vec<usize> = (0..data.points())
            .filter(|i| !outliers.contains(i))
            .collect();
        let clean = LabeledData::with_label_map(
            data.x.select_rows(&clean_indices),
            clean_indices.iter().map(|&i| data.y[i]).collect(),
            data.label_map,
        )
        .unwrap();
        let acc_u = accuracy(&out.unweighted.model, &clean);
        let acc_w = accuracy(&out.weighted.model, &clean);
        assert!(acc_w >= acc_u, "weighted {acc_w} vs unweighted {acc_u}");
        assert!(acc_w >= 0.97);
    }

    #[test]
    fn clean_data_keeps_full_weights() {
        let data = generate_planes::<f64>(
            &PlanesConfig::new(80, 4, 12)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap();
        let out = train_robust(&data, &LsSvm::new().with_epsilon(1e-8)).unwrap();
        // on clean data the residual distribution is tight: most points
        // keep weight 1 and the model barely changes
        let full: usize = out.weights.iter().filter(|w| **w == 1.0).count();
        assert!(full as f64 / out.weights.len() as f64 > 0.8);
        assert!((out.unweighted.model.rho - out.weighted.model.rho).abs() < 0.2);
    }

    #[test]
    fn hampel_shape() {
        // construct alphas with one extreme value
        let mut alpha = vec![0.01f64; 50];
        alpha[7] = 10.0;
        let w = robust_weights(&alpha, 1.0);
        assert_eq!(w[7], MIN_WEIGHT);
        assert!(w.iter().enumerate().all(|(i, &v)| i == 7 || v == 1.0));
    }

    #[test]
    fn weights_are_bounded() {
        let alpha: Vec<f64> = (0..100)
            .map(|i| ((i * 37 % 19) as f64 - 9.0) / 3.0)
            .collect();
        let w = robust_weights(&alpha, 2.0);
        for v in w {
            assert!((MIN_WEIGHT..=1.0).contains(&v));
        }
    }

    #[test]
    fn robust_rejects_preset_weights() {
        let data = generate_planes::<f64>(&PlanesConfig::new(20, 3, 13)).unwrap();
        let trainer = LsSvm::new().with_sample_weights(vec![1.0; 20]);
        assert!(train_robust(&data, &trainer).is_err());
    }

    #[test]
    fn invalid_weights_rejected_by_trainer() {
        let data = generate_planes::<f64>(&PlanesConfig::new(20, 3, 14)).unwrap();
        // wrong length
        assert!(LsSvm::new()
            .with_sample_weights(vec![1.0; 5])
            .train(&data)
            .is_err());
        // non-positive weight
        let mut w = vec![1.0; 20];
        w[3] = 0.0;
        assert!(LsSvm::new().with_sample_weights(w).train(&data).is_err());
    }

    #[test]
    fn weighted_system_still_solves_exactly() {
        // weighted training must still satisfy the weighted KKT system:
        // Σⱼ (k(xᵢ,xⱼ) + δᵢⱼ/(C·vᵢ))·αⱼ + b = yᵢ
        let data = generate_planes::<f64>(&PlanesConfig::new(30, 3, 15)).unwrap();
        let weights: Vec<f64> = (0..30).map(|i| 0.5 + (i % 3) as f64 * 0.25).collect();
        let cost = 2.0;
        let out = LsSvm::new()
            .with_cost(cost)
            .with_epsilon(1e-12)
            .with_sample_weights(weights.clone())
            .train(&data)
            .unwrap();
        assert!(out.converged);
        let alpha = &out.model.coef;
        let b = -out.model.rho;
        for i in 0..30 {
            let mut lhs = b;
            for j in 0..30 {
                let k = crate::kernel::kernel_row(
                    &plssvm_data::model::KernelSpec::Linear,
                    data.x.row(i),
                    data.x.row(j),
                ) + if i == j {
                    1.0 / (cost * weights[i])
                } else {
                    0.0
                };
                lhs += k * alpha[j];
            }
            assert!(
                (lhs - data.y[i]).abs() < 1e-6,
                "weighted KKT row {i}: {lhs} vs {}",
                data.y[i]
            );
        }
    }
}
