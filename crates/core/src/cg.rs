//! The Conjugate Gradients solver (§III-B).
//!
//! Implements the variant of Shewchuk's *"An Introduction to the Conjugate
//! Gradient Method Without the Agonizing Pain"* used by PLSSVM: plain
//! (unpreconditioned) CG on an SPD operator, started at `x₀ = 0`, with the
//! **relative residual** termination criterion
//! `‖rₖ‖ ≤ ε·‖r₀‖` (the paper's `epsilon`, studied in Fig. 3), and the
//! usual periodic exact-residual recomputation to limit floating point
//! drift.
//!
//! The operator is abstract ([`LinOp`]) — in PLSSVM it is the implicit `Q̃`
//! provided by one of the [`crate::backend`]s, which is where all the
//! parallelism lives; the vector updates here are `O(m)` and negligible
//! (the paper measures the matvec at >92 % of total runtime).

use std::time::{Duration, Instant};

use plssvm_data::Real;

use crate::kernel::dot;
use crate::trace::{CgIterationSample, CgOutcomeSample, MetricsSink, RecoveryKind, RecoverySample};

/// An abstract symmetric positive definite linear operator.
pub trait LinOp<T: Real>: Sync {
    /// The dimension `n` of the square operator.
    fn dim(&self) -> usize;
    /// Computes `out = A·v`. `v` and `out` have length [`LinOp::dim`].
    fn apply(&self, v: &[T], out: &mut [T]);
}

/// A destination for periodic [`CgState`] snapshots — the hook the durable
/// checkpoint journal plugs into (see `plssvm_data::checkpoint`).
///
/// `persist` is called once per [`CgConfig::checkpoint_interval`]
/// iterations with the complete solver state. Implementations must handle
/// their own failures (log, count, emit telemetry): persistence problems
/// must never abort a numerically healthy solve, so `persist` does not
/// return a `Result`.
pub trait CheckpointSink<T: Real>: Sync {
    /// Persists one snapshot of the running solve.
    fn persist(&self, state: &CgState<T>);
}

/// CG solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig<T> {
    /// Relative residual tolerance ε: stop once `‖r‖ ≤ ε·‖r₀‖`.
    /// PLSSVM's command line default is `1e-3`.
    pub epsilon: T,
    /// Upper bound on iterations; `None` uses `max(2·n, 128)`. Exact
    /// arithmetic CG terminates in `n` steps, but rounding destroys finite
    /// termination on ill-conditioned systems, so the default budget
    /// leaves headroom (the paper's problems converge in ≪ n iterations
    /// either way).
    pub max_iterations: Option<usize>,
    /// Recompute the exact residual `r = b − A·x` every this many
    /// iterations to cancel accumulated rounding (Shewchuk §B.2).
    pub residual_refresh_interval: usize,
    /// Snapshot the solver state ([`CgState`]) every this many iterations
    /// (and at exit). `None` disables checkpointing entirely — the default,
    /// costing nothing on the hot path. Each periodic snapshot is also
    /// reported to the metrics sink as a `checkpoint` recovery event.
    pub checkpoint_interval: Option<usize>,
    /// Stagnation window: if the best squared residual seen so far fails to
    /// improve by [`CgConfig::stall_improvement`] for this many consecutive
    /// iterations, the solve is classified [`SolveOutcome::Stalled`] and
    /// stopped. Pure observation — a converging solve exits at the
    /// tolerance before the window can ever fill.
    pub stall_window: usize,
    /// Minimum relative improvement of the best squared residual (`δ = rᵀr`)
    /// that resets the stagnation window. At less than this improvement per
    /// window the solve could not reach any practical tolerance within the
    /// iteration budget anyway.
    pub stall_improvement: f64,
    /// Residual-norm growth factor over `‖r₀‖` that classifies the solve as
    /// [`SolveOutcome::Diverged`]. CG on an SPD operator never grows the
    /// residual like this; only indefinite or poisoned systems do.
    pub divergence_ratio: f64,
    /// Maximum tolerated relative gap between the recurrence residual and
    /// the true residual `b − A·x` at each refresh point. Beyond it the
    /// recurrence has drifted away from reality: the search direction is
    /// restarted from the true residual (a `restart` recovery event).
    /// Healthy solves agree to many digits, so the default never fires on
    /// them — the comparison is observation-only.
    pub drift_tolerance: f64,
}

impl<T: Real> Default for CgConfig<T> {
    fn default() -> Self {
        Self {
            epsilon: T::from_f64(1e-3),
            max_iterations: None,
            residual_refresh_interval: 50,
            checkpoint_interval: None,
            stall_window: 250,
            stall_improvement: 0.05,
            divergence_ratio: 1e4,
            drift_tolerance: 0.1,
        }
    }
}

impl<T: Real> CgConfig<T> {
    /// A configuration with the given tolerance and defaults otherwise.
    pub fn with_epsilon(epsilon: T) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }
}

/// A complete CG solver snapshot: everything the recurrence needs to
/// continue exactly where it stopped.
///
/// Taken by the solver when [`CgConfig::checkpoint_interval`] is set and
/// resumed with [`conjugate_gradients_resume`]. The state is tiny — three
/// `n`-vectors plus four scalars — which is what makes checkpointing the
/// solve essentially free compared to the matvec it protects.
///
/// Warm restart preserves the *exact* recurrence: the absolute iteration
/// counter is part of the state, so the periodic exact-residual refresh
/// (`residual_refresh_interval`) fires on the same schedule, and an
/// interrupted-then-resumed solve performs bit-identical arithmetic to an
/// uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct CgState<T> {
    x: Vec<T>,
    r: Vec<T>,
    d: Vec<T>,
    rho: T,
    delta: T,
    delta0: T,
    iterations: usize,
}

impl<T: Real> CgState<T> {
    /// The iterate `x` at the checkpoint.
    pub fn solution(&self) -> &[T] {
        &self.x
    }

    /// Absolute iteration count at the checkpoint.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Residual norm `‖r‖` at the checkpoint (recurrence value).
    pub fn residual_norm(&self) -> T {
        self.delta.max(T::ZERO).sqrt()
    }

    /// The residual `r` at the checkpoint.
    pub fn residual(&self) -> &[T] {
        &self.r
    }

    /// The search direction `d` at the checkpoint.
    pub fn direction(&self) -> &[T] {
        &self.d
    }

    /// The recurrence scalar `ρ = rᵀz` at the checkpoint.
    pub fn rho(&self) -> T {
        self.rho
    }

    /// The termination measure `δ = rᵀr` at the checkpoint.
    pub fn delta(&self) -> T {
        self.delta
    }

    /// The reference `δ₀ = ‖r₀‖²` the relative criterion compares against.
    pub fn delta0(&self) -> T {
        self.delta0
    }

    /// Reassembles a state from its raw components — the inverse of the
    /// accessors above, used when deserializing a persisted snapshot.
    /// The resulting state continues the recurrence exactly as if it had
    /// never left memory.
    ///
    /// # Panics
    /// Panics if `x`, `r` and `d` do not all have the same length.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        x: Vec<T>,
        r: Vec<T>,
        d: Vec<T>,
        rho: T,
        delta: T,
        delta0: T,
        iterations: usize,
    ) -> Self {
        assert_eq!(x.len(), r.len(), "residual length mismatch");
        assert_eq!(x.len(), d.len(), "direction length mismatch");
        Self {
            x,
            r,
            d,
            rho,
            delta,
            delta0,
            iterations,
        }
    }

    /// Builds a fresh-start state at the iterate `x0` with an exactly
    /// recomputed residual `r = b − A·x0` (one matvec) and the search
    /// direction reset to the (preconditioned) residual.
    ///
    /// This is the guardrail ladder's restart primitive: after a stall or
    /// breakdown the recurrence state is discarded but the progress in `x`
    /// is kept. Pass `reference_delta0` (the original `rᵀr` at `x = 0`,
    /// i.e. `‖b‖²`) so the relative-residual termination criterion keeps
    /// its original meaning across the restart; `None` measures relative
    /// to the restart point instead.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn restart_from(
        op: &dyn LinOp<T>,
        b: &[T],
        x0: &[T],
        diagonal: Option<&[T]>,
        reference_delta0: Option<T>,
    ) -> Self {
        let n = op.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x0.len(), n, "iterate length mismatch");
        if let Some(diag) = diagonal {
            assert_eq!(diag.len(), n, "diagonal length mismatch");
        }
        let mut r = vec![T::ZERO; n];
        op.apply(x0, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let d: Vec<T> = match diagonal {
            Some(diag) => r.iter().zip(diag).map(|(&ri, &di)| ri / di).collect(),
            None => r.clone(),
        };
        let rho = dot(&r, &d);
        let delta = dot(&r, &r);
        Self {
            x: x0.to_vec(),
            r,
            d,
            rho,
            delta,
            delta0: reference_delta0.unwrap_or(delta),
            iterations: 0,
        }
    }
}

/// What kind of numerical breakdown ended a CG solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownKind {
    /// `pᵀAp ≤ 0`: the operator is numerically not positive definite along
    /// the current search direction (e.g. a sigmoid kernel system, or an
    /// SPD system destroyed by rounding).
    Indefinite,
    /// NaN/Inf poisoning: a matvec output, curvature, or residual stopped
    /// being finite.
    NonFinite,
}

impl BreakdownKind {
    /// Stable lowercase name used in telemetry.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakdownKind::Indefinite => "indefinite",
            BreakdownKind::NonFinite => "nonfinite",
        }
    }
}

/// Structured classification of why a CG solve stopped.
///
/// Replaces the old silent `converged: bool`: every exit path of the
/// solver maps to exactly one variant, so callers can distinguish "met the
/// tolerance" from "ran out of budget" from "the system is numerically
/// broken" — and the escalation ladder ([`crate::guard`]) can pick the
/// right recovery rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The relative-residual criterion `‖r‖ ≤ ε·‖r₀‖` was met.
    Converged,
    /// The best residual stopped improving for a full stagnation window
    /// ([`CgConfig::stall_window`]).
    Stalled,
    /// The residual grew beyond [`CgConfig::divergence_ratio`]`·‖r₀‖`.
    Diverged,
    /// A numerical breakdown ended the recurrence.
    Breakdown(BreakdownKind),
    /// `max_iterations` was exhausted before any other classification.
    IterationBudget,
}

impl SolveOutcome {
    /// Stable lowercase name used in telemetry summaries and JSON lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolveOutcome::Converged => "converged",
            SolveOutcome::Stalled => "stalled",
            SolveOutcome::Diverged => "diverged",
            SolveOutcome::Breakdown(BreakdownKind::Indefinite) => "breakdown_indefinite",
            SolveOutcome::Breakdown(BreakdownKind::NonFinite) => "breakdown_nonfinite",
            SolveOutcome::IterationBudget => "iteration_budget",
        }
    }

    /// `true` only for [`SolveOutcome::Converged`].
    pub fn is_converged(&self) -> bool {
        matches!(self, SolveOutcome::Converged)
    }
}

impl std::fmt::Display for SolveOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult<T> {
    /// The solution vector.
    pub x: Vec<T>,
    /// Iterations performed (matrix–vector products, excluding residual
    /// refreshes).
    pub iterations: usize,
    /// `‖r₀‖ = ‖b‖` (for `x₀ = 0`).
    pub initial_residual_norm: T,
    /// Final residual norm `‖rₖ‖` (recurrence value).
    pub residual_norm: T,
    /// Whether the relative-residual criterion was met within the
    /// iteration budget. Equivalent to `outcome.is_converged()`; kept as a
    /// plain flag for ergonomic call sites.
    pub converged: bool,
    /// Structured classification of why the solve stopped.
    pub outcome: SolveOutcome,
    /// Number of search-direction restarts triggered by recurrence-residual
    /// drift at refresh points (see [`CgConfig::drift_tolerance`]).
    pub drift_restarts: usize,
    /// The solver state at exit, present when
    /// [`CgConfig::checkpoint_interval`] is set. Resuming from it with
    /// [`conjugate_gradients_resume`] continues the run exactly where it
    /// stopped (e.g. after an early stop via `max_iterations`).
    pub checkpoint: Option<CgState<T>>,
}

impl<T: Real> CgResult<T> {
    /// `‖rₖ‖ / ‖r₀‖`, the quantity the paper's ε bounds.
    pub fn relative_residual(&self) -> T {
        if self.initial_residual_norm.to_f64() == 0.0 {
            T::ZERO
        } else {
            self.residual_norm / self.initial_residual_norm
        }
    }
}

/// Solves `A·x = b` with Conjugate Gradients from `x₀ = 0`.
///
/// ```
/// use plssvm_core::cg::{conjugate_gradients, CgConfig, LinOp};
///
/// struct Diag(Vec<f64>);
/// impl LinOp<f64> for Diag {
///     fn dim(&self) -> usize { self.0.len() }
///     fn apply(&self, v: &[f64], out: &mut [f64]) {
///         for i in 0..v.len() { out[i] = self.0[i] * v[i]; }
///     }
/// }
/// let op = Diag(vec![2.0, 4.0, 8.0]);
/// let r = conjugate_gradients(&op, &[2.0, 4.0, 8.0], &CgConfig::with_epsilon(1e-12));
/// assert!(r.converged);
/// for x in &r.x { assert!((x - 1.0).abs() < 1e-10); }
/// ```
///
/// # Panics
/// Panics if `b.len() != op.dim()` or ε is not positive and finite.
pub fn conjugate_gradients<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
) -> CgResult<T> {
    conjugate_gradients_impl(op, b, config, None, None, None)
}

/// [`conjugate_gradients`] with per-iteration telemetry: each iteration's
/// residual norm, α, β and matvec wall time is reported to `metrics` (see
/// [`crate::trace`]). Passing `None` is exactly [`conjugate_gradients`] —
/// the disabled path costs a single branch per iteration and performs no
/// timing.
///
/// # Panics
/// Same contract as [`conjugate_gradients`].
pub fn conjugate_gradients_with_metrics<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    metrics: Option<&dyn MetricsSink>,
) -> CgResult<T> {
    conjugate_gradients_impl(op, b, config, None, metrics, None)
}

/// Resumes a CG solve from a [`CgState`] checkpoint (warm restart).
///
/// The recurrence continues exactly: the search direction, residual, ρ and
/// the absolute iteration counter are restored, so an interrupted solve
/// resumed here performs the same arithmetic — and therefore the same
/// number of total iterations — as one that was never interrupted.
/// `config.max_iterations` bounds the *absolute* iteration count, matching
/// the uninterrupted run.
///
/// # Panics
/// Panics if the checkpoint dimension does not match `op.dim()`, plus the
/// contract of [`conjugate_gradients`].
pub fn conjugate_gradients_resume<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    state: &CgState<T>,
) -> CgResult<T> {
    conjugate_gradients_impl(op, b, config, None, None, Some(state))
}

/// [`conjugate_gradients_resume`] with per-iteration telemetry.
///
/// # Panics
/// Same contract as [`conjugate_gradients_resume`].
pub fn conjugate_gradients_resume_with_metrics<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    state: &CgState<T>,
    metrics: Option<&dyn MetricsSink>,
) -> CgResult<T> {
    conjugate_gradients_impl(op, b, config, None, metrics, Some(state))
}

/// Resumes a **Jacobi-preconditioned** solve from a checkpoint. The same
/// `diagonal` the original solve used must be passed, or the preconditioned
/// recurrence will not continue the original one.
///
/// # Panics
/// The contracts of [`conjugate_gradients_jacobi`] and
/// [`conjugate_gradients_resume`] combined.
pub fn conjugate_gradients_jacobi_resume<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    diagonal: &[T],
    config: &CgConfig<T>,
    state: &CgState<T>,
) -> CgResult<T> {
    conjugate_gradients_jacobi_resume_with_metrics(op, b, diagonal, config, state, None)
}

/// [`conjugate_gradients_jacobi_resume`] with per-iteration telemetry.
///
/// # Panics
/// Same contract as [`conjugate_gradients_jacobi_resume`].
pub fn conjugate_gradients_jacobi_resume_with_metrics<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    diagonal: &[T],
    config: &CgConfig<T>,
    state: &CgState<T>,
    metrics: Option<&dyn MetricsSink>,
) -> CgResult<T> {
    assert_eq!(diagonal.len(), op.dim(), "diagonal length mismatch");
    assert!(
        diagonal.iter().all(|d| d.to_f64() > 0.0),
        "Jacobi preconditioner needs a strictly positive diagonal"
    );
    conjugate_gradients_impl(op, b, config, Some(diagonal), metrics, Some(state))
}

/// Solves `A·x = b` with **Jacobi-preconditioned** CG: `M = diag(A)`,
/// passed as `diagonal`. Termination still checks the *unpreconditioned*
/// relative residual `‖r‖ ≤ ε·‖r₀‖` so iteration counts stay directly
/// comparable to [`conjugate_gradients`]. An extension past the paper
/// (which uses plain CG); on ill-conditioned kernels the diagonal scaling
/// cuts the iteration count — see the `ablation` figure.
///
/// # Panics
/// Panics on length mismatches, non-positive ε, or a diagonal entry that
/// is not strictly positive (the SPD precondition).
pub fn conjugate_gradients_jacobi<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    diagonal: &[T],
    config: &CgConfig<T>,
) -> CgResult<T> {
    conjugate_gradients_jacobi_with_metrics(op, b, diagonal, config, None)
}

/// [`conjugate_gradients_jacobi`] with per-iteration telemetry, analogous
/// to [`conjugate_gradients_with_metrics`].
///
/// # Panics
/// Same contract as [`conjugate_gradients_jacobi`].
pub fn conjugate_gradients_jacobi_with_metrics<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    diagonal: &[T],
    config: &CgConfig<T>,
    metrics: Option<&dyn MetricsSink>,
) -> CgResult<T> {
    assert_eq!(diagonal.len(), op.dim(), "diagonal length mismatch");
    assert!(
        diagonal.iter().all(|d| d.to_f64() > 0.0),
        "Jacobi preconditioner needs a strictly positive diagonal"
    );
    conjugate_gradients_impl(op, b, config, Some(diagonal), metrics, None)
}

/// The fully general entry point: optional Jacobi preconditioning,
/// telemetry, warm restart **and** a [`CheckpointSink`] receiving every
/// periodic snapshot. All other `conjugate_gradients*` wrappers delegate
/// here; passing `None` for `sink` is bit-identical to the corresponding
/// wrapper, so attaching a durable journal never perturbs the numerics.
///
/// # Panics
/// The combined contracts of [`conjugate_gradients_jacobi`] and
/// [`conjugate_gradients_resume`].
pub fn conjugate_gradients_checkpointed<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    diagonal: Option<&[T]>,
    metrics: Option<&dyn MetricsSink>,
    resume: Option<&CgState<T>>,
    sink: Option<&dyn CheckpointSink<T>>,
) -> CgResult<T> {
    if let Some(diag) = diagonal {
        assert_eq!(diag.len(), op.dim(), "diagonal length mismatch");
        assert!(
            diag.iter().all(|d| d.to_f64() > 0.0),
            "Jacobi preconditioner needs a strictly positive diagonal"
        );
    }
    conjugate_gradients_full(op, b, config, diagonal, metrics, resume, sink)
}

fn conjugate_gradients_impl<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    diagonal: Option<&[T]>,
    metrics: Option<&dyn MetricsSink>,
    resume: Option<&CgState<T>>,
) -> CgResult<T> {
    conjugate_gradients_full(op, b, config, diagonal, metrics, resume, None)
}

fn conjugate_gradients_full<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    diagonal: Option<&[T]>,
    metrics: Option<&dyn MetricsSink>,
    resume: Option<&CgState<T>>,
    sink: Option<&dyn CheckpointSink<T>>,
) -> CgResult<T> {
    let n = op.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert!(
        config.epsilon.to_f64() > 0.0 && config.epsilon.is_finite(),
        "epsilon must be positive and finite"
    );
    if let Some(k) = config.checkpoint_interval {
        assert!(k >= 1, "checkpoint interval must be at least 1");
    }
    assert!(config.stall_window >= 1, "stall window must be at least 1");
    let max_iterations = config.max_iterations.unwrap_or_else(|| (2 * n).max(128));

    // z = M⁻¹·r (identity without a preconditioner)
    let precondition = |r: &[T], z: &mut Vec<T>| match diagonal {
        Some(diag) => {
            z.clear();
            z.extend(r.iter().zip(diag).map(|(&ri, &di)| ri / di));
        }
        None => {
            z.clear();
            z.extend_from_slice(r);
        }
    };
    let mut z = Vec::with_capacity(n);
    let (mut x, mut r, mut d, mut rho, mut delta, delta0, mut iterations);
    match resume {
        None => {
            x = vec![T::ZERO; n];
            // r = b − A·x₀ = b
            r = b.to_vec();
            precondition(&r, &mut z);
            d = z.clone();
            // rho = rᵀz drives the recurrences; delta = rᵀr drives
            // termination
            rho = dot(&r, &z);
            delta = dot(&r, &r);
            delta0 = delta;
            iterations = 0usize;
        }
        Some(state) => {
            assert_eq!(state.x.len(), n, "checkpoint dimension mismatch");
            x = state.x.clone();
            r = state.r.clone();
            d = state.d.clone();
            rho = state.rho;
            delta = state.delta;
            delta0 = state.delta0;
            iterations = state.iterations;
        }
    }
    let initial_norm = delta0.sqrt();
    let threshold = config.epsilon * config.epsilon * delta0;

    if let Some(sink) = metrics {
        sink.record_cg_start(n, initial_norm.to_f64());
    }

    let snapshot = |x: &[T], r: &[T], d: &[T], rho: T, delta: T, iterations: usize| CgState {
        x: x.to_vec(),
        r: r.to_vec(),
        d: d.to_vec(),
        rho,
        delta,
        delta0,
        iterations,
    };

    let mut q = vec![T::ZERO; n];
    let mut scratch: Vec<T> = Vec::new(); // recurrence residual at refresh points
    let mut converged = delta <= threshold || delta.to_f64() == 0.0;
    let mut classified: Option<SolveOutcome> = None;
    // ‖b‖² (or ε²·‖b‖²) overflowing the working type poisons every
    // comparison below — `inf ≤ inf` would otherwise report instant
    // convergence at x = 0. Classify instead of lying.
    if !(delta.is_finite() && threshold.is_finite()) {
        converged = false;
        classified = Some(SolveOutcome::Breakdown(BreakdownKind::NonFinite));
    }
    let mut drift_restarts = 0usize;
    // stagnation tracking: best squared residual so far and the number of
    // iterations since it last improved meaningfully
    let mut best_delta = delta.to_f64();
    let mut stalled_for = 0usize;
    let divergence_threshold = config.divergence_ratio * config.divergence_ratio * delta0.to_f64();

    while classified.is_none() && !converged && iterations < max_iterations {
        let matvec_start = metrics.map(|_| Instant::now());
        op.apply(&d, &mut q);
        let matvec_wall = matvec_start.map_or(Duration::ZERO, |t| t.elapsed());
        let dq = dot(&d, &q);
        if !dq.is_finite() {
            // NaN/Inf poisoning in the matvec output or search direction.
            classified = Some(SolveOutcome::Breakdown(BreakdownKind::NonFinite));
            break;
        }
        if dq.to_f64() <= 0.0 {
            // Operator is numerically not SPD along d — stop with the best
            // iterate so far rather than diverging.
            classified = Some(SolveOutcome::Breakdown(BreakdownKind::Indefinite));
            break;
        }
        let alpha = rho / dq;
        for i in 0..n {
            x[i] = alpha.mul_add(d[i], x[i]);
        }
        iterations += 1;
        let mut drift_restart = false;
        if iterations.is_multiple_of(config.residual_refresh_interval) {
            // finish the recurrence into a scratch buffer first so the drift
            // between it and the exact residual can be measured
            scratch.clear();
            scratch.extend(r.iter().zip(&q).map(|(&ri, &qi)| (-alpha).mul_add(qi, ri)));
            // exact residual to cancel drift
            op.apply(&x, &mut q);
            for i in 0..n {
                r[i] = b[i] - q[i];
            }
            let mut diff_sq = 0.0f64;
            let mut true_sq = 0.0f64;
            for i in 0..n {
                let diff = scratch[i].to_f64() - r[i].to_f64();
                diff_sq += diff * diff;
                true_sq += r[i].to_f64() * r[i].to_f64();
            }
            let drift = diff_sq.sqrt() / true_sq.sqrt().max(f64::MIN_POSITIVE);
            if drift > config.drift_tolerance {
                // the recurrence no longer describes reality: discard the
                // conjugate direction and restart steepest-descent-style
                // from the exact residual
                drift_restart = true;
                drift_restarts += 1;
                if let Some(sink) = metrics {
                    sink.record_recovery(RecoverySample::solver(
                        RecoveryKind::Restart,
                        iterations,
                        format!("recurrence-residual drift {drift:.3e} at refresh"),
                    ));
                }
            }
        } else {
            for i in 0..n {
                r[i] = (-alpha).mul_add(q[i], r[i]);
            }
        }
        precondition(&r, &mut z);
        let rho_new = dot(&r, &z);
        let beta = if drift_restart {
            T::ZERO
        } else {
            rho_new / rho
        };
        if drift_restart {
            d.clear();
            d.extend_from_slice(&z);
        } else {
            for i in 0..n {
                d[i] = beta.mul_add(d[i], z[i]);
            }
        }
        rho = rho_new;
        delta = dot(&r, &r);
        converged = delta <= threshold;
        if let Some(sink) = metrics {
            sink.record_cg_iteration(CgIterationSample {
                iteration: iterations,
                residual_norm: delta.max(T::ZERO).sqrt().to_f64(),
                alpha: alpha.to_f64(),
                beta: beta.to_f64(),
                matvec_wall,
            });
        }
        if let Some(k) = config.checkpoint_interval {
            if iterations.is_multiple_of(k) {
                // stream the snapshot to the durable journal (when one is
                // attached) and record the cadence in telemetry; without a
                // sink the snapshot only materializes at exit
                if let Some(out) = sink {
                    out.persist(&snapshot(&x, &r, &d, rho, delta, iterations));
                }
                if let Some(sink) = metrics {
                    sink.record_recovery(RecoverySample::checkpoint(iterations));
                }
            }
        }
        // guardrail classification — observation-only comparisons; on a
        // converging well-conditioned solve none of these ever fire
        if !converged {
            let df = delta.to_f64();
            if !df.is_finite() {
                classified = Some(SolveOutcome::Breakdown(BreakdownKind::NonFinite));
                break;
            }
            if df > divergence_threshold {
                classified = Some(SolveOutcome::Diverged);
                break;
            }
            if df < best_delta * (1.0 - config.stall_improvement) {
                best_delta = df;
                stalled_for = 0;
            } else {
                stalled_for += 1;
                if stalled_for >= config.stall_window {
                    classified = Some(SolveOutcome::Stalled);
                    break;
                }
            }
        }
    }

    let outcome = if converged {
        SolveOutcome::Converged
    } else {
        classified.unwrap_or(SolveOutcome::IterationBudget)
    };
    let residual_norm = delta.max(T::ZERO).sqrt();
    if let Some(sink) = metrics {
        sink.record_cg_outcome(CgOutcomeSample {
            outcome: outcome.as_str(),
            iterations,
            final_residual_norm: residual_norm.to_f64(),
            relative_residual: if initial_norm.to_f64() == 0.0 {
                0.0
            } else {
                residual_norm.to_f64() / initial_norm.to_f64()
            },
        });
    }
    let checkpoint = config
        .checkpoint_interval
        .map(|_| snapshot(&x, &r, &d, rho, delta, iterations));
    CgResult {
        x,
        iterations,
        initial_residual_norm: initial_norm,
        residual_norm,
        converged,
        outcome,
        drift_restarts,
        checkpoint,
    }
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    /// A dense SPD matrix as a LinOp, for testing.
    pub(crate) struct DenseOp {
        pub n: usize,
        pub a: Vec<f64>, // row-major n×n
    }

    impl LinOp<f64> for DenseOp {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, v: &[f64], out: &mut [f64]) {
            for i in 0..self.n {
                out[i] = dot(&self.a[i * self.n..(i + 1) * self.n], v);
            }
        }
    }

    fn identity(n: usize) -> DenseOp {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        DenseOp { n, a }
    }

    /// Random SPD matrix M = Bᵀ·B + n·I.
    pub(crate) fn random_spd(n: usize, seed: u64) -> DenseOp {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[k * n + i] * b[k * n + j];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        DenseOp { n, a }
    }

    #[test]
    fn identity_converges_instantly() {
        let op = identity(5);
        let b = vec![1.0, -2.0, 3.0, 0.5, 0.0];
        let r = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-10));
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        for (xi, bi) in r.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_rhs_needs_no_iterations() {
        let op = random_spd(8, 1);
        let r = conjugate_gradients(&op, &[0.0; 8], &CgConfig::default());
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 8]);
        assert_eq!(r.relative_residual(), 0.0);
    }

    #[test]
    fn solves_random_spd_system() {
        let n = 40;
        let op = random_spd(n, 7);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64 - 8.0) / 4.0).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let r = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-12));
        assert!(r.converged);
        for i in 0..n {
            assert!((r.x[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
    }

    #[test]
    fn residual_claim_is_accurate() {
        let n = 30;
        let op = random_spd(n, 3);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let r = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-8));
        // verify the reported residual against the true residual
        let mut ax = vec![0.0; n];
        op.apply(&r.x, &mut ax);
        let true_norm: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        assert!((true_norm - r.residual_norm).abs() < 1e-9);
        assert!(r.relative_residual() <= 1e-8);
    }

    #[test]
    fn tighter_epsilon_needs_more_iterations() {
        let n = 60;
        let op = random_spd(n, 11);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).sin()).collect();
        let loose = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-2));
        let tight = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-12));
        assert!(loose.converged && tight.converged);
        assert!(
            tight.iterations > loose.iterations,
            "{} vs {}",
            tight.iterations,
            loose.iterations
        );
    }

    #[test]
    fn iteration_budget_respected() {
        let n = 50;
        let op = random_spd(n, 5);
        let b = vec![1.0; n];
        let cfg = CgConfig {
            epsilon: 1e-14,
            max_iterations: Some(2),
            ..CgConfig::default()
        };
        let r = conjugate_gradients(&op, &b, &cfg);
        assert_eq!(r.iterations, 2);
        assert!(!r.converged);
    }

    #[test]
    fn residual_refresh_does_not_break_convergence() {
        let n = 64;
        let op = random_spd(n, 13);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let cfg = CgConfig {
            epsilon: 1e-10,
            residual_refresh_interval: 3, // refresh aggressively
            ..CgConfig::default()
        };
        let r = conjugate_gradients(&op, &b, &cfg);
        assert!(r.converged);
        let mut ax = vec![0.0; n];
        op.apply(&r.x, &mut ax);
        let rel: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt()
            / b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rel <= 1e-9, "relative residual {rel}");
    }

    #[test]
    fn converges_in_at_most_n_iterations() {
        let n = 25;
        let op = random_spd(n, 21);
        let b = vec![1.0; n];
        let r = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-9));
        assert!(r.converged);
        assert!(r.iterations <= n);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn rhs_length_checked() {
        let op = identity(3);
        let _ = conjugate_gradients(&op, &[1.0; 4], &CgConfig::default());
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn epsilon_checked() {
        let op = identity(3);
        let _ = conjugate_gradients(&op, &[1.0; 3], &CgConfig::with_epsilon(-1.0));
    }

    /// An SPD matrix with a badly scaled diagonal — the case Jacobi
    /// preconditioning is made for.
    fn ill_scaled_spd(n: usize) -> DenseOp {
        let mut op = random_spd(n, 99);
        // scale row/column i by s_i with s spanning 5 orders of magnitude
        let scales: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(5.0 * i as f64 / n as f64))
            .collect();
        for i in 0..n {
            for j in 0..n {
                op.a[i * n + j] *= scales[i] * scales[j];
            }
        }
        op
    }

    #[test]
    fn jacobi_pcg_solves_and_matches_plain_cg() {
        let n = 40;
        let op = random_spd(n, 8);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).sin()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        let plain = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-10));
        let pcg = conjugate_gradients_jacobi(&op, &b, &diag, &CgConfig::with_epsilon(1e-10));
        assert!(plain.converged && pcg.converged);
        for i in 0..n {
            assert!((plain.x[i] - pcg.x[i]).abs() < 1e-6, "x[{i}]");
        }
        // the reported residual is the true unpreconditioned residual
        let mut ax = vec![0.0; n];
        op.apply(&pcg.x, &mut ax);
        let true_norm: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        assert!((true_norm - pcg.residual_norm).abs() < 1e-8);
    }

    #[test]
    fn jacobi_pcg_cuts_iterations_on_ill_scaled_systems() {
        let n = 60;
        let op = ill_scaled_spd(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        let cfg = CgConfig {
            epsilon: 1e-8,
            max_iterations: Some(10 * n),
            ..CgConfig::default()
        };
        let plain = conjugate_gradients(&op, &b, &cfg);
        let pcg = conjugate_gradients_jacobi(&op, &b, &diag, &cfg);
        assert!(pcg.converged);
        assert!(
            pcg.iterations * 2 < plain.iterations.max(1) || !plain.converged,
            "pcg {} vs plain {} iterations",
            pcg.iterations,
            plain.iterations
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive diagonal")]
    fn jacobi_rejects_nonpositive_diagonal() {
        let op = identity(3);
        let _ = conjugate_gradients_jacobi(&op, &[1.0; 3], &[1.0, 0.0, 1.0], &CgConfig::default());
    }

    #[test]
    #[should_panic(expected = "diagonal length mismatch")]
    fn jacobi_checks_diagonal_length() {
        let op = identity(3);
        let _ = conjugate_gradients_jacobi(&op, &[1.0; 3], &[1.0; 4], &CgConfig::default());
    }

    #[test]
    fn metrics_sink_receives_per_iteration_samples() {
        use crate::trace::Telemetry;
        let n = 30;
        let op = random_spd(n, 3);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let t = Telemetry::new();
        let r = conjugate_gradients_with_metrics(&op, &b, &CgConfig::with_epsilon(1e-8), Some(&t));
        let report = t.report();
        assert_eq!(report.iterations(), r.iterations);
        assert_eq!(report.cg_dim, Some(n));
        assert_eq!(
            report.cg_initial_residual_norm,
            Some(r.initial_residual_norm)
        );
        let hist = report.residual_history();
        assert!(hist.iter().all(|x| x.is_finite()));
        assert_eq!(*hist.last().unwrap(), r.residual_norm);
        // telemetry must not perturb the numerics
        let plain = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-8));
        assert_eq!(plain.x, r.x);
        assert_eq!(plain.iterations, r.iterations);
    }

    #[test]
    fn checkpoint_restart_is_bit_identical_to_uninterrupted_solve() {
        let n = 48;
        let op = random_spd(n, 17);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.23).sin() + 0.1).collect();
        let full_cfg = CgConfig {
            epsilon: 1e-12,
            checkpoint_interval: Some(4),
            // refresh mid-run so the absolute-iteration schedule matters
            residual_refresh_interval: 7,
            ..CgConfig::default()
        };
        let full = conjugate_gradients(&op, &b, &full_cfg);
        assert!(full.converged && full.iterations > 10);

        for stop_at in [1, 3, 7, 11] {
            let interrupted = conjugate_gradients(
                &op,
                &b,
                &CgConfig {
                    max_iterations: Some(stop_at),
                    ..full_cfg
                },
            );
            let state = interrupted.checkpoint.expect("checkpoint requested");
            assert_eq!(state.iterations(), stop_at);
            assert_eq!(state.solution(), &interrupted.x[..]);
            let resumed = conjugate_gradients_resume(&op, &b, &full_cfg, &state);
            // warm restart preserves the exact recurrence: bit-identical
            assert_eq!(resumed.x, full.x, "stop_at={stop_at}");
            assert_eq!(resumed.iterations, full.iterations);
            assert_eq!(resumed.residual_norm, full.residual_norm);
            assert!(resumed.converged);
        }
    }

    #[test]
    fn jacobi_checkpoint_restart_is_bit_identical() {
        let n = 40;
        let op = ill_scaled_spd(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        let cfg = CgConfig {
            epsilon: 1e-10,
            checkpoint_interval: Some(3),
            ..CgConfig::default()
        };
        let full = conjugate_gradients_jacobi(&op, &b, &diag, &cfg);
        assert!(full.converged && full.iterations > 4);
        let interrupted = conjugate_gradients_jacobi(
            &op,
            &b,
            &diag,
            &CgConfig {
                max_iterations: Some(3),
                ..cfg
            },
        );
        let state = interrupted.checkpoint.unwrap();
        let resumed = conjugate_gradients_jacobi_resume(&op, &b, &diag, &cfg, &state);
        assert_eq!(resumed.x, full.x);
        assert_eq!(resumed.iterations, full.iterations);
    }

    #[test]
    fn resume_from_converged_state_is_a_no_op() {
        let n = 20;
        let op = random_spd(n, 9);
        let b = vec![1.0; n];
        let cfg = CgConfig {
            epsilon: 1e-10,
            checkpoint_interval: Some(5),
            ..CgConfig::default()
        };
        let full = conjugate_gradients(&op, &b, &cfg);
        assert!(full.converged);
        let resumed = conjugate_gradients_resume(&op, &b, &cfg, &full.checkpoint.unwrap());
        assert!(resumed.converged);
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(resumed.x, full.x);
    }

    #[test]
    fn no_checkpoint_interval_means_no_checkpoint() {
        let op = random_spd(10, 2);
        let r = conjugate_gradients(&op, &[1.0; 10], &CgConfig::with_epsilon(1e-8));
        assert!(r.checkpoint.is_none());
    }

    #[test]
    #[should_panic(expected = "checkpoint dimension mismatch")]
    fn resume_checks_dimension() {
        let op = random_spd(8, 4);
        let small = random_spd(4, 4);
        let r = conjugate_gradients(
            &small,
            &[1.0; 4],
            &CgConfig {
                checkpoint_interval: Some(1),
                ..CgConfig::with_epsilon(1e-8)
            },
        );
        let _ = conjugate_gradients_resume(
            &op,
            &[1.0; 8],
            &CgConfig::default(),
            &r.checkpoint.unwrap(),
        );
    }

    #[test]
    fn periodic_checkpoints_emit_recovery_events() {
        use crate::trace::{RecoveryKind, Telemetry};
        let n = 30;
        let op = random_spd(n, 3);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let t = Telemetry::new();
        let cfg = CgConfig {
            epsilon: 1e-10,
            checkpoint_interval: Some(2),
            ..CgConfig::default()
        };
        let r = conjugate_gradients_with_metrics(&op, &b, &cfg, Some(&t));
        let report = t.report();
        let checkpoints = report
            .recovery
            .iter()
            .filter(|s| s.kind == RecoveryKind::Checkpoint)
            .count();
        assert_eq!(checkpoints, r.iterations / 2);
        // checkpointing must not perturb the numerics
        let plain = conjugate_gradients(&op, &b, &CgConfig::with_epsilon(1e-10));
        assert_eq!(plain.x, r.x);
    }

    #[test]
    fn checkpoint_sink_receives_every_periodic_snapshot() {
        use std::sync::Mutex;
        struct Collect(Mutex<Vec<CgState<f64>>>);
        impl CheckpointSink<f64> for Collect {
            fn persist(&self, state: &CgState<f64>) {
                self.0.lock().unwrap().push(state.clone());
            }
        }
        let n = 30;
        let op = random_spd(n, 3);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let cfg = CgConfig {
            epsilon: 1e-10,
            checkpoint_interval: Some(2),
            ..CgConfig::default()
        };
        let sink = Collect(Mutex::new(Vec::new()));
        let r = conjugate_gradients_checkpointed(&op, &b, &cfg, None, None, None, Some(&sink));
        let snaps = sink.0.into_inner().unwrap();
        assert_eq!(snaps.len(), r.iterations / 2);
        for (k, s) in snaps.iter().enumerate() {
            assert_eq!(s.iterations(), 2 * (k + 1));
        }
        // resuming from any streamed snapshot reproduces the full solve
        let resumed = conjugate_gradients_resume(&op, &b, &cfg, &snaps[1]);
        assert_eq!(resumed.x, r.x);
        assert_eq!(resumed.iterations, r.iterations);
        // attaching a sink must not perturb the numerics
        let plain = conjugate_gradients(&op, &b, &cfg);
        assert_eq!(plain.x, r.x);
    }

    #[test]
    fn state_raw_parts_roundtrip() {
        let n = 16;
        let op = random_spd(n, 5);
        let b = vec![1.0; n];
        let cfg = CgConfig {
            epsilon: 1e-12,
            max_iterations: Some(4),
            checkpoint_interval: Some(1),
            ..CgConfig::default()
        };
        let state = conjugate_gradients(&op, &b, &cfg).checkpoint.unwrap();
        let rebuilt = CgState::from_raw_parts(
            state.solution().to_vec(),
            state.residual().to_vec(),
            state.direction().to_vec(),
            state.rho(),
            state.delta(),
            state.delta0(),
            state.iterations(),
        );
        assert_eq!(rebuilt, state);
        let full = CgConfig {
            epsilon: 1e-12,
            checkpoint_interval: Some(1),
            ..CgConfig::default()
        };
        let a = conjugate_gradients_resume(&op, &b, &full, &state);
        let b2 = conjugate_gradients_resume(&op, &b, &full, &rebuilt);
        assert_eq!(a.x, b2.x);
    }

    #[test]
    fn indefinite_operator_stops_gracefully() {
        // -I is not SPD; CG must bail out instead of diverging.
        let mut op = identity(4);
        for v in &mut op.a {
            *v = -*v;
        }
        let r = conjugate_gradients(&op, &[1.0; 4], &CgConfig::with_epsilon(1e-6));
        assert!(!r.converged);
        assert_eq!(r.iterations, 0);
    }
}
