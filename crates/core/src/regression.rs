//! Least squares support vector regression (LS-SVR) — the paper's §V
//! "regression tasks" extension.
//!
//! The beauty of the least squares formulation is that regression needs no
//! new machinery at all: the augmented KKT system of Eq. 11 never uses the
//! fact that `y ∈ {±1}`, so with real-valued targets the *identical*
//! reduced system `Q̃·α̃ = ȳ − y_m·1` yields the ridge-regression-in-
//! feature-space estimator of Saunders et al. (the paper's reference \[33\]).
//! Every backend, the CG solver and the multi-device split work unchanged;
//! only the model file and the prediction (no sign function) differ.

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use plssvm_data::dense::{DenseMatrix, SoAMatrix};
use plssvm_data::libsvm::RegressionData;
use plssvm_data::model::{KernelSpec, SvrModel};
use plssvm_data::Real;
use plssvm_simgpu::device::AtomicScalar;

use plssvm_data::CheckpointJournal;

use crate::backend::{BackendSelection, CpuTilingConfig, DeviceReport, Prepared};
use crate::cg::{CgConfig, SolveOutcome};
use crate::checkpoint::{load_resume_point, ContextFingerprint, JournalSink};
use crate::error::SvmError;
use crate::guard::{
    solve_with_guardrails_checkpointed, GuardedSolve, JacobiDiagonal, RecoveryPolicy,
    RungCheckpointSink,
};
use crate::kernel::kernel_row;
use crate::lowrank::{solve_lowrank, SolverSelection};
use crate::matrix_free::{bias, full_alpha, reduced_rhs};
use crate::trace::{spans, MetricsSink, RecoveryKind, SpanRecorder, Telemetry, TelemetryReport};

/// LS-SVR trainer configuration (mirrors [`crate::svm::LsSvm`]).
///
/// ```
/// use plssvm_core::prelude::*;
/// use plssvm_data::synthetic::{generate_sinc, SincConfig};
///
/// let data = generate_sinc::<f64>(&SincConfig::new(100, 7).with_noise(0.0))?;
/// let out = LsSvr::new()
///     .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
///     .with_cost(100.0)
///     .with_epsilon(1e-8)
///     .train(&data)?;
/// assert!(mean_squared_error(&out.model, &data) < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LsSvr<T> {
    /// Kernel function (default linear).
    pub kernel: KernelSpec<T>,
    /// The regularization constant `C > 0` (LS-SVM's `γ` in Suykens'
    /// notation).
    pub cost: T,
    /// CG relative-residual termination criterion ε.
    pub epsilon: T,
    /// Optional CG iteration cap.
    pub max_iterations: Option<usize>,
    /// Execution backend.
    pub backend: BackendSelection,
    /// Optional cache-tiling override for the blocked CPU matvec engine;
    /// mirrors [`crate::svm::LsSvm::cpu_tiling`].
    pub cpu_tiling: Option<CpuTilingConfig>,
    /// Optional observability sink (see [`crate::trace`]); mirrors
    /// [`crate::svm::LsSvm::metrics`].
    pub metrics: Option<Arc<Telemetry>>,
    /// Optional deterministic fault-injection plan (simulated device
    /// backends only); mirrors [`crate::svm::LsSvm::fault_plan`].
    pub fault_plan: Option<plssvm_simgpu::FaultPlan>,
    /// Snapshot CG state every this many iterations; mirrors
    /// [`crate::svm::LsSvm::checkpoint_interval`].
    pub checkpoint_interval: Option<usize>,
    /// Durable on-disk checkpoint journal; mirrors
    /// [`crate::svm::LsSvm::checkpoint_journal`].
    pub checkpoint_journal: Option<CheckpointJournal>,
    /// Resume from the journal's newest valid generation; mirrors
    /// [`crate::svm::LsSvm::resume`].
    pub resume: bool,
    /// Extra entropy for the checkpoint context fingerprint; mirrors
    /// [`crate::svm::LsSvm::checkpoint_salt`].
    pub checkpoint_salt: u64,
    /// Escalation ladder for non-converged solves; mirrors
    /// [`crate::svm::LsSvm::recovery_policy`].
    pub recovery_policy: RecoveryPolicy,
    /// Which solver runs the reduced system; mirrors
    /// [`crate::svm::LsSvm::solver`] (including the resume rejection).
    pub solver: SolverSelection,
}

impl<T: Real> Default for LsSvr<T> {
    fn default() -> Self {
        Self {
            kernel: KernelSpec::Linear,
            cost: T::ONE,
            epsilon: T::from_f64(1e-3),
            max_iterations: None,
            backend: BackendSelection::default(),
            cpu_tiling: None,
            metrics: None,
            fault_plan: None,
            checkpoint_interval: None,
            checkpoint_journal: None,
            resume: false,
            checkpoint_salt: 0,
            recovery_policy: RecoveryPolicy::default(),
            solver: SolverSelection::default(),
        }
    }
}

/// Everything a regression training run produces.
#[derive(Debug)]
pub struct SvrTrainOutput<T> {
    /// The trained regression model.
    pub model: SvrModel<T>,
    /// CG iterations performed (summed across all escalation rungs).
    pub iterations: usize,
    /// Whether CG met the ε criterion.
    pub converged: bool,
    /// Why the solve stopped (see [`crate::svm::TrainOutput::outcome`]).
    pub outcome: SolveOutcome,
    /// The recovery rungs that engaged, in order (empty on the happy
    /// path).
    pub escalations: Vec<RecoveryKind>,
    /// Final `‖r‖/‖r₀‖`.
    pub relative_residual: f64,
    /// Device counters (simulated backends only).
    pub device: Option<DeviceReport>,
    /// The unified observability report (`Some` iff a sink was attached
    /// via [`LsSvr::with_metrics`]).
    pub telemetry: Option<TelemetryReport>,
    /// True when persistent storage failures disabled durable
    /// checkpointing partway through the solve (see
    /// [`crate::svm::TrainOutput::io_degraded`]).
    pub io_degraded: bool,
}

impl<T: AtomicScalar> LsSvr<T> {
    /// A trainer with all defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the kernel function.
    pub fn with_kernel(mut self, kernel: KernelSpec<T>) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the regularization constant `C`.
    pub fn with_cost(mut self, cost: T) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the CG tolerance ε.
    pub fn with_epsilon(mut self, epsilon: T) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: BackendSelection) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the cache tiling of the blocked CPU matvec engine;
    /// mirrors [`crate::svm::LsSvm::with_cpu_tiling`].
    pub fn with_cpu_tiling(mut self, tiling: CpuTilingConfig) -> Self {
        self.cpu_tiling = Some(tiling);
        self
    }

    /// Attaches an observability sink; mirrors
    /// [`crate::svm::LsSvm::with_metrics`].
    pub fn with_metrics(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.metrics = Some(telemetry);
        self
    }

    /// Installs a deterministic device-fault plan for the solve; mirrors
    /// [`crate::svm::LsSvm::with_fault_plan`].
    pub fn with_fault_plan(mut self, plan: plssvm_simgpu::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Snapshots CG state every `iterations` iterations; mirrors
    /// [`crate::svm::LsSvm::with_checkpoint_interval`].
    pub fn with_checkpoint_interval(mut self, iterations: usize) -> Self {
        self.checkpoint_interval = Some(iterations);
        self
    }

    /// Streams snapshots into a durable on-disk journal; mirrors
    /// [`crate::svm::LsSvm::with_checkpoint_journal`].
    pub fn with_checkpoint_journal(mut self, journal: CheckpointJournal) -> Self {
        self.checkpoint_journal = Some(journal);
        self
    }

    /// Resumes from the journal's newest valid generation; mirrors
    /// [`crate::svm::LsSvm::with_resume`].
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Folds extra entropy into the checkpoint context fingerprint;
    /// mirrors [`crate::svm::LsSvm::with_checkpoint_salt`].
    pub fn with_checkpoint_salt(mut self, salt: u64) -> Self {
        self.checkpoint_salt = salt;
        self
    }

    /// The checkpoint context fingerprint of this invocation (see
    /// [`crate::svm::LsSvm`]'s equivalent; the `"svr"` tag keeps
    /// classification and regression journals mutually exclusive).
    fn checkpoint_context(&self, data: &RegressionData<T>) -> u64 {
        let mut fp = ContextFingerprint::new()
            .push_str("svr")
            .push_kernel(&self.kernel)
            .push_f64(self.cost.to_f64())
            .push_u64(T::BYTES as u64)
            .push_u64(data.points() as u64)
            .push_u64(data.features() as u64)
            .push_u64(self.checkpoint_salt);
        for p in 0..data.points() {
            for &v in data.x.row(p) {
                fp = fp.push_f64(v.to_f64());
            }
            fp = fp.push_f64(data.y[p].to_f64());
        }
        fp.finish()
    }

    /// Overrides the solver recovery policy; mirrors
    /// [`crate::svm::LsSvm::with_recovery_policy`].
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery_policy = policy;
        self
    }

    /// Selects the solver for the reduced system; mirrors
    /// [`crate::svm::LsSvm::with_solver`].
    pub fn with_solver(mut self, solver: SolverSelection) -> Self {
        self.solver = solver;
        self
    }

    /// Trains on a regression data set.
    pub fn train(&self, data: &RegressionData<T>) -> Result<SvrTrainOutput<T>, SvmError> {
        let t_total = Instant::now();
        if data.points() < 2 {
            return Err(SvmError::Solver(
                "regression needs at least two data points".into(),
            ));
        }
        if self.resume && matches!(self.solver, SolverSelection::LowRank { .. }) {
            return Err(SvmError::Solver(
                "cannot resume a checkpointed run with the low-rank solver: the \
                 checkpoint journal streams exact-CG state only (drop the resume \
                 flag or select the exact solver)"
                    .into(),
            ));
        }
        let mut rec = SpanRecorder::new();
        // the tiling knob overrides what the OpenMP selection carries
        let backend = match (&self.backend, self.cpu_tiling) {
            (BackendSelection::OpenMp { threads, .. }, Some(tiling)) => BackendSelection::OpenMp {
                threads: *threads,
                tiling,
            },
            _ => self.backend.clone(),
        };
        let soa = rec.time(spans::TRANSFORM, || match &backend {
            BackendSelection::SimGpu { tiling, .. }
            | BackendSelection::SimGpuRows { tiling, .. }
            | BackendSelection::SimCluster { tiling, .. } => {
                Some(SoAMatrix::from_dense(&data.x, tiling.tile()))
            }
            _ => None,
        });
        let t_cg = Instant::now();
        let t_setup = Instant::now();
        let mut prepared = Prepared::new(&backend, &data.x, soa.as_ref(), &self.kernel, self.cost)?;
        if let Some(sink) = &self.metrics {
            prepared.set_metrics(Arc::clone(sink) as Arc<dyn MetricsSink>);
        }
        if let Some(plan) = &self.fault_plan {
            prepared.install_fault_plan(plan)?;
        }
        let rhs = reduced_rhs(&data.y);
        rec.record(spans::CG_SETUP, t_setup.elapsed());
        let cfg = CgConfig {
            epsilon: self.epsilon,
            max_iterations: self.max_iterations,
            checkpoint_interval: self.checkpoint_interval,
            ..CgConfig::default()
        };
        let metrics_ref = self.metrics.as_deref().map(|t| t as &dyn MetricsSink);
        let t_solve = Instant::now();
        // diag(Q̃)ᵢ = k(xᵢ,xᵢ) + ridgeᵢ − 2qᵢ + Q_mm — only computed if the
        // preconditioner rung of the escalation ladder engages
        let compute_diagonal = || {
            let params = prepared.params();
            (0..params.dim())
                .map(|i| {
                    kernel_row(&self.kernel, data.x.row(i), data.x.row(i)) + params.ridge(i)
                        - T::TWO * params.q[i]
                        + params.q_mm()
                })
                .collect::<Vec<T>>()
        };
        let mut io_degraded = false;
        let GuardedSolve {
            result: solve,
            total_iterations,
            escalations,
        } = match self.solver {
            SolverSelection::LowRank {
                rank,
                seed,
                strategy,
            } => solve_lowrank(
                &prepared,
                prepared.params(),
                &data.x,
                &self.kernel,
                rank,
                seed,
                strategy,
                &rhs,
                &cfg,
                &self.recovery_policy,
                JacobiDiagonal::Lazy(&compute_diagonal),
                metrics_ref,
            )?,
            SolverSelection::Exact => {
                let mut resume_point = None;
                let journal_sink = match &self.checkpoint_journal {
                    Some(journal) => {
                        let context = self.checkpoint_context(data);
                        if self.resume {
                            resume_point =
                                load_resume_point::<T>(journal, context, rhs.len(), metrics_ref)?;
                        }
                        Some(JournalSink::new(
                            journal.clone(),
                            context,
                            self.metrics
                                .as_ref()
                                .map(|t| Arc::clone(t) as Arc<dyn MetricsSink>),
                        ))
                    }
                    None => None,
                };
                let guarded = solve_with_guardrails_checkpointed(
                    &prepared,
                    &rhs,
                    &cfg,
                    &self.recovery_policy,
                    JacobiDiagonal::Lazy(&compute_diagonal),
                    metrics_ref,
                    journal_sink
                        .as_ref()
                        .map(|s| s as &dyn RungCheckpointSink<T>),
                    resume_point.as_ref(),
                );
                io_degraded = journal_sink.as_ref().is_some_and(JournalSink::is_degraded);
                guarded
            }
        };
        rec.record(spans::CG_SOLVE, t_solve.elapsed());
        rec.record(spans::CG, t_cg.elapsed());
        let t_write = Instant::now();
        let b = bias(prepared.params(), &data.y, &solve.x);
        let alpha = full_alpha(&solve.x);
        let model = SvrModel {
            kernel: self.kernel,
            rho: -b,
            sv: data.x.clone(),
            coef: alpha,
            solver: self.solver.provenance(),
        };
        rec.record(spans::WRITE, t_write.elapsed());
        rec.record(spans::TRAIN, t_total.elapsed());
        let device = prepared.device_report();
        let telemetry = self.metrics.as_ref().map(|t| {
            if let Some(dev) = &device {
                dev.fold_into(&**t);
            }
            rec.flush_into(&**t);
            t.report()
        });
        Ok(SvrTrainOutput {
            model,
            iterations: total_iterations,
            converged: solve.converged,
            outcome: solve.outcome,
            escalations,
            relative_residual: solve.relative_residual().to_f64(),
            device,
            telemetry,
            io_degraded,
        })
    }
}

/// Predicted regression values `f(x) = Σᵢ coefᵢ·k(svᵢ, x) + b` for every
/// row of `x`, computed in parallel over the test points with the panel
/// micro-kernel (`PANEL_MR` support vectors per feature pass).
pub fn predict_values<T: Real>(model: &SvrModel<T>, x: &DenseMatrix<T>) -> Vec<T> {
    assert_eq!(
        x.cols(),
        model.features(),
        "test data has {} features, model expects {}",
        x.cols(),
        model.features()
    );
    predict_values_panel(model, x)
}

/// Fallible [`predict_values`]: returns a structured
/// [`crate::error::SvmError::Solver`] instead of panicking when the query
/// batch is empty, has zero-feature rows, or does not match the model's
/// feature count.
pub fn try_predict_values<T: Real>(
    model: &SvrModel<T>,
    x: &DenseMatrix<T>,
) -> Result<Vec<T>, crate::error::SvmError> {
    crate::svm::validate_query_batch(model.features(), x)?;
    Ok(predict_values_panel(model, x))
}

/// The panel-microkernel regression sweep shared by the panicking and
/// fallible entry points.
fn predict_values_panel<T: Real>(model: &SvrModel<T>, x: &DenseMatrix<T>) -> Vec<T> {
    use crate::kernel::{kernel_panel, PANEL_MR};
    let b = model.bias();
    let m = model.sv.rows();
    let isa = crate::simd::Isa::select();
    (0..x.rows())
        .into_par_iter()
        .map(|p| {
            let row = x.row(p);
            let mut acc = b;
            let mut i = 0;
            while i < m {
                let h = (m - i).min(PANEL_MR);
                let mut ra: [&[T]; PANEL_MR] = [row; PANEL_MR];
                for (a, slot) in ra.iter_mut().enumerate().take(h) {
                    *slot = model.sv.row(i + a);
                }
                let panel = kernel_panel(&model.kernel, isa, &ra[..h], &[row]);
                for (a, prow) in panel.iter().enumerate().take(h) {
                    acc = model.coef[i + a].mul_add(prow[0], acc);
                }
                i += h;
            }
            acc
        })
        .collect()
}

/// Mean squared error of the model on a labeled regression set.
pub fn mean_squared_error<T: Real>(model: &SvrModel<T>, data: &RegressionData<T>) -> f64 {
    let predictions = predict_values(model, &data.x);
    predictions
        .iter()
        .zip(&data.y)
        .map(|(p, y)| {
            let e = (*p - *y).to_f64();
            e * e
        })
        .sum::<f64>()
        / data.points() as f64
}

/// Coefficient of determination `R²` on a labeled regression set.
pub fn r_squared<T: Real>(model: &SvrModel<T>, data: &RegressionData<T>) -> f64 {
    let mean = data.y.iter().map(|v| v.to_f64()).sum::<f64>() / data.points() as f64;
    let ss_tot: f64 = data
        .y
        .iter()
        .map(|v| {
            let d = v.to_f64() - mean;
            d * d
        })
        .sum();
    if ss_tot == 0.0 {
        return 1.0;
    }
    1.0 - mean_squared_error(model, data) * data.points() as f64 / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::synthetic::{generate_sinc, SincConfig};
    use plssvm_simgpu::{hw, Backend as DeviceApi};

    fn sinc(points: usize, noise: f64, seed: u64) -> RegressionData<f64> {
        generate_sinc(&SincConfig::new(points, seed).with_noise(noise)).unwrap()
    }

    fn rbf_svr() -> LsSvr<f64> {
        LsSvr::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .with_cost(100.0)
            .with_epsilon(1e-8)
    }

    #[test]
    fn fits_noiseless_sinc_tightly() {
        let data = sinc(200, 0.0, 1);
        let out = rbf_svr().train(&data).unwrap();
        assert!(out.converged);
        let mse = mean_squared_error(&out.model, &data);
        assert!(mse < 1e-5, "mse {mse}");
        assert!(r_squared(&out.model, &data) > 0.999);
    }

    #[test]
    fn generalizes_from_noisy_data() {
        let train = sinc(200, 0.05, 2);
        let test = sinc(100, 0.0, 3); // clean targets measure the true fit
        let out = LsSvr::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .with_cost(10.0) // moderate C: smooth, doesn't chase noise
            .with_epsilon(1e-8)
            .train(&train)
            .unwrap();
        let mse = mean_squared_error(&out.model, &test);
        assert!(mse < 0.01, "test mse {mse}");
        assert!(r_squared(&out.model, &test) > 0.9);
    }

    #[test]
    fn linear_svr_recovers_a_linear_function() {
        // y = 2x₁ − 3x₂ + 1, exactly representable by the linear LS-SVR
        let mut x = DenseMatrix::<f64>::zeros(50, 2);
        let mut y = Vec::new();
        for p in 0..50 {
            let a = (p as f64) / 10.0 - 2.5;
            let b = ((p * 7 % 13) as f64) / 3.0 - 2.0;
            x.set(p, 0, a);
            x.set(p, 1, b);
            y.push(2.0 * a - 3.0 * b + 1.0);
        }
        let data = RegressionData::new(x, y).unwrap();
        let out = LsSvr::new()
            .with_cost(1e6) // tiny ridge → near-interpolation
            .with_epsilon(1e-12)
            .train(&data)
            .unwrap();
        let mse = mean_squared_error(&out.model, &data);
        assert!(mse < 1e-6, "mse {mse}");
    }

    #[test]
    fn all_backends_agree_on_regression() {
        let data = sinc(80, 0.02, 4);
        let reference = rbf_svr()
            .with_backend(BackendSelection::Serial)
            .train(&data)
            .unwrap();
        for backend in [
            BackendSelection::openmp(Some(2)),
            BackendSelection::SparseCpu { threads: None },
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ] {
            let out = rbf_svr()
                .with_backend(backend.clone())
                .train(&data)
                .unwrap();
            assert!(
                (out.model.rho - reference.model.rho).abs() < 1e-6,
                "{backend:?}"
            );
        }
    }

    #[test]
    fn multi_device_regression_linear_kernel() {
        let data = {
            // multi-feature linear regression set
            let mut x = DenseMatrix::<f64>::zeros(60, 6);
            let mut y = Vec::new();
            for p in 0..60 {
                let mut t = 0.5;
                for f in 0..6 {
                    let v = ((p * (f + 3)) % 17) as f64 / 5.0 - 1.5;
                    x.set(p, f, v);
                    t += (f as f64 - 2.5) * v;
                }
                y.push(t);
            }
            RegressionData::new(x, y).unwrap()
        };
        let single = LsSvr::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
            .train(&data)
            .unwrap();
        let quad = LsSvr::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::sim_multi_gpu(
                hw::A100,
                DeviceApi::Cuda,
                3,
            ))
            .train(&data)
            .unwrap();
        assert!((single.model.rho - quad.model.rho).abs() < 1e-6);
        assert!(quad.device.unwrap().per_device.len() == 3);
    }

    #[test]
    fn model_file_roundtrip_preserves_predictions() {
        let data = sinc(60, 0.05, 5);
        let out = rbf_svr().train(&data).unwrap();
        let dir = std::env::temp_dir().join("plssvm_svr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sinc.model");
        out.model.save(&path).unwrap();
        let loaded = SvrModel::<f64>::load(&path).unwrap();
        let a = predict_values(&out.model, &data.x);
        let b = predict_values(&loaded, &data.x);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_mirrors_classification_api() {
        use crate::trace::{spans, Telemetry};
        let data = sinc(80, 0.02, 4);
        let t = Telemetry::shared();
        let out = rbf_svr().with_metrics(t.clone()).train(&data).unwrap();
        let report = out.telemetry.expect("telemetry");
        assert_eq!(report.iterations(), out.iterations);
        assert!(report.kernels["svm_kernel"].launches >= out.iterations as u64);
        assert!(report.span(spans::CG) >= report.span(spans::CG_SOLVE));
        assert!(report.span(spans::TRAIN) >= report.span(spans::CG));
    }

    #[test]
    fn journaled_regression_resumes_bit_exactly() {
        let data = sinc(120, 0.0, 9);
        let dir = std::env::temp_dir().join(format!("plssvm_svr_journal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let reference = rbf_svr().train(&data).unwrap();
        let journaled = rbf_svr()
            .with_checkpoint_interval(5)
            .with_checkpoint_journal(journal.clone())
            .train(&data)
            .unwrap();
        assert_eq!(reference.model.coef, journaled.model.coef);
        assert!(!journal.is_empty().unwrap());
        let resumed = rbf_svr()
            .with_checkpoint_interval(5)
            .with_checkpoint_journal(journal)
            .with_resume(true)
            .train(&data)
            .unwrap();
        assert_eq!(resumed.model.coef, reference.model.coef);
        assert_eq!(resumed.model.rho, reference.model.rho);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svr_and_svm_journals_are_mutually_exclusive() {
        // an SVR journal must not be resumable by the classification
        // trainer even on identical x/y shapes — the "svr" tag in the
        // context fingerprint separates them
        let data = sinc(40, 0.0, 11);
        let dir = std::env::temp_dir().join(format!("plssvm_svr_tag_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        LsSvr::new()
            .with_epsilon(1e-8)
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal.clone())
            .train(&data)
            .unwrap();
        let err = LsSvr::new()
            .with_epsilon(1e-8)
            .with_cost(3.0)
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal)
            .with_resume(true)
            .train(&data)
            .unwrap_err();
        assert!(
            matches!(&err, SvmError::Checkpoint(e) if e.kind() == "context_mismatch"),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lowrank_regression_matches_exact() {
        let data = sinc(150, 0.0, 21);
        let exact = rbf_svr().train(&data).unwrap();
        let lowrank = rbf_svr()
            .with_solver(SolverSelection::lowrank(40))
            .train(&data)
            .unwrap();
        assert!(lowrank.converged, "{:?}", lowrank.outcome);
        assert!((exact.model.rho - lowrank.model.rho).abs() < 1e-5);
        let mse = mean_squared_error(&lowrank.model, &data);
        assert!(mse < 1e-5, "mse {mse}");
    }

    #[test]
    fn lowrank_resume_is_rejected() {
        let data = sinc(30, 0.0, 22);
        let dir = std::env::temp_dir().join(format!("plssvm_svr_lr_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        let err = rbf_svr()
            .with_solver(SolverSelection::lowrank(8))
            .with_checkpoint_journal(journal)
            .with_resume(true)
            .train(&data)
            .unwrap_err();
        assert!(
            matches!(&err, SvmError::Solver(msg) if msg.contains("resume")),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let one = RegressionData::new(
            DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap(),
            vec![1.0],
        )
        .unwrap();
        assert!(LsSvr::new().train(&one).is_err());
    }

    #[test]
    fn r_squared_of_constant_targets_is_one_for_perfect_fit() {
        let x = DenseMatrix::from_rows(vec![vec![1.0f64], vec![2.0], vec![3.0]]).unwrap();
        let data = RegressionData::new(x, vec![5.0, 5.0, 5.0]).unwrap();
        let out = LsSvr::new().with_epsilon(1e-10).train(&data).unwrap();
        assert!(mean_squared_error(&out.model, &data) < 1e-10);
        assert_eq!(r_squared(&out.model, &data), 1.0);
    }
}
