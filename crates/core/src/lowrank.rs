//! Randomized low-rank (Nyström) solver path.
//!
//! The exact CG solver pays `O(m²·d)` per implicit matvec. Following the
//! randomized kernel methods of Andrecut (PAPERS.md), this module builds a
//! rank-`k` Nyström approximation of the kernel block and solves the
//! reduced LS-SVM system through it in `O(m·k·d + m·k²)`:
//!
//! ```text
//! Q̃ = K + D + P·M·Pᵀ           (the exact decomposition, see below)
//! K ≈ K̂ = C·W⁻¹·Cᵀ             (Nyström: C = K[:,L] ∈ ℝ^{n×k}, W = K[L,L])
//! ```
//!
//! where `D = diag(ridge(i))` is the LS-SVM ridge, `P = [q | 1] ∈ ℝ^{n×2}`
//! and `M = [[0,−1],[−1,q_mm]]` carry the rank-two elimination terms of
//! Eq. 16 (this reproduces [`QTildeParams::apply_corrections`] exactly:
//! `P·M·Pᵀ = −q·1ᵀ − 1·qᵀ + q_mm·1·1ᵀ`). The approximate operator
//! `Â = D + K̂ + P·M·Pᵀ` is inverted **exactly** by two nested Woodbury
//! identities:
//!
//! 1. `A₁ = D + C·W⁻¹·Cᵀ` ⇒ `A₁⁻¹v = D⁻¹v − D⁻¹C·S⁻¹·CᵀD⁻¹v` with the
//!    SPD `k×k` capacitance `S = W + CᵀD⁻¹C`, factored once by Cholesky
//!    with an escalating jitter ladder (rank-deficient sketches — e.g.
//!    duplicate landmark rows — never panic, they get jitter),
//! 2. `Â = A₁ + P·M·Pᵀ` ⇒ a 2×2 capacitance `G = M⁻¹ + Pᵀ·A₁⁻¹·P` with
//!    `M⁻¹ = [[−q_mm,−1],[−1,0]]` (det M = −1), guarded by a determinant
//!    check.
//!
//! `C` and `W` are assembled through the same
//! [`crate::kernel::kernel_panel`] micro-kernels the CPU backends use; all
//! factorization linear algebra runs in f64 regardless of the working
//! precision `T`.
//!
//! **Escalation flow** (the pre-ladder in front of
//! [`crate::guard::solve_with_guardrails`]):
//!
//! 1. direct solve `x = Â⁻¹b`, verified against the **exact** operator;
//! 2. if the true relative residual misses ε, a
//!    [`RecoveryKind::Precondition`] event fires and a Nyström-
//!    preconditioned CG polish runs (exact matvecs, `Â⁻¹` as the
//!    preconditioner, started from the direct iterate);
//! 3. if that still misses ε, a [`RecoveryKind::SolverFallback`] event
//!    fires and the problem goes to the exact escalation ladder of
//!    [`crate::guard`] unchanged.
//!
//! Every low-rank solve streams one [`LowRankSample`] (rank, strategy,
//! jitter steps, direct residual, PCG iterations, assembly/solve wall
//! time) through the [`MetricsSink`] channel. Landmark selection is fully
//! determined by the seed ([`plssvm_data::sampling`]), so results are
//! bit-reproducible across thread counts.

use std::time::Instant;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::sampling::{sample_uniform, sample_weighted};
use plssvm_data::Real;

use crate::cg::{BreakdownKind, CgConfig, CgResult, LinOp, SolveOutcome};
use crate::error::SvmError;
use crate::guard::{solve_with_guardrails, GuardedSolve, JacobiDiagonal, RecoveryPolicy};
use crate::kernel::{dot, kernel_panel, PANEL_MR, PANEL_NR};
use crate::matrix_free::QTildeParams;
use crate::trace::{
    CgIterationSample, CgOutcomeSample, LowRankSample, MetricsSink, RecoveryKind, RecoverySample,
};

/// Default landmark-selection seed (the CLI's `--lowrank-seed` default).
pub const DEFAULT_SEED: u64 = 42;

/// How Nyström landmarks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LandmarkStrategy {
    /// `k` indices drawn uniformly without replacement.
    #[default]
    Uniform,
    /// Ridge leverage scores estimated from a uniform pilot sketch, then
    /// `k` indices drawn with probability proportional to their score
    /// (importance sampling — better landmarks on non-uniform data at
    /// twice the assembly cost).
    Leverage,
}

impl LandmarkStrategy {
    /// Stable lower-case name (`uniform` / `leverage`) used by the CLI and
    /// the telemetry schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            LandmarkStrategy::Uniform => "uniform",
            LandmarkStrategy::Leverage => "leverage",
        }
    }
}

impl std::str::FromStr for LandmarkStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(LandmarkStrategy::Uniform),
            "leverage" => Ok(LandmarkStrategy::Leverage),
            other => Err(format!(
                "unknown landmark strategy '{other}' (expected 'uniform' or 'leverage')"
            )),
        }
    }
}

/// Which solver the training drivers run (the CLI's `--solver` switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverSelection {
    /// The exact CG solve through the escalation ladder (the paper's
    /// solver; the default).
    #[default]
    Exact,
    /// The randomized low-rank (Nyström) path of this module.
    LowRank {
        /// Target rank `k` (clamped to the reduced dimension `m − 1`;
        /// rank 0 is rejected with a structured error).
        rank: usize,
        /// Landmark-selection seed.
        seed: u64,
        /// Landmark-selection strategy.
        strategy: LandmarkStrategy,
    },
}

impl SolverSelection {
    /// A low-rank selection with the default seed and uniform landmarks.
    pub fn lowrank(rank: usize) -> Self {
        SolverSelection::LowRank {
            rank,
            seed: DEFAULT_SEED,
            strategy: LandmarkStrategy::Uniform,
        }
    }

    /// Stable lower-case solver name (`exact` / `lowrank`).
    pub fn name(&self) -> &'static str {
        match self {
            SolverSelection::Exact => "exact",
            SolverSelection::LowRank { .. } => "lowrank",
        }
    }

    /// The model-file provenance string (the `solver` header key; see
    /// [`plssvm_data::model::SvmModel::solver`]). `None` for the exact
    /// solver, so exactly-solved models stay byte-compatible with LIBSVM.
    /// Records the *requested* rank (clamping to the system dimension
    /// happens inside the solve).
    pub fn provenance(&self) -> Option<String> {
        match self {
            SolverSelection::Exact => None,
            SolverSelection::LowRank {
                rank,
                seed,
                strategy,
            } => Some(format!(
                "lowrank rank={rank} seed={seed} strategy={}",
                strategy.as_str()
            )),
        }
    }
}

/// Maximum jitter-ladder steps before a factorization is declared
/// unusable (τ then sits at `0.1·trace(S)/k`, far beyond any realistic
/// rounding deficiency).
const MAX_JITTER_STEPS: usize = 12;

/// Assembles the kernel block `out[i][j] = k(rows_a[i], rows_b[j])`
/// through the panel micro-kernel, upcast to f64 (row-major
/// `rows_a.len() × rows_b.len()`).
fn assemble_block<T: Real>(kernel: &KernelSpec<T>, rows_a: &[&[T]], rows_b: &[&[T]]) -> Vec<f64> {
    let (m, k) = (rows_a.len(), rows_b.len());
    let mut out = vec![0.0f64; m * k];
    if m == 0 || k == 0 {
        return out;
    }
    let isa = crate::simd::Isa::select();
    let mut i = 0;
    while i < m {
        let h = (m - i).min(PANEL_MR);
        let mut ra: [&[T]; PANEL_MR] = [rows_a[i]; PANEL_MR];
        for (a, slot) in ra.iter_mut().enumerate().take(h) {
            *slot = rows_a[i + a];
        }
        let mut j = 0;
        while j < k {
            let w = (k - j).min(PANEL_NR);
            let panel = kernel_panel(kernel, isa, &ra[..h], &rows_b[j..j + w]);
            for (a, prow) in panel.iter().enumerate().take(h) {
                for (bq, &val) in prow.iter().enumerate().take(w) {
                    out[(i + a) * k + (j + bq)] = val.to_f64();
                }
            }
            j += w;
        }
        i += h;
    }
    out
}

/// In-place lower Cholesky of the row-major `k×k` matrix. Fails (with the
/// offending pivot index) on a non-positive or non-finite pivot.
fn cholesky(a: &mut [f64], k: usize) -> Result<(), usize> {
    for i in 0..k {
        for j in 0..=i {
            let mut s = a[i * k + j];
            for p in 0..j {
                s -= a[i * k + p] * a[j * k + p];
            }
            if i == j {
                if !(s.is_finite() && s > 0.0) {
                    return Err(i);
                }
                a[i * k + i] = s.sqrt();
            } else {
                a[i * k + j] = s / a[j * k + j];
            }
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ·x = b` in place given the lower factor `L`.
fn chol_solve(l: &[f64], k: usize, x: &mut [f64]) {
    for i in 0..k {
        let mut s = x[i];
        for j in 0..i {
            s -= l[i * k + j] * x[j];
        }
        x[i] = s / l[i * k + i];
    }
    for i in (0..k).rev() {
        let mut s = x[i];
        for j in i + 1..k {
            s -= l[j * k + i] * x[j];
        }
        x[i] = s / l[i * k + i];
    }
}

/// Cholesky with an escalating jitter ladder: attempt τ = 0 first, then
/// `τ = 10^step · 10⁻¹² · trace(S)/k` for `step = 0..MAX_JITTER_STEPS`.
/// Returns the factor and the number of jitter steps taken (0 = clean), or
/// `None` when even the largest jitter cannot make the matrix factorable
/// (non-finite entries).
fn cholesky_with_jitter(s: &[f64], k: usize) -> Option<(Vec<f64>, usize)> {
    let trace: f64 = (0..k).map(|i| s[i * k + i]).sum();
    let base = if trace.is_finite() && trace > 0.0 {
        trace / k as f64
    } else {
        1.0
    };
    for step in 0..=MAX_JITTER_STEPS {
        let mut a = s.to_vec();
        if step > 0 {
            let tau = base * 1e-12 * 10f64.powi(step as i32 - 1);
            for i in 0..k {
                a[i * k + i] += tau;
            }
        }
        if cholesky(&mut a, k).is_ok() {
            return Some((a, step));
        }
    }
    None
}

/// The factored Nyström approximation `Â = D + C·W⁻¹·Cᵀ + P·M·Pᵀ` of `Q̃`,
/// applied as `Â⁻¹·v` through the two nested Woodbury identities of the
/// module docs. All storage and arithmetic are f64.
struct NystromFactor {
    k: usize,
    /// `C = K[:,L]`, row-major `n×k`.
    c: Vec<f64>,
    /// `D⁻¹` (reciprocal ridge), length `n`.
    inv_d: Vec<f64>,
    /// Lower Cholesky factor of `S = W + τI + CᵀD⁻¹C`, row-major `k×k`.
    s_chol: Vec<f64>,
    /// Jitter steps the capacitance factorization needed (0 = clean).
    jitter_steps: usize,
    /// `q` in f64 (length `n`).
    q: Vec<f64>,
    /// `u₁ = A₁⁻¹·q`.
    u1: Vec<f64>,
    /// `u₂ = A₁⁻¹·1`.
    u2: Vec<f64>,
    /// `G = M⁻¹ + Pᵀ·A₁⁻¹·P`, row-major 2×2.
    g: [f64; 4],
    /// `det G`, with usability pre-checked against the matrix scale.
    g_det: f64,
    /// Whether the rank-two stage is applied (false on a degenerate `G`,
    /// leaving `Â⁻¹ ≈ A₁⁻¹` — still a serviceable preconditioner).
    rank2_usable: bool,
}

impl NystromFactor {
    /// Builds the factorization for the given landmark set. `None` when
    /// the capacitance is unfactorable even with maximal jitter.
    fn build<T: Real>(
        params: &QTildeParams<T>,
        data: &DenseMatrix<T>,
        kernel: &KernelSpec<T>,
        landmarks: &[usize],
    ) -> Option<Self> {
        let n = params.dim();
        let k = landmarks.len();
        let rows: Vec<&[T]> = (0..n).map(|i| data.row(i)).collect();
        let lm: Vec<&[T]> = landmarks.iter().map(|&j| data.row(j)).collect();
        let c = assemble_block(kernel, &rows, &lm);
        let mut s = assemble_block(kernel, &lm, &lm);
        let inv_d: Vec<f64> = (0..n).map(|i| 1.0 / params.ridge(i).to_f64()).collect();
        // S = W + CᵀD⁻¹C, accumulated as n rank-one updates over the
        // contiguous rows of C
        for i in 0..n {
            let row = &c[i * k..(i + 1) * k];
            let di = inv_d[i];
            for j1 in 0..k {
                let f = di * row[j1];
                let srow = &mut s[j1 * k..(j1 + 1) * k];
                for (sv, &cv) in srow.iter_mut().zip(row) {
                    *sv += f * cv;
                }
            }
        }
        let (s_chol, jitter_steps) = cholesky_with_jitter(&s, k)?;

        let q: Vec<f64> = params.q.iter().map(|v| v.to_f64()).collect();
        let mut partial = Self {
            k,
            c,
            inv_d,
            s_chol,
            jitter_steps,
            q,
            u1: Vec::new(),
            u2: Vec::new(),
            g: [0.0; 4],
            g_det: 0.0,
            rank2_usable: false,
        };
        let u1 = partial.apply_a1_inv(&partial.q);
        let u2 = partial.apply_a1_inv(&vec![1.0; n]);
        // G = M⁻¹ + PᵀA₁⁻¹P with M⁻¹ = [[−q_mm,−1],[−1,0]] (det M = −1)
        let q_mm = params.q_mm().to_f64();
        let g = [
            -q_mm + dot(&partial.q, &u1),
            -1.0 + dot(&partial.q, &u2),
            -1.0 + u1.iter().sum::<f64>(),
            u2.iter().sum::<f64>(),
        ];
        let g_det = g[0] * g[3] - g[1] * g[2];
        let scale = g.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        partial.u1 = u1;
        partial.u2 = u2;
        partial.g = g;
        partial.g_det = g_det;
        partial.rank2_usable = g_det.is_finite() && g_det.abs() > 1e-14 * scale * scale;
        Some(partial)
    }

    /// `A₁⁻¹·v = D⁻¹v − D⁻¹C·S⁻¹·CᵀD⁻¹v` (stage-one Woodbury).
    fn apply_a1_inv(&self, v: &[f64]) -> Vec<f64> {
        let k = self.k;
        let mut dv: Vec<f64> = v.iter().zip(&self.inv_d).map(|(a, b)| a * b).collect();
        let mut t = vec![0.0f64; k];
        for (i, &dvi) in dv.iter().enumerate() {
            let row = &self.c[i * k..(i + 1) * k];
            for (tj, &cij) in t.iter_mut().zip(row) {
                *tj += dvi * cij;
            }
        }
        chol_solve(&self.s_chol, k, &mut t);
        for (i, dvi) in dv.iter_mut().enumerate() {
            let row = &self.c[i * k..(i + 1) * k];
            *dvi -= self.inv_d[i] * dot(row, &t);
        }
        dv
    }

    /// `Â⁻¹·v` (both Woodbury stages).
    fn apply_inv(&self, v: &[f64]) -> Vec<f64> {
        let mut y = self.apply_a1_inv(v);
        if self.rank2_usable {
            let t1 = dot(&self.q, &y);
            let t2: f64 = y.iter().sum();
            let z1 = (self.g[3] * t1 - self.g[1] * t2) / self.g_det;
            let z2 = (-self.g[2] * t1 + self.g[0] * t2) / self.g_det;
            for ((yv, &u1v), &u2v) in y.iter_mut().zip(&self.u1).zip(&self.u2) {
                *yv -= u1v * z1 + u2v * z2;
            }
        }
        y
    }
}

/// Chooses `k` landmark indices from the `n` non-eliminated training
/// points, deterministically for a given seed.
fn select_landmarks<T: Real>(
    params: &QTildeParams<T>,
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    k: usize,
    seed: u64,
    strategy: LandmarkStrategy,
) -> Vec<usize> {
    let n = params.dim();
    match strategy {
        LandmarkStrategy::Uniform => sample_uniform(n, k, seed),
        LandmarkStrategy::Leverage => {
            // Ridge leverage scores against a uniform pilot sketch of the
            // same size: ℓᵢ = K[i,P]·(K[P,P] + λI)⁻¹·K[i,P]ᵀ with λ the
            // mean ridge, then importance-sample proportional to ℓ.
            let pilot = sample_uniform(n, k, seed);
            let p = pilot.len();
            let rows: Vec<&[T]> = (0..n).map(|i| data.row(i)).collect();
            let lm: Vec<&[T]> = pilot.iter().map(|&j| data.row(j)).collect();
            let c = assemble_block(kernel, &rows, &lm);
            let mut w = assemble_block(kernel, &lm, &lm);
            let lambda = (0..n).map(|i| params.ridge(i).to_f64()).sum::<f64>() / (n.max(1) as f64);
            for j in 0..p {
                w[j * p + j] += lambda;
            }
            match cholesky_with_jitter(&w, p) {
                Some((l, _)) => {
                    let scores: Vec<f64> = (0..n)
                        .map(|i| {
                            let row = &c[i * p..(i + 1) * p];
                            let mut t = row.to_vec();
                            chol_solve(&l, p, &mut t);
                            dot(row, &t)
                        })
                        .collect();
                    sample_weighted(&scores, k, seed.wrapping_add(1))
                }
                // a pilot Gram that defeats even the jitter ladder carries
                // no usable leverage information — fall back to uniform
                None => sample_uniform(n, k, seed),
            }
        }
    }
}

/// Rounds `v` to the working precision, applies the exact operator, and
/// returns the result upcast to f64.
fn apply_exact<T: Real>(op: &dyn LinOp<T>, v64: &[f64]) -> Vec<f64> {
    let vt: Vec<T> = v64.iter().map(|&v| T::from_f64(v)).collect();
    let mut out = vec![T::ZERO; op.dim()];
    op.apply(&vt, &mut out);
    out.iter().map(|o| o.to_f64()).collect()
}

/// The exact residual `r = b − Q̃·x` (matvec in working precision,
/// subtraction in f64) and its norm.
fn exact_residual<T: Real>(op: &dyn LinOp<T>, b64: &[f64], x64: &[f64]) -> (Vec<f64>, f64) {
    let ax = apply_exact(op, x64);
    let r: Vec<f64> = b64.iter().zip(&ax).map(|(&bv, &av)| bv - av).collect();
    let norm = dot(&r, &r).sqrt();
    (r, norm)
}

fn emit(metrics: Option<&dyn MetricsSink>, kind: RecoveryKind, iteration: usize, detail: String) {
    if let Some(sink) = metrics {
        sink.record_recovery(RecoverySample::solver(kind, iteration, detail));
    }
}

/// Solves `Q̃·x = b` through the randomized low-rank path: Nyström direct
/// solve → Nyström-preconditioned CG polish → exact escalation ladder,
/// with every transition a recorded `recovery` event (see the module
/// docs). The returned [`GuardedSolve`] has the same shape as
/// [`solve_with_guardrails`], so callers destructure it identically;
/// `escalations` lists the low-rank transitions
/// ([`RecoveryKind::Precondition`], [`RecoveryKind::SolverFallback`])
/// before any rungs of the exact ladder.
///
/// `op` must be the **exact** `Q̃` operator for `params` (it verifies and,
/// when needed, polishes the approximate solve); `data` holds the training
/// points row-major with `params.dim() + 1` rows. A `rank` of 0 is
/// rejected with [`SvmError::Solver`]; ranks above `params.dim()` are
/// clamped.
#[allow(clippy::too_many_arguments)]
pub fn solve_lowrank<T: Real>(
    op: &dyn LinOp<T>,
    params: &QTildeParams<T>,
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    rank: usize,
    seed: u64,
    strategy: LandmarkStrategy,
    b: &[T],
    config: &CgConfig<T>,
    policy: &RecoveryPolicy,
    jacobi: JacobiDiagonal<'_, T>,
    metrics: Option<&dyn MetricsSink>,
) -> Result<GuardedSolve<T>, SvmError> {
    let n = params.dim();
    assert_eq!(op.dim(), n, "operator dimension must match the parameters");
    assert_eq!(b.len(), n, "right-hand side length must match the system");
    assert!(
        data.rows() == n + 1,
        "training data must hold all m = n + 1 points"
    );
    if rank == 0 {
        return Err(SvmError::Solver(
            "the low-rank solver needs a rank of at least 1 \
             (use the exact solver for a full-rank solve)"
                .into(),
        ));
    }
    let k = rank.min(n);
    let epsilon = config.epsilon.to_f64();
    let b64: Vec<f64> = b.iter().map(|v| v.to_f64()).collect();
    let norm_b = dot(&b64, &b64).sqrt();
    if norm_b == 0.0 {
        // b = 0 ⇒ x = 0 exactly; mirror the exact solver's trivial path
        if let Some(sink) = metrics {
            sink.record_cg_outcome(CgOutcomeSample {
                outcome: SolveOutcome::Converged.as_str(),
                iterations: 0,
                final_residual_norm: 0.0,
                relative_residual: 0.0,
            });
        }
        return Ok(GuardedSolve {
            result: CgResult {
                x: vec![T::ZERO; n],
                iterations: 0,
                initial_residual_norm: T::ZERO,
                residual_norm: T::ZERO,
                converged: true,
                outcome: SolveOutcome::Converged,
                drift_restarts: 0,
                checkpoint: None,
            },
            total_iterations: 0,
            escalations: Vec::new(),
        });
    }

    let t_assembly = Instant::now();
    let landmarks = select_landmarks(params, data, kernel, k, seed, strategy);
    let factor = NystromFactor::build(params, data, kernel, &landmarks);
    let assembly_wall = t_assembly.elapsed();

    let Some(factor) = factor else {
        // not factorable even at maximal jitter (non-finite kernel
        // entries): hand the problem to the exact ladder unchanged
        emit(
            metrics,
            RecoveryKind::SolverFallback,
            0,
            format!(
                "rank-{k} Nyström capacitance unfactorable after {MAX_JITTER_STEPS} \
                 jitter steps: falling back to the exact solver ladder"
            ),
        );
        if let Some(sink) = metrics {
            sink.record_lowrank(LowRankSample {
                rank: k,
                strategy: strategy.as_str(),
                jitter_steps: MAX_JITTER_STEPS,
                direct_relative_residual: f64::INFINITY,
                pcg_iterations: 0,
                assembly_wall,
                solve_wall: std::time::Duration::ZERO,
            });
        }
        let guarded = solve_with_guardrails(op, b, config, policy, jacobi, metrics);
        let mut escalations = vec![RecoveryKind::SolverFallback];
        escalations.extend(guarded.escalations.iter().copied());
        return Ok(GuardedSolve {
            escalations,
            ..guarded
        });
    };

    let t_solve = Instant::now();
    let mut x = factor.apply_inv(&b64);
    let (mut r, mut rnorm) = exact_residual(op, &b64, &x);
    let direct_rel = rnorm / norm_b;

    let mut escalations = Vec::new();
    let mut pcg_iterations = 0usize;
    let mut converged = direct_rel <= epsilon;
    let mut pcg_outcome = SolveOutcome::Converged;

    if !converged {
        // The direct solve missed ε: engage Nyström-preconditioned CG,
        // starting from the direct iterate — Â⁻¹ is the preconditioner,
        // the matvec is the exact operator, and termination is on the
        // unpreconditioned ‖r‖ against ε·‖b‖.
        emit(
            metrics,
            RecoveryKind::Precondition,
            0,
            format!(
                "rank-{k} direct Nyström solve reached relative residual \
                 {direct_rel:.3e} > {epsilon:.1e}: polishing with \
                 Nyström-preconditioned CG"
            ),
        );
        escalations.push(RecoveryKind::Precondition);
        if let Some(sink) = metrics {
            sink.record_cg_start(n, rnorm);
        }
        let max_iterations = config.max_iterations.unwrap_or((2 * n).max(128));
        let refresh = config.residual_refresh_interval.max(1);
        pcg_outcome = SolveOutcome::IterationBudget;
        let mut z = factor.apply_inv(&r);
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        for it in 1..=max_iterations {
            let t_iter = Instant::now();
            let ap = apply_exact(op, &p);
            let pap = dot(&p, &ap);
            if !pap.is_finite() {
                pcg_outcome = SolveOutcome::Breakdown(BreakdownKind::NonFinite);
                break;
            }
            if pap <= 0.0 {
                pcg_outcome = SolveOutcome::Breakdown(BreakdownKind::Indefinite);
                break;
            }
            let alpha = rz / pap;
            for (xv, &pv) in x.iter_mut().zip(&p) {
                *xv += alpha * pv;
            }
            pcg_iterations = it;
            if it % refresh == 0 {
                (r, rnorm) = exact_residual(op, &b64, &x);
            } else {
                for (rv, &apv) in r.iter_mut().zip(&ap) {
                    *rv -= alpha * apv;
                }
                rnorm = dot(&r, &r).sqrt();
            }
            if !rnorm.is_finite() {
                pcg_outcome = SolveOutcome::Breakdown(BreakdownKind::NonFinite);
                break;
            }
            if rnorm <= epsilon * norm_b {
                // trust only an exactly measured residual before claiming
                // convergence
                (r, rnorm) = exact_residual(op, &b64, &x);
                if rnorm <= epsilon * norm_b {
                    if let Some(sink) = metrics {
                        sink.record_cg_iteration(CgIterationSample {
                            iteration: it,
                            residual_norm: rnorm,
                            alpha,
                            beta: 0.0,
                            matvec_wall: t_iter.elapsed(),
                        });
                    }
                    converged = true;
                    pcg_outcome = SolveOutcome::Converged;
                    break;
                }
            }
            z = factor.apply_inv(&r);
            let rz_new = dot(&r, &z);
            if !rz_new.is_finite() {
                pcg_outcome = SolveOutcome::Breakdown(BreakdownKind::NonFinite);
                break;
            }
            let beta = rz_new / rz;
            rz = rz_new;
            for (pv, &zv) in p.iter_mut().zip(&z) {
                *pv = zv + beta * *pv;
            }
            if let Some(sink) = metrics {
                sink.record_cg_iteration(CgIterationSample {
                    iteration: it,
                    residual_norm: rnorm,
                    alpha,
                    beta,
                    matvec_wall: t_iter.elapsed(),
                });
            }
        }
    }
    let solve_wall = t_solve.elapsed();

    if let Some(sink) = metrics {
        sink.record_lowrank(LowRankSample {
            rank: k,
            strategy: strategy.as_str(),
            jitter_steps: factor.jitter_steps,
            direct_relative_residual: direct_rel,
            pcg_iterations,
            assembly_wall,
            solve_wall,
        });
    }

    if converged {
        if let Some(sink) = metrics {
            sink.record_cg_outcome(CgOutcomeSample {
                outcome: SolveOutcome::Converged.as_str(),
                iterations: pcg_iterations,
                final_residual_norm: rnorm,
                relative_residual: rnorm / norm_b,
            });
        }
        return Ok(GuardedSolve {
            result: CgResult {
                x: x.iter().map(|&v| T::from_f64(v)).collect(),
                iterations: pcg_iterations,
                initial_residual_norm: T::from_f64(norm_b),
                residual_norm: T::from_f64(rnorm),
                converged: true,
                outcome: SolveOutcome::Converged,
                drift_restarts: 0,
                checkpoint: None,
            },
            total_iterations: pcg_iterations,
            escalations,
        });
    }

    // The low-rank path is exhausted: record the transition and hand the
    // problem to the exact escalation ladder unchanged.
    emit(
        metrics,
        RecoveryKind::SolverFallback,
        pcg_iterations,
        format!(
            "Nyström-preconditioned CG ({pcg_outcome}) at relative residual \
             {:.3e} after {pcg_iterations} iterations: falling back to the \
             exact solver ladder",
            rnorm / norm_b
        ),
    );
    escalations.push(RecoveryKind::SolverFallback);
    let guarded = solve_with_guardrails(op, b, config, policy, jacobi, metrics);
    escalations.extend(guarded.escalations.iter().copied());
    Ok(GuardedSolve {
        result: guarded.result,
        total_iterations: pcg_iterations + guarded.total_iterations,
        escalations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendSelection, Prepared};
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn fixture(points: usize, seed: u64) -> (DenseMatrix<f64>, Vec<f64>) {
        let d = generate_planes::<f64>(&PlanesConfig::new(points, 6, seed)).unwrap();
        (d.x, d.y)
    }

    fn prepared(data: &DenseMatrix<f64>, kernel: &KernelSpec<f64>, cost: f64) -> Prepared<f64> {
        Prepared::new(&BackendSelection::Serial, data, None, kernel, cost).unwrap()
    }

    fn solve(
        data: &DenseMatrix<f64>,
        y: &[f64],
        kernel: &KernelSpec<f64>,
        rank: usize,
        strategy: LandmarkStrategy,
        metrics: Option<&dyn MetricsSink>,
    ) -> Result<GuardedSolve<f64>, SvmError> {
        let op = prepared(data, kernel, 2.0);
        let rhs = crate::matrix_free::reduced_rhs(y);
        solve_lowrank(
            &op,
            op.params(),
            data,
            kernel,
            rank,
            DEFAULT_SEED,
            strategy,
            &rhs,
            &CgConfig::with_epsilon(1e-8),
            &RecoveryPolicy::default(),
            JacobiDiagonal::Unavailable,
            metrics,
        )
    }

    #[test]
    fn full_rank_direct_solve_is_near_exact() {
        // rank = n ⇒ K̂ = K·K⁻¹·K = K for the strictly PD RBF Gram: the
        // direct Woodbury solve alone must meet a tight tolerance with no
        // escalation
        let (data, y) = fixture(40, 3);
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let g = solve(&data, &y, &kernel, 39, LandmarkStrategy::Uniform, None).unwrap();
        assert!(g.result.converged);
        assert!(g.escalations.is_empty(), "{:?}", g.escalations);
        assert_eq!(g.total_iterations, 0);
    }

    #[test]
    fn low_rank_converges_via_pcg_with_recorded_transition() {
        let (data, y) = fixture(80, 7);
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let t = crate::trace::Telemetry::new();
        let g = solve(&data, &y, &kernel, 8, LandmarkStrategy::Uniform, Some(&t)).unwrap();
        assert!(g.result.converged, "outcome: {:?}", g.result.outcome);
        assert!(g.escalations.contains(&RecoveryKind::Precondition));
        assert!(!g.escalations.contains(&RecoveryKind::SolverFallback));
        assert!(g.total_iterations > 0);
        let report = t.report();
        let sample = report.lowrank.expect("lowrank sample recorded");
        assert_eq!(sample.rank, 8);
        assert_eq!(sample.strategy, "uniform");
        assert_eq!(sample.pcg_iterations, g.total_iterations);
        assert!(report
            .recovery
            .iter()
            .any(|s| s.kind == RecoveryKind::Precondition));

        // the claimed residual is real
        let op = prepared(&data, &kernel, 2.0);
        let rhs = crate::matrix_free::reduced_rhs(&y);
        let b64: Vec<f64> = rhs.clone();
        let (_, rnorm) = exact_residual(&op as &dyn LinOp<f64>, &b64, &g.result.x);
        let nb = dot(&b64, &b64).sqrt();
        assert!(rnorm / nb <= 1e-8, "true relative residual {}", rnorm / nb);
    }

    #[test]
    fn leverage_strategy_solves_and_differs_from_uniform_landmarks() {
        let (data, y) = fixture(60, 11);
        let kernel = KernelSpec::Rbf { gamma: 0.8 };
        let g = solve(&data, &y, &kernel, 12, LandmarkStrategy::Leverage, None).unwrap();
        assert!(g.result.converged);
        // the two strategies are distinct draws
        let op = prepared(&data, &kernel, 2.0);
        let uni = select_landmarks(
            op.params(),
            &data,
            &kernel,
            12,
            DEFAULT_SEED,
            LandmarkStrategy::Uniform,
        );
        let lev = select_landmarks(
            op.params(),
            &data,
            &kernel,
            12,
            DEFAULT_SEED,
            LandmarkStrategy::Leverage,
        );
        assert_eq!(uni.len(), 12);
        assert_eq!(lev.len(), 12);
        assert_ne!(uni, lev);
    }

    #[test]
    fn rank_zero_is_a_structured_error() {
        let (data, y) = fixture(20, 1);
        let kernel = KernelSpec::Linear;
        let err = solve(&data, &y, &kernel, 0, LandmarkStrategy::Uniform, None).unwrap_err();
        assert!(matches!(err, SvmError::Solver(_)));
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn oversized_rank_clamps_to_dimension() {
        let (data, y) = fixture(24, 9);
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let t = crate::trace::Telemetry::new();
        let g = solve(
            &data,
            &y,
            &kernel,
            10_000,
            LandmarkStrategy::Uniform,
            Some(&t),
        )
        .unwrap();
        assert!(g.result.converged);
        assert_eq!(t.report().lowrank.unwrap().rank, 23);
    }

    #[test]
    fn duplicate_rows_never_panic_and_still_solve() {
        // every row duplicated: the landmark Gram is rank-deficient, so
        // the capacitance needs jitter — and must never panic
        let (base, ybase) = fixture(16, 5);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y = Vec::new();
        for (i, yv) in ybase.iter().enumerate() {
            rows.push(base.row(i).to_vec());
            rows.push(base.row(i).to_vec());
            y.push(*yv);
            y.push(*yv);
        }
        let data = DenseMatrix::from_rows(rows).unwrap();
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let g = solve(&data, &y, &kernel, 31, LandmarkStrategy::Uniform, None).unwrap();
        assert!(g.result.converged, "outcome: {:?}", g.result.outcome);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let (data, y) = fixture(50, 13);
        let kernel = KernelSpec::Rbf { gamma: 0.4 };
        let a = solve(&data, &y, &kernel, 10, LandmarkStrategy::Uniform, None).unwrap();
        let b = solve(&data, &y, &kernel, 10, LandmarkStrategy::Uniform, None).unwrap();
        assert_eq!(a.result.x, b.result.x);
        assert_eq!(a.total_iterations, b.total_iterations);
    }

    #[test]
    fn strategy_and_selection_names() {
        assert_eq!(LandmarkStrategy::Uniform.as_str(), "uniform");
        assert_eq!(LandmarkStrategy::Leverage.as_str(), "leverage");
        assert_eq!("leverage".parse(), Ok(LandmarkStrategy::Leverage));
        assert!("nope".parse::<LandmarkStrategy>().is_err());
        assert_eq!(SolverSelection::Exact.name(), "exact");
        assert_eq!(SolverSelection::lowrank(8).name(), "lowrank");
        assert_eq!(
            SolverSelection::lowrank(8),
            SolverSelection::LowRank {
                rank: 8,
                seed: DEFAULT_SEED,
                strategy: LandmarkStrategy::Uniform
            }
        );
    }

    #[test]
    fn cholesky_jitter_ladder_handles_rank_deficiency() {
        // a singular PSD matrix factors only through jitter
        let s = vec![1.0, 1.0, 1.0, 1.0];
        let (l, steps) = cholesky_with_jitter(&s, 2).expect("jitter must rescue");
        assert!(steps > 0);
        assert!(l.iter().all(|v| v.is_finite()));
        // a matrix of NaNs is unfactorable at any jitter
        assert!(cholesky_with_jitter(&[f64::NAN; 4], 2).is_none());
    }
}
