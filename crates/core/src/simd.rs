//! Explicit SIMD micro-kernels with runtime ISA dispatch.
//!
//! The blocked CPU engine (PR 3) exposes the right *structure* for data
//! parallelism — independent 4×4 FMA accumulator panels — but emits scalar
//! generic Rust, so throughput is bounded by what LLVM auto-vectorizes out
//! of a portable build (without `-C target-cpu` that means scalar FMA
//! libcalls). This module lifts the panel primitives to hand-written
//! vector kernels:
//!
//! | tier     | f32 lanes | f64 lanes | requirement            |
//! |----------|-----------|-----------|------------------------|
//! | `scalar` | 1         | 1         | always available       |
//! | `neon`   | 4         | 2         | aarch64 NEON           |
//! | `avx2`   | 8         | 4         | x86-64 AVX2 + FMA      |
//! | `avx512` | 16        | 8         | x86-64 AVX-512F        |
//!
//! The tier is chosen once at runtime ([`Isa::detect`], cached) from
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`, and can be
//! overridden for reproducibility and testing with
//! `PLSSVM_FORCE_ISA={scalar,neon,avx2,avx512}` ([`Isa::select`]). Forcing
//! a tier the host cannot execute clamps *down* to the best supported tier
//! (never up, never UB); the effective tier is reported through telemetry.
//!
//! # Determinism contract
//!
//! * The `scalar` tier routes to the original [`crate::kernel`] code and is
//!   bit-identical to the pre-SIMD engine.
//! * Within a fixed SIMD tier, results are deterministic: each dot product
//!   is one vector FMA chain, reduced lane-by-lane in a fixed order
//!   (lane 0 + lane 1 + …), followed by a scalar `mul_add` tail. Thread
//!   count never changes the summation order.
//! * A full 4×4 panel entry is bitwise identical to the per-pair
//!   [`dot`]/[`dist_sq`] of the same tier (same chain, same reduction), and
//!   for `d <` lane-width every tier degenerates to the scalar chain
//!   exactly.
//! * Different tiers group the FMA chain differently and may differ from
//!   scalar by a few ULP — the same reassociation tolerance the
//!   cross-backend conformance suite already admits.

use crate::kernel::{self, Panel, PANEL_MR, PANEL_NR};
use plssvm_data::Real;
use std::any::TypeId;
use std::sync::OnceLock;

/// Environment variable overriding the dispatched ISA tier.
pub const FORCE_ISA_ENV: &str = "PLSSVM_FORCE_ISA";

/// A CPU vector-instruction tier the micro-kernels can target.
///
/// Ordered from narrowest to widest; dispatch clamps an unsupported
/// requested tier down this ordering until it finds a supported one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Portable scalar code — bit-identical to the pre-SIMD engine.
    Scalar,
    /// aarch64 NEON: 128-bit vectors (f32×4 / f64×2).
    Neon,
    /// x86-64 AVX2 + FMA: 256-bit vectors (f32×8 / f64×4).
    Avx2,
    /// x86-64 AVX-512F: 512-bit vectors (f32×16 / f64×8).
    Avx512,
}

impl Isa {
    /// Canonical lower-case name, matching the `PLSSVM_FORCE_ISA` values.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Neon => "neon",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Parses a tier name (case-insensitive).
    pub fn parse(s: &str) -> Result<Isa, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Isa::Scalar),
            "neon" => Ok(Isa::Neon),
            "avx2" => Ok(Isa::Avx2),
            "avx512" => Ok(Isa::Avx512),
            other => Err(format!(
                "unknown ISA tier '{other}' (expected one of scalar, neon, avx2, avx512)"
            )),
        }
    }

    /// Whether the running CPU can execute this tier. The feature probes
    /// are cached by the standard library, so this is cheap to call.
    pub fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "x86_64"))]
            Isa::Avx2 | Isa::Avx512 => false,
            #[cfg(not(target_arch = "aarch64"))]
            Isa::Neon => false,
        }
    }

    /// The widest tier this host supports. Detected once and cached.
    pub fn detect() -> Isa {
        static DETECTED: OnceLock<Isa> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            for tier in [Isa::Avx512, Isa::Avx2, Isa::Neon] {
                if tier.supported() {
                    return tier;
                }
            }
            Isa::Scalar
        })
    }

    /// The tier forced via [`FORCE_ISA_ENV`], if any. `Ok(None)` when the
    /// variable is unset or empty; `Err` describes an unparseable value
    /// (callers that can warn should surface it — [`Isa::select`] ignores
    /// it and falls back to detection).
    pub fn forced() -> Result<Option<Isa>, String> {
        match std::env::var(FORCE_ISA_ENV) {
            Ok(v) if v.trim().is_empty() => Ok(None),
            Ok(v) => Isa::parse(&v).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Clamps this tier down to the nearest supported one (possibly
    /// itself). Never clamps up: forcing `scalar` stays scalar.
    pub fn clamp_supported(self) -> Isa {
        let mut tier = self;
        loop {
            if tier.supported() {
                return tier;
            }
            tier = match tier {
                Isa::Avx512 => Isa::Avx2,
                Isa::Avx2 | Isa::Neon | Isa::Scalar => Isa::Scalar,
            };
        }
    }

    /// The tier dispatch uses: the forced tier (clamped to what the host
    /// supports) when `PLSSVM_FORCE_ISA` holds a valid name, otherwise the
    /// detected best tier.
    pub fn select() -> Isa {
        Isa::select_with_provenance().0
    }

    /// Like [`Isa::select`], additionally reporting whether the choice was
    /// forced through the environment override.
    pub fn select_with_provenance() -> (Isa, bool) {
        match Isa::forced() {
            Ok(Some(tier)) => (tier.clamp_supported(), true),
            _ => (Isa::detect(), false),
        }
    }

    /// Every tier the running host supports, narrowest first.
    pub fn available() -> Vec<Isa> {
        [Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512]
            .into_iter()
            .filter(|tier| tier.supported())
            .collect()
    }

    /// f32 vector width of this tier.
    pub fn lanes_f32(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Neon => 4,
            Isa::Avx2 => 8,
            Isa::Avx512 => 16,
        }
    }

    /// f64 vector width of this tier.
    pub fn lanes_f64(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Neon => 2,
            Isa::Avx2 => 4,
            Isa::Avx512 => 8,
        }
    }

    /// Whether this tier runs explicit vector code (anything above scalar).
    pub fn is_simd(self) -> bool {
        self != Isa::Scalar
    }

    /// Human-readable dispatch description for logs and `--verbose` output,
    /// e.g. `avx2 (f32x8/f64x4, panel 4x4)`.
    pub fn summary(self) -> String {
        format!(
            "{} (f32x{}/f64x{}, panel {}x{})",
            self.name(),
            self.lanes_f32(),
            self.lanes_f64(),
            PANEL_MR,
            PANEL_NR
        )
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[inline]
fn same<T: 'static, U: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<U>()
}

/// Dispatched scalar product: [`kernel::dot`] on the scalar tier, the
/// tier's vector chain otherwise.
#[inline]
pub fn dot<T: Real>(isa: Isa, a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let isa = isa.clamp_supported();
    if isa == Isa::Scalar {
        return kernel::dot(a, b);
    }
    simd_pair(isa, a, b, false).unwrap_or_else(|| kernel::dot(a, b))
}

/// Dispatched squared euclidean distance: [`kernel::dist_sq`] on the
/// scalar tier, the tier's vector chain otherwise.
#[inline]
pub fn dist_sq<T: Real>(isa: Isa, a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let isa = isa.clamp_supported();
    if isa == Isa::Scalar {
        return kernel::dist_sq(a, b);
    }
    simd_pair(isa, a, b, true).unwrap_or_else(|| kernel::dist_sq(a, b))
}

/// Dispatched panel of inner products — the SIMD form of
/// [`kernel::panel_dot`]. Full tiles run one vector FMA chain per pair;
/// partial tiles fall back to per-pair [`dot`]s of the same tier, so every
/// produced entry is bitwise identical to the per-pair evaluation.
#[inline]
pub fn panel_dot<T: Real>(isa: Isa, ra: &[&[T]], rb: &[&[T]]) -> Panel<T> {
    panel_impl(isa, ra, rb, false)
}

/// Dispatched panel of squared distances — the SIMD form of
/// [`kernel::panel_dist_sq`].
#[inline]
pub fn panel_dist_sq<T: Real>(isa: Isa, ra: &[&[T]], rb: &[&[T]]) -> Panel<T> {
    panel_impl(isa, ra, rb, true)
}

#[inline]
fn panel_impl<T: Real>(isa: Isa, ra: &[&[T]], rb: &[&[T]], dist: bool) -> Panel<T> {
    debug_assert!(ra.len() <= PANEL_MR && rb.len() <= PANEL_NR);
    let isa = isa.clamp_supported();
    if isa == Isa::Scalar {
        return if dist {
            kernel::panel_dist_sq(ra, rb)
        } else {
            kernel::panel_dot(ra, rb)
        };
    }
    if ra.len() == PANEL_MR && rb.len() == PANEL_NR {
        let d = ra[0].len();
        let a = [&ra[0][..d], &ra[1][..d], &ra[2][..d], &ra[3][..d]];
        let b = [&rb[0][..d], &rb[1][..d], &rb[2][..d], &rb[3][..d]];
        let mut out = [[T::ZERO; PANEL_NR]; PANEL_MR];
        if panel_full(isa, &a, &b, &mut out, dist) {
            return out;
        }
        // Unreachable on supported SIMD hosts; kept as a safe fallback for
        // exotic `Real` types or architectures without kernels.
        return if dist {
            kernel::panel_dist_sq(ra, rb)
        } else {
            kernel::panel_dot(ra, rb)
        };
    }
    let mut acc = [[T::ZERO; PANEL_NR]; PANEL_MR];
    for (acc_row, a) in acc.iter_mut().zip(ra) {
        for (slot, b) in acc_row.iter_mut().zip(rb) {
            *slot = if dist {
                dist_sq(isa, a, b)
            } else {
                dot(isa, a, b)
            };
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// x86-64: AVX2+FMA and AVX-512F kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::kernel::{PANEL_MR, PANEL_NR};

    macro_rules! x86_kernels {
        ($modname:ident, $feat:literal, $t:ty, $w:expr, $v:ty,
         $setzero:ident, $loadu:ident, $storeu:ident, $fmadd:ident, $sub:ident) => {
            pub(super) mod $modname {
                #[allow(unused_imports)]
                use super::{PANEL_MR, PANEL_NR};
                use core::arch::x86_64::*;

                /// # Safety
                /// The CPU must support the tier's target features and
                /// `a.len() == b.len()` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn dot(a: &[$t], b: &[$t]) -> $t {
                    debug_assert_eq!(a.len(), b.len());
                    let d = a.len();
                    let chunks = d / $w;
                    let mut acc = $setzero();
                    for c in 0..chunks {
                        let va = $loadu(a.as_ptr().add(c * $w));
                        let vb = $loadu(b.as_ptr().add(c * $w));
                        acc = $fmadd(va, vb, acc);
                    }
                    let mut lanes = [0.0 as $t; $w];
                    $storeu(lanes.as_mut_ptr(), acc);
                    let mut s = lanes[0];
                    for l in &lanes[1..] {
                        s += *l;
                    }
                    for f in (chunks * $w)..d {
                        s = a[f].mul_add(b[f], s);
                    }
                    s
                }

                /// # Safety
                /// Same contract as [`dot`].
                #[target_feature(enable = $feat)]
                pub unsafe fn dist_sq(a: &[$t], b: &[$t]) -> $t {
                    debug_assert_eq!(a.len(), b.len());
                    let d = a.len();
                    let chunks = d / $w;
                    let mut acc = $setzero();
                    for c in 0..chunks {
                        let va = $loadu(a.as_ptr().add(c * $w));
                        let vb = $loadu(b.as_ptr().add(c * $w));
                        let diff = $sub(va, vb);
                        acc = $fmadd(diff, diff, acc);
                    }
                    let mut lanes = [0.0 as $t; $w];
                    $storeu(lanes.as_mut_ptr(), acc);
                    let mut s = lanes[0];
                    for l in &lanes[1..] {
                        s += *l;
                    }
                    for f in (chunks * $w)..d {
                        let diff = a[f] - b[f];
                        s = diff.mul_add(diff, s);
                    }
                    s
                }

                /// # Safety
                /// Feature support as for [`dot`]; all rows of `a` and `b`
                /// must be at least `a[0].len()` long (the dispatcher
                /// re-slices them).
                #[target_feature(enable = $feat)]
                pub unsafe fn panel_dot(
                    a: &[&[$t]; PANEL_MR],
                    b: &[&[$t]; PANEL_NR],
                    out: &mut [[$t; PANEL_NR]; PANEL_MR],
                ) {
                    let d = a[0].len();
                    let chunks = d / $w;
                    let mut acc = [[$setzero(); PANEL_NR]; PANEL_MR];
                    for c in 0..chunks {
                        let o = c * $w;
                        let mut vb = [$setzero(); PANEL_NR];
                        for (slot, rb) in vb.iter_mut().zip(b) {
                            *slot = $loadu(rb.as_ptr().add(o));
                        }
                        for (acc_row, ra) in acc.iter_mut().zip(a) {
                            let va = $loadu(ra.as_ptr().add(o));
                            for (slot, &vbj) in acc_row.iter_mut().zip(&vb) {
                                *slot = $fmadd(va, vbj, *slot);
                            }
                        }
                    }
                    for ((acc_row, out_row), ra) in acc.iter().zip(out.iter_mut()).zip(a) {
                        for ((accv, slot), rb) in acc_row.iter().zip(out_row.iter_mut()).zip(b) {
                            let mut lanes = [0.0 as $t; $w];
                            $storeu(lanes.as_mut_ptr(), *accv);
                            let mut s = lanes[0];
                            for l in &lanes[1..] {
                                s += *l;
                            }
                            for f in (chunks * $w)..d {
                                s = ra[f].mul_add(rb[f], s);
                            }
                            *slot = s;
                        }
                    }
                }

                /// # Safety
                /// Same contract as [`panel_dot`].
                #[target_feature(enable = $feat)]
                pub unsafe fn panel_dist_sq(
                    a: &[&[$t]; PANEL_MR],
                    b: &[&[$t]; PANEL_NR],
                    out: &mut [[$t; PANEL_NR]; PANEL_MR],
                ) {
                    let d = a[0].len();
                    let chunks = d / $w;
                    let mut acc = [[$setzero(); PANEL_NR]; PANEL_MR];
                    for c in 0..chunks {
                        let o = c * $w;
                        let mut vb = [$setzero(); PANEL_NR];
                        for (slot, rb) in vb.iter_mut().zip(b) {
                            *slot = $loadu(rb.as_ptr().add(o));
                        }
                        for (acc_row, ra) in acc.iter_mut().zip(a) {
                            let va = $loadu(ra.as_ptr().add(o));
                            for (slot, &vbj) in acc_row.iter_mut().zip(&vb) {
                                let diff = $sub(va, vbj);
                                *slot = $fmadd(diff, diff, *slot);
                            }
                        }
                    }
                    for ((acc_row, out_row), ra) in acc.iter().zip(out.iter_mut()).zip(a) {
                        for ((accv, slot), rb) in acc_row.iter().zip(out_row.iter_mut()).zip(b) {
                            let mut lanes = [0.0 as $t; $w];
                            $storeu(lanes.as_mut_ptr(), *accv);
                            let mut s = lanes[0];
                            for l in &lanes[1..] {
                                s += *l;
                            }
                            for f in (chunks * $w)..d {
                                let diff = ra[f] - rb[f];
                                s = diff.mul_add(diff, s);
                            }
                            *slot = s;
                        }
                    }
                }
            }
        };
    }

    x86_kernels!(
        avx2_f32,
        "avx2,fma",
        f32,
        8,
        __m256,
        _mm256_setzero_ps,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_fmadd_ps,
        _mm256_sub_ps
    );
    x86_kernels!(
        avx2_f64,
        "avx2,fma",
        f64,
        4,
        __m256d,
        _mm256_setzero_pd,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_fmadd_pd,
        _mm256_sub_pd
    );
    x86_kernels!(
        avx512_f32,
        "avx512f",
        f32,
        16,
        __m512,
        _mm512_setzero_ps,
        _mm512_loadu_ps,
        _mm512_storeu_ps,
        _mm512_fmadd_ps,
        _mm512_sub_ps
    );
    x86_kernels!(
        avx512_f64,
        "avx512f",
        f64,
        8,
        __m512d,
        _mm512_setzero_pd,
        _mm512_loadu_pd,
        _mm512_storeu_pd,
        _mm512_fmadd_pd,
        _mm512_sub_pd
    );
}

// ---------------------------------------------------------------------------
// aarch64: NEON kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::kernel::{PANEL_MR, PANEL_NR};

    macro_rules! neon_kernels {
        ($modname:ident, $t:ty, $w:expr, $v:ty,
         $dup:ident, $loadu:ident, $storeu:ident, $fma:ident, $sub:ident) => {
            pub(super) mod $modname {
                #[allow(unused_imports)]
                use super::{PANEL_MR, PANEL_NR};
                use core::arch::aarch64::*;

                /// # Safety
                /// The CPU must support NEON and `a.len() == b.len()`.
                #[target_feature(enable = "neon")]
                pub unsafe fn dot(a: &[$t], b: &[$t]) -> $t {
                    debug_assert_eq!(a.len(), b.len());
                    let d = a.len();
                    let chunks = d / $w;
                    let mut acc = $dup(0.0);
                    for c in 0..chunks {
                        let va = $loadu(a.as_ptr().add(c * $w));
                        let vb = $loadu(b.as_ptr().add(c * $w));
                        acc = $fma(acc, va, vb);
                    }
                    let mut lanes = [0.0 as $t; $w];
                    $storeu(lanes.as_mut_ptr(), acc);
                    let mut s = lanes[0];
                    for l in &lanes[1..] {
                        s += *l;
                    }
                    for f in (chunks * $w)..d {
                        s = a[f].mul_add(b[f], s);
                    }
                    s
                }

                /// # Safety
                /// Same contract as [`dot`].
                #[target_feature(enable = "neon")]
                pub unsafe fn dist_sq(a: &[$t], b: &[$t]) -> $t {
                    debug_assert_eq!(a.len(), b.len());
                    let d = a.len();
                    let chunks = d / $w;
                    let mut acc = $dup(0.0);
                    for c in 0..chunks {
                        let va = $loadu(a.as_ptr().add(c * $w));
                        let vb = $loadu(b.as_ptr().add(c * $w));
                        let diff = $sub(va, vb);
                        acc = $fma(acc, diff, diff);
                    }
                    let mut lanes = [0.0 as $t; $w];
                    $storeu(lanes.as_mut_ptr(), acc);
                    let mut s = lanes[0];
                    for l in &lanes[1..] {
                        s += *l;
                    }
                    for f in (chunks * $w)..d {
                        let diff = a[f] - b[f];
                        s = diff.mul_add(diff, s);
                    }
                    s
                }

                /// # Safety
                /// NEON support; all rows at least `a[0].len()` long.
                #[target_feature(enable = "neon")]
                pub unsafe fn panel_dot(
                    a: &[&[$t]; PANEL_MR],
                    b: &[&[$t]; PANEL_NR],
                    out: &mut [[$t; PANEL_NR]; PANEL_MR],
                ) {
                    let d = a[0].len();
                    let chunks = d / $w;
                    let mut acc = [[$dup(0.0); PANEL_NR]; PANEL_MR];
                    for c in 0..chunks {
                        let o = c * $w;
                        let mut vb = [$dup(0.0); PANEL_NR];
                        for (slot, rb) in vb.iter_mut().zip(b) {
                            *slot = $loadu(rb.as_ptr().add(o));
                        }
                        for (acc_row, ra) in acc.iter_mut().zip(a) {
                            let va = $loadu(ra.as_ptr().add(o));
                            for (slot, &vbj) in acc_row.iter_mut().zip(&vb) {
                                *slot = $fma(*slot, va, vbj);
                            }
                        }
                    }
                    for ((acc_row, out_row), ra) in acc.iter().zip(out.iter_mut()).zip(a) {
                        for ((accv, slot), rb) in acc_row.iter().zip(out_row.iter_mut()).zip(b) {
                            let mut lanes = [0.0 as $t; $w];
                            $storeu(lanes.as_mut_ptr(), *accv);
                            let mut s = lanes[0];
                            for l in &lanes[1..] {
                                s += *l;
                            }
                            for f in (chunks * $w)..d {
                                s = ra[f].mul_add(rb[f], s);
                            }
                            *slot = s;
                        }
                    }
                }

                /// # Safety
                /// Same contract as [`panel_dot`].
                #[target_feature(enable = "neon")]
                pub unsafe fn panel_dist_sq(
                    a: &[&[$t]; PANEL_MR],
                    b: &[&[$t]; PANEL_NR],
                    out: &mut [[$t; PANEL_NR]; PANEL_MR],
                ) {
                    let d = a[0].len();
                    let chunks = d / $w;
                    let mut acc = [[$dup(0.0); PANEL_NR]; PANEL_MR];
                    for c in 0..chunks {
                        let o = c * $w;
                        let mut vb = [$dup(0.0); PANEL_NR];
                        for (slot, rb) in vb.iter_mut().zip(b) {
                            *slot = $loadu(rb.as_ptr().add(o));
                        }
                        for (acc_row, ra) in acc.iter_mut().zip(a) {
                            let va = $loadu(ra.as_ptr().add(o));
                            for (slot, &vbj) in acc_row.iter_mut().zip(&vb) {
                                let diff = $sub(va, vbj);
                                *slot = $fma(*slot, diff, diff);
                            }
                        }
                    }
                    for ((acc_row, out_row), ra) in acc.iter().zip(out.iter_mut()).zip(a) {
                        for ((accv, slot), rb) in acc_row.iter().zip(out_row.iter_mut()).zip(b) {
                            let mut lanes = [0.0 as $t; $w];
                            $storeu(lanes.as_mut_ptr(), *accv);
                            let mut s = lanes[0];
                            for l in &lanes[1..] {
                                s += *l;
                            }
                            for f in (chunks * $w)..d {
                                let diff = ra[f] - rb[f];
                                s = diff.mul_add(diff, s);
                            }
                            *slot = s;
                        }
                    }
                }
            }
        };
    }

    neon_kernels!(
        neon_f32,
        f32,
        4,
        float32x4_t,
        vdupq_n_f32,
        vld1q_f32,
        vst1q_f32,
        vfmaq_f32,
        vsubq_f32
    );
    neon_kernels!(
        neon_f64,
        f64,
        2,
        float64x2_t,
        vdupq_n_f64,
        vld1q_f64,
        vst1q_f64,
        vfmaq_f64,
        vsubq_f64
    );
}

// ---------------------------------------------------------------------------
// Type-erased dispatch glue
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_pair<T: Real>(isa: Isa, a: &[T], b: &[T], dist: bool) -> Option<T> {
    macro_rules! arm {
        ($m:ident, $t:ty) => {{
            assert!(same::<T, $t>());
            // SAFETY: T == $t (checked above), so the slices reinterpret to
            // the identical layout; the tier was clamped to a supported one
            // before dispatch, so the target features are available.
            let ca: &[$t] = unsafe { core::slice::from_raw_parts(a.as_ptr().cast(), a.len()) };
            let cb: &[$t] = unsafe { core::slice::from_raw_parts(b.as_ptr().cast(), b.len()) };
            let r = if dist {
                unsafe { x86::$m::dist_sq(ca, cb) }
            } else {
                unsafe { x86::$m::dot(ca, cb) }
            };
            Some(unsafe { core::mem::transmute_copy::<$t, T>(&r) })
        }};
    }
    match isa {
        Isa::Avx2 if same::<T, f64>() => arm!(avx2_f64, f64),
        Isa::Avx2 if same::<T, f32>() => arm!(avx2_f32, f32),
        Isa::Avx512 if same::<T, f64>() => arm!(avx512_f64, f64),
        Isa::Avx512 if same::<T, f32>() => arm!(avx512_f32, f32),
        _ => None,
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn panel_full<T: Real>(
    isa: Isa,
    a: &[&[T]; PANEL_MR],
    b: &[&[T]; PANEL_NR],
    out: &mut Panel<T>,
    dist: bool,
) -> bool {
    macro_rules! arm {
        ($m:ident, $t:ty) => {{
            assert!(same::<T, $t>());
            // SAFETY: T == $t, so the row arrays and the output panel
            // reinterpret to the identical layout; feature support is
            // guaranteed by the pre-dispatch clamp.
            let ca = unsafe { &*(a as *const [&[T]; PANEL_MR] as *const [&[$t]; PANEL_MR]) };
            let cb = unsafe { &*(b as *const [&[T]; PANEL_NR] as *const [&[$t]; PANEL_NR]) };
            let co = unsafe { &mut *(out as *mut Panel<T> as *mut [[$t; PANEL_NR]; PANEL_MR]) };
            if dist {
                unsafe { x86::$m::panel_dist_sq(ca, cb, co) }
            } else {
                unsafe { x86::$m::panel_dot(ca, cb, co) }
            }
            true
        }};
    }
    match isa {
        Isa::Avx2 if same::<T, f64>() => arm!(avx2_f64, f64),
        Isa::Avx2 if same::<T, f32>() => arm!(avx2_f32, f32),
        Isa::Avx512 if same::<T, f64>() => arm!(avx512_f64, f64),
        Isa::Avx512 if same::<T, f32>() => arm!(avx512_f32, f32),
        _ => false,
    }
}

#[cfg(target_arch = "aarch64")]
#[inline]
fn simd_pair<T: Real>(isa: Isa, a: &[T], b: &[T], dist: bool) -> Option<T> {
    macro_rules! arm {
        ($m:ident, $t:ty) => {{
            assert!(same::<T, $t>());
            // SAFETY: T == $t (checked above); NEON support guaranteed by
            // the pre-dispatch clamp.
            let ca: &[$t] = unsafe { core::slice::from_raw_parts(a.as_ptr().cast(), a.len()) };
            let cb: &[$t] = unsafe { core::slice::from_raw_parts(b.as_ptr().cast(), b.len()) };
            let r = if dist {
                unsafe { neon::$m::dist_sq(ca, cb) }
            } else {
                unsafe { neon::$m::dot(ca, cb) }
            };
            Some(unsafe { core::mem::transmute_copy::<$t, T>(&r) })
        }};
    }
    match isa {
        Isa::Neon if same::<T, f64>() => arm!(neon_f64, f64),
        Isa::Neon if same::<T, f32>() => arm!(neon_f32, f32),
        _ => None,
    }
}

#[cfg(target_arch = "aarch64")]
#[inline]
fn panel_full<T: Real>(
    isa: Isa,
    a: &[&[T]; PANEL_MR],
    b: &[&[T]; PANEL_NR],
    out: &mut Panel<T>,
    dist: bool,
) -> bool {
    macro_rules! arm {
        ($m:ident, $t:ty) => {{
            assert!(same::<T, $t>());
            // SAFETY: T == $t; NEON support guaranteed by the clamp.
            let ca = unsafe { &*(a as *const [&[T]; PANEL_MR] as *const [&[$t]; PANEL_MR]) };
            let cb = unsafe { &*(b as *const [&[T]; PANEL_NR] as *const [&[$t]; PANEL_NR]) };
            let co = unsafe { &mut *(out as *mut Panel<T> as *mut [[$t; PANEL_NR]; PANEL_MR]) };
            if dist {
                unsafe { neon::$m::panel_dist_sq(ca, cb, co) }
            } else {
                unsafe { neon::$m::panel_dot(ca, cb, co) }
            }
            true
        }};
    }
    match isa {
        Isa::Neon if same::<T, f64>() => arm!(neon_f64, f64),
        Isa::Neon if same::<T, f32>() => arm!(neon_f32, f32),
        _ => false,
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline]
fn simd_pair<T: Real>(_isa: Isa, _a: &[T], _b: &[T], _dist: bool) -> Option<T> {
    None
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline]
fn panel_full<T: Real>(
    _isa: Isa,
    _a: &[&[T]; PANEL_MR],
    _b: &[&[T]; PANEL_NR],
    _out: &mut Panel<T>,
    _dist: bool,
) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random row (LCG over a fixed modulus, values in
    /// roughly [-1.6, 1.6]).
    fn row<T: Real>(d: usize, salt: u64) -> Vec<T> {
        (0..d)
            .map(|f| T::from_f64((((f as u64 * 37 + salt * 101 + 13) % 33) as f64 - 16.0) / 10.0))
            .collect()
    }

    fn rows<T: Real>(n: usize, d: usize, salt: u64) -> Vec<Vec<T>> {
        (0..n).map(|r| row(d, salt + 7 * r as u64)).collect()
    }

    /// Lengths around every tier's lane boundary plus awkward primes.
    fn adversarial_lengths() -> Vec<usize> {
        let mut lens = vec![0usize, 1, 97];
        for w in [2usize, 4, 8, 16] {
            lens.extend([w - 1, w, w + 1]);
        }
        lens.sort_unstable();
        lens.dedup();
        lens
    }

    #[test]
    fn parse_roundtrips_and_rejects_garbage() {
        for tier in [Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512] {
            assert_eq!(Isa::parse(tier.name()).unwrap(), tier);
            assert_eq!(Isa::parse(&tier.name().to_uppercase()).unwrap(), tier);
        }
        assert!(Isa::parse("sse9").is_err());
        assert!(Isa::parse("").is_err());
    }

    #[test]
    fn clamp_never_selects_unsupported_tier() {
        for tier in [Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512] {
            assert!(tier.clamp_supported().supported(), "{tier:?}");
        }
        assert_eq!(Isa::Scalar.clamp_supported(), Isa::Scalar);
    }

    #[test]
    fn detect_is_supported_and_stable() {
        let first = Isa::detect();
        assert!(first.supported());
        assert_eq!(Isa::detect(), first);
        assert!(Isa::available().contains(&first));
    }

    #[test]
    fn scalar_tier_is_bit_identical_to_kernel_module() {
        for d in adversarial_lengths() {
            let a: Vec<f64> = row(d, 1);
            let b: Vec<f64> = row(d, 2);
            assert_eq!(
                dot(Isa::Scalar, &a, &b).to_bits(),
                kernel::dot(&a, &b).to_bits()
            );
            assert_eq!(
                dist_sq(Isa::Scalar, &a, &b).to_bits(),
                kernel::dist_sq(&a, &b).to_bits()
            );
        }
        let ra_owned = rows::<f64>(4, 11, 3);
        let rb_owned = rows::<f64>(4, 11, 40);
        let ra: Vec<&[f64]> = ra_owned.iter().map(|r| r.as_slice()).collect();
        let rb: Vec<&[f64]> = rb_owned.iter().map(|r| r.as_slice()).collect();
        let p = panel_dot(Isa::Scalar, &ra, &rb);
        let q = kernel::panel_dot(&ra, &rb);
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
    }

    fn assert_tier_matches_scalar<T: Real>(isa: Isa) {
        for d in adversarial_lengths() {
            let a: Vec<T> = row(d, 5);
            let b: Vec<T> = row(d, 9);
            // Reassociation error is bounded by a few ULP of the sum of
            // absolute terms (not of the possibly-cancelled result).
            let bound = |terms: T| T::EPSILON * T::from_usize(4) * T::from_usize(d.max(1)) * terms;
            let (sd, vd) = (kernel::dot(&a, &b), dot(isa, &a, &b));
            let dot_terms = a
                .iter()
                .zip(&b)
                .fold(T::ZERO, |s, (&x, &y)| s + (x * y).abs());
            assert!(
                (sd - vd).abs() <= bound(dot_terms),
                "{isa:?} dot d={d}: {} vs {}",
                sd.to_f64(),
                vd.to_f64()
            );
            let (sq, vq) = (kernel::dist_sq(&a, &b), dist_sq(isa, &a, &b));
            assert!(
                (sq - vq).abs() <= bound(sq.max(T::ONE)),
                "{isa:?} dist_sq d={d}: {} vs {}",
                sq.to_f64(),
                vq.to_f64()
            );
            // below one vector: the SIMD path is the scalar tail chain, so
            // agreement must be exact
            if d < isa.lanes_f32().min(isa.lanes_f64()) {
                assert_eq!(sd.to_f64().to_bits(), vd.to_f64().to_bits());
            }
        }
    }

    #[test]
    fn every_available_tier_matches_scalar_on_adversarial_lengths() {
        for isa in Isa::available() {
            assert_tier_matches_scalar::<f32>(isa);
            assert_tier_matches_scalar::<f64>(isa);
        }
    }

    /// A full panel entry must be bitwise identical to the per-pair dot of
    /// the same tier: identical FMA chain, identical fixed-order reduction.
    #[test]
    fn full_panel_entries_bitwise_match_per_pair_evaluation() {
        for isa in Isa::available() {
            for d in adversarial_lengths() {
                let ra_owned = rows::<f64>(PANEL_MR, d, 21);
                let rb_owned = rows::<f64>(PANEL_NR, d, 77);
                let ra: Vec<&[f64]> = ra_owned.iter().map(|r| r.as_slice()).collect();
                let rb: Vec<&[f64]> = rb_owned.iter().map(|r| r.as_slice()).collect();
                let pd = panel_dot(isa, &ra, &rb);
                let pq = panel_dist_sq(isa, &ra, &rb);
                for (i, a) in ra.iter().enumerate() {
                    for (j, b) in rb.iter().enumerate() {
                        assert_eq!(
                            pd[i][j].to_bits(),
                            dot(isa, a, b).to_bits(),
                            "{isa:?} dot d={d} ({i},{j})"
                        );
                        assert_eq!(
                            pq[i][j].to_bits(),
                            dist_sq(isa, a, b).to_bits(),
                            "{isa:?} dist d={d} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_panels_match_per_pair_evaluation() {
        for isa in Isa::available() {
            let ra_owned = rows::<f32>(PANEL_MR, 19, 4);
            let rb_owned = rows::<f32>(PANEL_NR, 19, 8);
            let ra: Vec<&[f32]> = ra_owned.iter().map(|r| r.as_slice()).collect();
            let rb: Vec<&[f32]> = rb_owned.iter().map(|r| r.as_slice()).collect();
            for mh in 1..PANEL_MR {
                for nh in 1..=PANEL_NR {
                    let p = panel_dot(isa, &ra[..mh], &rb[..nh]);
                    for (i, a) in ra[..mh].iter().enumerate() {
                        for (j, b) in rb[..nh].iter().enumerate() {
                            assert_eq!(p[i][j].to_bits(), dot(isa, a, b).to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn summary_mentions_lanes_and_panel() {
        let s = Isa::Avx2.summary();
        assert!(
            s.contains("avx2") && s.contains("f32x8") && s.contains("4x4"),
            "{s}"
        );
    }
}
