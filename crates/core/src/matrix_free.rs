//! The implicit reduced matrix `Q̃` (§II-F, §III-B).
//!
//! Following Chu et al., the augmented LS-SVM system (Eq. 11) is reduced to
//! an `(m−1)×(m−1)` SPD system `Q̃·α̃ = ȳ − y_m·1` (Eq. 14) with
//!
//! ```text
//! Q̃ᵢⱼ = k(xᵢ,xⱼ) + δᵢⱼ/C − k(x_m,xⱼ) − k(xᵢ,x_m) + k(x_m,x_m) + 1/C   (Eq. 16)
//! ```
//!
//! Since `Q̃` has `(m−1)²` entries it is never stored; backends compute the
//! heavy part — the kernel matrix–vector product `K·v` with
//! `Kᵢⱼ = k(xᵢ,xⱼ)` — implicitly, and the remaining terms of Eq. 16 are all
//! diagonal or rank-one and are folded in with `O(m)` work by
//! [`QTildeParams::apply_corrections`]. The `q` vector
//! (`qᵢ = k(xᵢ, x_m)`) is precomputed once, the paper's §III-C-2 "caching"
//! optimization: it reduces the scalar products per matrix element from
//! three to one.

use plssvm_data::dense::{DenseMatrix, SoAMatrix};
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::kernel::{dot, kernel_soa};

/// The cheap (diagonal + rank-one) part of `Q̃`, shared by all backends.
#[derive(Debug, Clone, PartialEq)]
pub struct QTildeParams<T> {
    /// `qᵢ = k(xᵢ, x_m)` for `i = 0..m−1` (the paper's cached `q⃗`).
    pub q: Vec<T>,
    /// `k(x_m, x_m)`.
    pub k_mm: T,
    /// `1/C` (the ridge shift).
    pub inv_c: T,
    /// Per-sample ridge `1/(C·vᵢ)` for the **weighted LS-SVM** (Suykens et
    /// al., the paper's reference \[25\]): length `m`, overriding the
    /// uniform `inv_c` when present. Entry `m−1` is the ridge of the
    /// eliminated point (enters through `Q_mm`).
    pub ridge_diag: Option<Vec<T>>,
}

impl<T: Real> QTildeParams<T> {
    /// Reference (host) computation of the parameters from SoA data with
    /// `m = data.points()` training points.
    pub fn compute(data: &SoAMatrix<T>, kernel: &KernelSpec<T>, cost: T) -> Self {
        let m = data.points();
        assert!(m >= 2, "need at least two data points");
        let last = m - 1;
        let q = (0..last)
            .map(|i| kernel_soa(kernel, data, i, last))
            .collect();
        Self {
            q,
            k_mm: kernel_soa(kernel, data, last, last),
            inv_c: T::ONE / cost,
            ridge_diag: None,
        }
    }

    /// Same computation over row-major data (the CPU backends work on the
    /// untransformed layout — the paper applies the SoA transform only for
    /// its GPU backends, §IV-E). Evaluated through the panel micro-kernel
    /// of [`crate::kernel::kernel_panel`] on the given ISA tier,
    /// `PANEL_MR` points against `x_m` per feature pass.
    pub fn compute_dense(
        data: &DenseMatrix<T>,
        kernel: &KernelSpec<T>,
        cost: T,
        isa: crate::simd::Isa,
    ) -> Self {
        use crate::kernel::{kernel_panel, PANEL_MR};
        let m = data.rows();
        assert!(m >= 2, "need at least two data points");
        let last = data.row(m - 1);
        let mut q = Vec::with_capacity(m - 1);
        let mut i = 0;
        while i < m - 1 {
            let h = (m - 1 - i).min(PANEL_MR);
            let mut ra: [&[T]; PANEL_MR] = [last; PANEL_MR];
            for (a, slot) in ra.iter_mut().enumerate().take(h) {
                *slot = data.row(i + a);
            }
            let panel = kernel_panel(kernel, isa, &ra[..h], &[last]);
            q.extend(panel.iter().take(h).map(|row| row[0]));
            i += h;
        }
        Self {
            q,
            k_mm: crate::kernel::kernel_row(kernel, last, last),
            inv_c: T::ONE / cost,
            ridge_diag: None,
        }
    }

    /// Dimension `n = m − 1` of the reduced system.
    pub fn dim(&self) -> usize {
        self.q.len()
    }

    /// The ridge of sample `i` (`1/C` uniformly, or `1/(C·vᵢ)` weighted).
    #[inline]
    pub fn ridge(&self, i: usize) -> T {
        match &self.ridge_diag {
            Some(diag) => diag[i],
            None => self.inv_c,
        }
    }

    /// `Q_mm = k(x_m, x_m) + ridge_m` from the unreduced matrix.
    pub fn q_mm(&self) -> T {
        self.k_mm + self.ridge(self.q.len())
    }

    /// Installs per-sample weights `vᵢ > 0` (weighted LS-SVM): the ridge
    /// of sample `i` becomes `1/(C·vᵢ)`. `weights.len()` must equal the
    /// number of training points `m = dim() + 1`.
    pub fn set_sample_weights(&mut self, weights: &[T], cost: T) -> Result<(), String> {
        if weights.len() != self.dim() + 1 {
            return Err(format!(
                "{} weights for {} training points",
                weights.len(),
                self.dim() + 1
            ));
        }
        // the negated comparison deliberately rejects NaN as well
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if let Some(bad) = weights.iter().find(|w| !(w.to_f64() > 0.0)) {
            return Err(format!("sample weights must be positive, got {bad}"));
        }
        self.ridge_diag = Some(weights.iter().map(|&w| T::ONE / (cost * w)).collect());
        Ok(())
    }

    /// Completes `out = Q̃·v` given `out = K·v` (the kernel part computed
    /// by a backend):
    ///
    /// ```text
    /// outᵢ += vᵢ/C − qᵢ·Σⱼvⱼ − ⟨q,v⟩ + (k_mm + 1/C)·Σⱼvⱼ
    /// ```
    pub fn apply_corrections(&self, v: &[T], out: &mut [T]) {
        let n = self.dim();
        assert_eq!(v.len(), n);
        assert_eq!(out.len(), n);
        let s: T = v.iter().copied().sum();
        let qv = dot(&self.q, v);
        let shift = self.q_mm() * s - qv;
        for i in 0..n {
            out[i] += self.ridge(i) * v[i] - self.q[i] * s + shift;
        }
    }

    /// One explicit entry of `Q̃` (Eq. 16) — reference implementation used
    /// for testing and the explicit assembly.
    pub fn entry(&self, data: &SoAMatrix<T>, kernel: &KernelSpec<T>, i: usize, j: usize) -> T {
        let delta = if i == j { self.ridge(i) } else { T::ZERO };
        kernel_soa(kernel, data, i, j) + delta - self.q[j] - self.q[i] + self.q_mm()
    }
}

/// Explicitly assembles `Q̃` — `O(m²·d)` work and `O(m²)` memory, for tests
/// and tiny problems only.
pub fn assemble_q_tilde<T: Real>(
    data: &SoAMatrix<T>,
    kernel: &KernelSpec<T>,
    cost: T,
) -> DenseMatrix<T> {
    let params = QTildeParams::compute(data, kernel, cost);
    let n = params.dim();
    let mut out = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, params.entry(data, kernel, i, j));
        }
    }
    out
}

/// The right-hand side `ȳ − y_m·1` of the reduced system (Eq. 14).
pub fn reduced_rhs<T: Real>(y: &[T]) -> Vec<T> {
    assert!(y.len() >= 2, "need at least two labels");
    let y_m = y[y.len() - 1];
    y[..y.len() - 1].iter().map(|&v| v - y_m).collect()
}

/// Reconstructs the bias `b = y_m + Q_mm·⟨1,α̃⟩ − ⟨q,α̃⟩` (Eq. 15).
pub fn bias<T: Real>(params: &QTildeParams<T>, y: &[T], alpha_tilde: &[T]) -> T {
    assert_eq!(alpha_tilde.len(), params.dim());
    let y_m = y[y.len() - 1];
    let s: T = alpha_tilde.iter().copied().sum();
    y_m + params.q_mm() * s - dot(&params.q, alpha_tilde)
}

/// Extends `α̃` with `α_m = −Σᵢ α̃ᵢ` (the eliminated equality constraint
/// `Σᵢ αᵢ = 0`), yielding the weights of all `m` support vectors.
pub fn full_alpha<T: Real>(alpha_tilde: &[T]) -> Vec<T> {
    let s: T = alpha_tilde.iter().copied().sum();
    let mut out = Vec::with_capacity(alpha_tilde.len() + 1);
    out.extend_from_slice(alpha_tilde);
    out.push(-s);
    out
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample(kernel: KernelSpec<f64>) -> (SoAMatrix<f64>, Vec<f64>, KernelSpec<f64>) {
        let d = generate_planes(&PlanesConfig::new(12, 3, 99)).unwrap();
        (SoAMatrix::from_dense(&d.x, 4), d.y, kernel)
    }

    #[test]
    fn params_match_direct_kernel_evals() {
        let (data, _, kernel) = sample(KernelSpec::Rbf { gamma: 0.5 });
        let p = QTildeParams::compute(&data, &kernel, 2.0);
        assert_eq!(p.dim(), 11);
        assert_eq!(p.inv_c, 0.5);
        assert!((p.k_mm - 1.0).abs() < 1e-12); // rbf(x,x) = 1
        for i in 0..11 {
            assert!((p.q[i] - kernel_soa(&kernel, &data, i, 11)).abs() < 1e-15);
        }
    }

    #[test]
    fn corrections_match_explicit_matrix() {
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.2,
                coef0: 1.0,
            },
            KernelSpec::Rbf { gamma: 0.7 },
        ] {
            let (data, _, kernel) = sample(kernel);
            let cost = 1.5;
            let params = QTildeParams::compute(&data, &kernel, cost);
            let q_tilde = assemble_q_tilde(&data, &kernel, cost);
            let n = params.dim();
            let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();

            // explicit: out = Q̃ v
            let mut explicit = vec![0.0; n];
            for i in 0..n {
                explicit[i] = (0..n).map(|j| q_tilde.get(i, j) * v[j]).sum();
            }
            // implicit: out = K v, then corrections
            let mut implicit = vec![0.0; n];
            for i in 0..n {
                implicit[i] = (0..n)
                    .map(|j| kernel_soa(&kernel, &data, i, j) * v[j])
                    .sum();
            }
            params.apply_corrections(&v, &mut implicit);

            for i in 0..n {
                assert!(
                    (explicit[i] - implicit[i]).abs() < 1e-9,
                    "{kernel:?} row {i}: {} vs {}",
                    explicit[i],
                    implicit[i]
                );
            }
        }
    }

    #[test]
    fn q_tilde_is_symmetric() {
        let (data, _, kernel) = sample(KernelSpec::Rbf { gamma: 1.0 });
        let m = assemble_q_tilde(&data, &kernel, 1.0);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn q_tilde_is_positive_definite() {
        // All eigenvalues positive ⟺ Cholesky succeeds.
        let (data, _, kernel) = sample(KernelSpec::Linear);
        let a = assemble_q_tilde(&data, &kernel, 1.0);
        let n = a.rows();
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    assert!(sum > 0.0, "not positive definite at {i}");
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
    }

    #[test]
    fn reduced_solution_satisfies_full_system() {
        // Solve the reduced system by dense Gaussian elimination, rebuild
        // [α; b], and verify it satisfies the original augmented system
        // (Eq. 11). This validates Eq. 13-15 end to end.
        let (data, y, kernel) = sample(KernelSpec::Rbf { gamma: 0.4 });
        let cost = 2.0;
        let params = QTildeParams::compute(&data, &kernel, cost);
        let a = assemble_q_tilde(&data, &kernel, cost);
        let rhs = reduced_rhs(&y);
        let n = rhs.len();

        // Gaussian elimination with partial pivoting.
        let mut aug: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row: Vec<f64> = (0..n).map(|j| a.get(i, j)).collect();
                row.push(rhs[i]);
                row
            })
            .collect();
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&r1, &r2| aug[r1][col].abs().partial_cmp(&aug[r2][col].abs()).unwrap())
                .unwrap();
            aug.swap(col, piv);
            let p = aug[col][col];
            assert!(p.abs() > 1e-12);
            for r in 0..n {
                if r != col {
                    let f = aug[r][col] / p;
                    for c in col..=n {
                        let v = aug[col][c];
                        aug[r][c] -= f * v;
                    }
                }
            }
        }
        let alpha_tilde: Vec<f64> = (0..n).map(|i| aug[i][n] / aug[i][i]).collect();

        let b = bias(&params, &y, &alpha_tilde);
        let alpha = full_alpha(&alpha_tilde);
        let m = data.points();
        assert_eq!(alpha.len(), m);

        // Eq. 11 row i: Σⱼ (k(xᵢ,xⱼ) + δᵢⱼ/C)·αⱼ + b = yᵢ
        for i in 0..m {
            let mut lhs = b;
            for j in 0..m {
                let k = kernel_soa(&kernel, &data, i, j) + if i == j { 1.0 / cost } else { 0.0 };
                lhs += k * alpha[j];
            }
            assert!((lhs - y[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", y[i]);
        }
        // Eq. 11 last row: Σ αᵢ = 0
        let s: f64 = alpha.iter().sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn full_alpha_sums_to_zero() {
        let alpha_tilde = vec![0.5, -1.25, 2.0];
        let alpha = full_alpha(&alpha_tilde);
        assert_eq!(alpha.len(), 4);
        assert_eq!(alpha[3], -1.25);
        assert!(alpha.iter().sum::<f64>().abs() < 1e-15);
    }

    #[test]
    fn reduced_rhs_subtracts_last_label() {
        let y = vec![1.0, -1.0, 1.0, -1.0];
        assert_eq!(reduced_rhs(&y), vec![2.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two data points")]
    fn single_point_rejected() {
        let m = DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap();
        let s = SoAMatrix::from_dense(&m, 1);
        let _ = QTildeParams::compute(&s, &KernelSpec::Linear, 1.0);
    }
}
