//! Per-component training timings (the paper's Fig. 2 breakdown).
//!
//! The paper decomposes a training run into `read` (parse the input file),
//! `transform` (2D row-major → padded 1D SoA), `cg` (solve the system of
//! linear equations on the selected backend, including device transfers)
//! and `write` (produce the model file); `total` covers the complete run
//! including everything not attributed to a component.
//!
//! Since the observability layer ([`crate::trace`]) was introduced, this
//! breakdown is a *derived projection* of the hierarchical timing spans
//! recorded during training — see [`ComponentTimes::from_spans`].

use std::time::Duration;

use crate::trace::{spans, SpanRecord};

/// Wall-clock durations of the four training steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentTimes {
    /// Reading and parsing the training data file.
    pub read: Duration,
    /// Transforming the 2D data into the padded SoA device layout.
    pub transform: Duration,
    /// Solving the system of linear equations (backend setup, transfers
    /// and the CG iterations).
    pub cg: Duration,
    /// Building and (if requested) writing the model file.
    pub write: Duration,
    /// The complete training run.
    pub total: Duration,
}

impl ComponentTimes {
    /// Projects the hierarchical timing spans of a training run onto the
    /// paper's four-component breakdown. Spans not part of the projection
    /// (e.g. the `train/cg/*` children) are simply ignored; a missing
    /// component is zero.
    pub fn from_spans(recorded: &[SpanRecord]) -> Self {
        let get = |path: &str| -> Duration {
            recorded
                .iter()
                .filter(|s| s.path == path)
                .map(|s| s.wall)
                .sum()
        };
        Self {
            read: get(spans::READ),
            transform: get(spans::TRANSFORM),
            cg: get(spans::CG),
            write: get(spans::WRITE),
            total: get(spans::TRAIN),
        }
    }

    /// The component durations as `(name, seconds)` rows, in the paper's
    /// plotting order.
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("read", self.read.as_secs_f64()),
            ("transform", self.transform.as_secs_f64()),
            ("cg", self.cg.as_secs_f64()),
            ("write", self.write.as_secs_f64()),
            ("total", self.total.as_secs_f64()),
        ]
    }

    /// Fraction of the total runtime spent in the CG component (the paper
    /// reports 92 % for large data sets).
    pub fn cg_fraction(&self) -> f64 {
        let total = self.total.as_secs_f64();
        if total > 0.0 {
            self.cg.as_secs_f64() / total
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ComponentTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read {:.3}s | transform {:.3}s | cg {:.3}s | write {:.3}s | total {:.3}s",
            self.read.as_secs_f64(),
            self.transform.as_secs_f64(),
            self.cg.as_secs_f64(),
            self.write.as_secs_f64(),
            self.total.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_in_paper_order() {
        let t = ComponentTimes {
            read: Duration::from_millis(100),
            transform: Duration::from_millis(50),
            cg: Duration::from_millis(800),
            write: Duration::from_millis(25),
            total: Duration::from_millis(1000),
        };
        let rows = t.rows();
        assert_eq!(rows[0].0, "read");
        assert_eq!(rows[2], ("cg", 0.8));
        assert_eq!(rows[4].0, "total");
    }

    #[test]
    fn cg_fraction() {
        let t = ComponentTimes {
            cg: Duration::from_millis(920),
            total: Duration::from_millis(1000),
            ..Default::default()
        };
        assert!((t.cg_fraction() - 0.92).abs() < 1e-12);
        assert_eq!(ComponentTimes::default().cg_fraction(), 0.0);
    }

    #[test]
    fn from_spans_projects_the_canonical_paths() {
        let recorded = vec![
            SpanRecord {
                path: spans::READ.into(),
                wall: Duration::from_millis(100),
            },
            SpanRecord {
                path: spans::CG.into(),
                wall: Duration::from_millis(800),
            },
            SpanRecord {
                path: spans::CG_SOLVE.into(),
                wall: Duration::from_millis(700),
            },
            SpanRecord {
                path: spans::TRAIN.into(),
                wall: Duration::from_millis(1000),
            },
        ];
        let t = ComponentTimes::from_spans(&recorded);
        assert_eq!(t.read, Duration::from_millis(100));
        assert_eq!(t.cg, Duration::from_millis(800)); // children not double counted
        assert_eq!(t.transform, Duration::ZERO);
        assert_eq!(t.total, Duration::from_millis(1000));
    }

    #[test]
    fn display_mentions_all_components() {
        let s = ComponentTimes::default().to_string();
        for name in ["read", "transform", "cg", "write", "total"] {
            assert!(s.contains(name));
        }
    }
}
