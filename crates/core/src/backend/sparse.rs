//! Sparse CPU backend — the paper's §V next step "to consider sparse data
//! structures for the CG solver".
//!
//! PLSSVM v1 densifies all input ("in the case of very sparse data sets
//! with many features, it is therefore better to use ThunderSVM"). This
//! backend removes that caveat: the training data is held in CSR form and
//! every kernel evaluation inside the implicit matvec runs on the sparse
//! rows (index-merge dot products / distances), so the per-entry cost is
//! `O(nnz_i + nnz_j)` instead of `O(d)`. Inner-product kernels use the
//! precomputed self-dots and the identity `‖a−b‖² = ⟨a,a⟩+⟨b,b⟩−2⟨a,b⟩`
//! for the RBF kernel, exactly like LIBSVM.
//!
//! Results are bit-compatible with the dense backends up to floating point
//! reassociation; on dense data the merge overhead makes it slower — see
//! the `ablation` figure for the crossover.

use rayon::prelude::*;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::sparse::CsrMatrix;
use plssvm_data::Real;

use crate::error::SvmError;
use crate::matrix_free::QTildeParams;

/// Row-block granularity for the parallel row sweep.
const ROW_BLOCK: usize = 32;

/// The sparse (CSR) CPU backend.
pub struct SparseBackend<T> {
    csr: CsrMatrix<T>,
    kernel: KernelSpec<T>,
    params: QTildeParams<T>,
    self_dots: Vec<T>,
    pool: Option<rayon::ThreadPool>,
}

impl<T: Real> SparseBackend<T> {
    /// Compresses the data and prepares the backend.
    pub fn new(
        data: &DenseMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        threads: Option<usize>,
    ) -> Result<Self, SvmError> {
        let pool = match threads {
            None => None,
            Some(0) => return Err(SvmError::Solver("thread count must be at least 1".into())),
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|e| SvmError::Solver(format!("thread pool: {e}")))?,
            ),
        };
        let csr = CsrMatrix::from_dense(data);
        let self_dots: Vec<T> = (0..csr.rows()).map(|i| csr.sparse_dot(i, i)).collect();
        let m = csr.rows();
        let last = m - 1;
        let eval = |i: usize, j: usize| kernel_sparse(&kernel, &csr, &self_dots, i, j);
        let params = QTildeParams {
            q: (0..last).map(|i| eval(i, last)).collect(),
            k_mm: eval(last, last),
            inv_c: T::ONE / cost,
            ridge_diag: None,
        };
        Ok(Self {
            csr,
            kernel,
            params,
            self_dots,
            pool,
        })
    }

    /// The shared `Q̃` parameters.
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// Density of the compressed training data.
    pub fn density(&self) -> f64 {
        self.csr.density()
    }

    /// `w = Σᵢ αᵢ·xᵢ` accumulated over the CSR rows (linear kernel).
    pub fn linear_w(&self, alpha: &[T]) -> Vec<T> {
        let mut w = vec![T::ZERO; self.csr.cols()];
        for (p, &a) in alpha.iter().enumerate() {
            let (cols, vals) = self.csr.row(p);
            for (&c, &v) in cols.iter().zip(vals) {
                w[c as usize] = a.mul_add(v, w[c as usize]);
            }
        }
        w
    }

    /// `out = K·v` over the first `m−1` points, parallel over row blocks,
    /// all kernel evaluations on CSR rows.
    pub fn kernel_matvec(&self, v: &[T], out: &mut [T]) {
        let n = self.params.dim();
        debug_assert_eq!(v.len(), n);
        debug_assert_eq!(out.len(), n);
        let work = |out: &mut [T]| {
            out.par_chunks_mut(ROW_BLOCK)
                .enumerate()
                .for_each(|(block, chunk)| {
                    let i0 = block * ROW_BLOCK;
                    for (di, slot) in chunk.iter_mut().enumerate() {
                        let i = i0 + di;
                        let mut acc = T::ZERO;
                        for (j, &vj) in v.iter().enumerate() {
                            acc = kernel_sparse(&self.kernel, &self.csr, &self.self_dots, i, j)
                                .mul_add(vj, acc);
                        }
                        *slot = acc;
                    }
                });
        };
        match &self.pool {
            Some(pool) => pool.install(|| work(out)),
            None => work(out),
        }
    }
}

/// One kernel evaluation on CSR rows using precomputed self-dots.
#[inline]
fn kernel_sparse<T: Real>(
    kernel: &KernelSpec<T>,
    csr: &CsrMatrix<T>,
    self_dots: &[T],
    i: usize,
    j: usize,
) -> T {
    match *kernel {
        KernelSpec::Linear => csr.sparse_dot(i, j),
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => gamma.mul_add(csr.sparse_dot(i, j), coef0).powi(degree),
        KernelSpec::Rbf { gamma } => {
            let dist_sq =
                (self_dots[i] + self_dots[j] - T::TWO * csr.sparse_dot(i, j)).max(T::ZERO);
            (-gamma * dist_sq).exp()
        }
        KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(csr.sparse_dot(i, j), coef0).tanh(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::serial::SerialBackend;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sparse_sample(points: usize) -> DenseMatrix<f64> {
        let mut x = generate_planes::<f64>(&PlanesConfig::new(points, 8, 21))
            .unwrap()
            .x;
        // zero out two thirds of the entries
        for p in 0..x.rows() {
            for f in 0..x.cols() {
                if (p + f) % 3 != 0 {
                    x.set(p, f, 0.0);
                }
            }
        }
        x
    }

    #[test]
    fn matches_serial_backend_on_all_kernels() {
        let data = sparse_sample(40);
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 2,
                gamma: 0.5,
                coef0: 1.0,
            },
            KernelSpec::Rbf { gamma: 0.4 },
            KernelSpec::Sigmoid {
                gamma: 0.2,
                coef0: 0.1,
            },
        ] {
            let dense = SerialBackend::new(data.clone(), kernel, 2.0);
            let sparse = SparseBackend::new(&data, kernel, 2.0, Some(2)).unwrap();
            let n = dense.params().dim();
            // q parameters agree
            for i in 0..n {
                assert!(
                    (dense.params().q[i] - sparse.params().q[i]).abs() < 1e-12,
                    "{kernel:?} q[{i}]"
                );
            }
            assert!((dense.params().k_mm - sparse.params().k_mm).abs() < 1e-12);
            // matvec agrees
            let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.23).sin()).collect();
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            dense.kernel_matvec(&v, &mut a);
            sparse.kernel_matvec(&v, &mut b);
            for i in 0..n {
                assert!((a[i] - b[i]).abs() < 1e-10, "{kernel:?} row {i}");
            }
        }
    }

    #[test]
    fn density_reported() {
        let data = sparse_sample(30);
        let b = SparseBackend::new(&data, KernelSpec::Linear, 1.0, None).unwrap();
        assert!(b.density() > 0.2 && b.density() < 0.5, "{}", b.density());
    }

    #[test]
    fn zero_threads_rejected() {
        let data = sparse_sample(10);
        assert!(SparseBackend::new(&data, KernelSpec::Linear, 1.0, Some(0)).is_err());
    }

    #[test]
    fn works_on_fully_dense_data() {
        let data = generate_planes::<f64>(&PlanesConfig::new(20, 4, 3))
            .unwrap()
            .x;
        let dense = SerialBackend::new(data.clone(), KernelSpec::Linear, 1.0);
        let sparse = SparseBackend::new(&data, KernelSpec::Linear, 1.0, None).unwrap();
        let n = dense.params().dim();
        let v = vec![1.0; n];
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        dense.kernel_matvec(&v, &mut a);
        sparse.kernel_matvec(&v, &mut b);
        for i in 0..n {
            assert!((a[i] - b[i]).abs() < 1e-10);
        }
    }
}
