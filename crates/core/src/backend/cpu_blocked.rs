//! Blocked, SIMD-friendly CPU matvec engine shared by the serial and
//! "OpenMP" backends.
//!
//! The paper's core performance idea — a blocked, tiled implicit `K·v`
//! product — is reproduced here for the *host* path. Three levels of
//! blocking mirror a classic GEMM decomposition:
//!
//! 1. **Register micro-tiles.** [`crate::kernel::kernel_panel`] evaluates a
//!    `PANEL_MR×PANEL_NR` block of kernel entries per call, accumulating
//!    all pair inner products (or squared distances) in one pass over the
//!    features. The accumulators are independent fused multiply–add chains
//!    the compiler keeps in registers and auto-vectorizes — unlike the
//!    single latency-bound chain of a row-at-a-time `dot`.
//! 2. **Cache tiles.** Micro-tiles are grouped into
//!    [`CpuTilingConfig::row_tile`]`×`[`CpuTilingConfig::col_tile`] blocks
//!    so the `j`-panel rows and the touched `v`/`out` segments stay cache
//!    resident while an `i`-panel streams past them.
//! 3. **Symmetry.** `K` is symmetric, so only upper-triangle tiles are
//!    evaluated and every strictly-upper entry is mirrored into both
//!    `out[i]` and `out[j]` — `n(n+1)/2` kernel evaluations instead of
//!    `n²`, the same economy the serial reference has always had.
//!
//! Parallel execution assigns **tile rows** to a bounded number of groups
//! in a strided pattern (early tile rows own long tile spans, late ones
//! short — striding balances the triangle). Each group accumulates into a
//! private partial output buffer and the buffers are reduced in group
//! order. Because the group count depends only on `n` and the tiling —
//! never on the thread count — results are bitwise independent of the
//! number of worker threads.
//!
//! Boundary behaviour is explicit everywhere: every tile and micro-tile
//! clamps to `n`, so `n = 1`, `n` one off a tile multiple and prime `n`
//! take the same code path as full tiles (see the boundary tests in
//! [`crate::backend::parallel`]).

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::error::SvmError;
use crate::kernel::{kernel_panel, kernel_row, PANEL_MR, PANEL_NR};
use crate::simd::Isa;

/// Upper bound on the number of partial output buffers (and parallel
/// tasks) of the symmetric matvec. Keeps the reduction memory at
/// `O(MAX_PARTIAL_GROUPS · n)` even for pathological one-row tiles while
/// leaving plenty of task granularity for any realistic core count.
pub(crate) const MAX_PARTIAL_GROUPS: usize = 64;

/// Cache-level tiling of the blocked CPU matvec engine.
///
/// The register-level micro-tile is fixed at compile time
/// ([`PANEL_MR`]`×`[`PANEL_NR`]); this configures the cache-level blocks
/// above it and whether the symmetric (upper-triangle + mirror) schedule
/// is used. Tiles are clamped to the problem size, so any positive value
/// is valid — `1` degenerates to unblocked scalar traversal, anything
/// `≥ n` to a single tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuTilingConfig {
    /// Rows per cache tile (the `i`-panel height). Must be ≥ 1.
    pub row_tile: usize,
    /// Columns per cache tile (the `j`-panel width). Must be ≥ 1.
    pub col_tile: usize,
    /// Evaluate only upper-triangle tiles and mirror each strictly-upper
    /// entry into both `out[i]` and `out[j]` — halving kernel evaluations.
    /// Disabling this recovers the full `n²` row sweep (useful for
    /// ablations; every output row is then computed independently).
    pub symmetry: bool,
    /// ISA tier for the panel micro-kernels. `None` (the default) defers
    /// to [`Isa::select`] — runtime detection plus the `PLSSVM_FORCE_ISA`
    /// override; `Some` pins the tier programmatically (clamped to what
    /// the host supports before any vector code runs).
    pub isa: Option<Isa>,
}

impl Default for CpuTilingConfig {
    fn default() -> Self {
        Self {
            row_tile: 64,
            col_tile: 64,
            symmetry: true,
            isa: None,
        }
    }
}

impl CpuTilingConfig {
    /// A symmetric configuration with the given cache-tile sizes.
    pub fn new(row_tile: usize, col_tile: usize) -> Self {
        Self {
            row_tile,
            col_tile,
            symmetry: true,
            isa: None,
        }
    }

    /// Toggles the symmetric schedule.
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Pins the panel micro-kernels to a specific ISA tier.
    pub fn with_isa(mut self, isa: Isa) -> Self {
        self.isa = Some(isa);
        self
    }

    /// The ISA tier this configuration dispatches to, after runtime
    /// detection / the environment override and the supported-tier clamp.
    pub fn resolved_isa(&self) -> Isa {
        self.isa
            .map(Isa::clamp_supported)
            .unwrap_or_else(Isa::select)
    }

    /// Problem-size-aware tiles for an `n`-dimensional matvec.
    ///
    /// Both schedules clamp tiles to `n` (tiles beyond the problem change
    /// nothing but bloat the bookkeeping). The non-symmetric row sweep
    /// additionally shrinks `row_tile` on small problems so the row range
    /// splits into at least [`MAX_PARTIAL_GROUPS`] independent chunks —
    /// without this, small-`n` parallel runs degenerate to a handful of
    /// oversized chunks and lose to the scalar sweep on load imbalance.
    ///
    /// Numerics are unaffected in both cases: the symmetric clamp leaves
    /// the tile schedule literally identical (a tile already never extends
    /// past `n`), and non-symmetric rows accumulate their columns in
    /// strictly increasing `j` order regardless of tiling, so every output
    /// bit is the same.
    pub fn effective_for(&self, n: usize) -> CpuTilingConfig {
        let n = n.max(1);
        let mut eff = *self;
        eff.row_tile = eff.row_tile.min(n);
        eff.col_tile = eff.col_tile.min(n);
        if !eff.symmetry {
            let balanced = n
                .div_ceil(MAX_PARTIAL_GROUPS)
                .next_multiple_of(PANEL_MR)
                .max(PANEL_MR);
            eff.row_tile = eff.row_tile.min(balanced);
        }
        eff
    }

    /// Rejects degenerate (zero-sized) tiles.
    pub fn validate(&self) -> Result<(), SvmError> {
        if self.row_tile == 0 || self.col_tile == 0 {
            return Err(SvmError::Solver(format!(
                "CPU tile sizes must be at least 1, got {}x{}",
                self.row_tile, self.col_tile
            )));
        }
        Ok(())
    }

    /// Kernel evaluations one `K·v` matvec of dimension `n` performs under
    /// this schedule: `n(n+1)/2` with symmetry, `n²` without.
    pub fn matvec_evals(&self, n: usize) -> u128 {
        let n = n as u128;
        if self.symmetry {
            n * (n + 1) / 2
        } else {
            n * n
        }
    }

    /// Number of partial-buffer groups the symmetric parallel schedule
    /// uses for an `n`-dimensional matvec. Depends only on `n` and the
    /// tiling — never on the thread count — so reductions are bitwise
    /// reproducible across thread counts.
    pub(crate) fn partial_groups(&self, n: usize) -> usize {
        n.div_ceil(self.row_tile).clamp(1, MAX_PARTIAL_GROUPS)
    }
}

/// Fills `ra` with up to `h` row slices starting at `start` and returns
/// the active prefix.
#[inline]
fn gather_rows<'a, T: Real>(
    data: &'a DenseMatrix<T>,
    start: usize,
    h: usize,
    buf: &mut [&'a [T]; PANEL_MR],
) -> usize {
    debug_assert!(h <= PANEL_MR);
    for (a, slot) in buf.iter_mut().enumerate().take(h) {
        *slot = data.row(start + a);
    }
    h
}

/// One off-diagonal cache tile `[i0,i1)×[j0,j1)` with `j0 ≥ i1`, evaluated
/// through micro-tiles and mirrored: `out[i] += K_ij·v[j]` and
/// `out[j] += K_ij·v[i]` for every entry.
fn symmetric_off_tile<T: Real>(
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    isa: Isa,
    (i0, i1): (usize, usize),
    (j0, j1): (usize, usize),
    v: &[T],
    out: &mut [T],
) {
    let mut ra: [&[T]; PANEL_MR] = [&[]; PANEL_MR];
    let mut rb: [&[T]; PANEL_MR] = [&[]; PANEL_MR];
    let mut i = i0;
    while i < i1 {
        let ih = gather_rows(data, i, (i1 - i).min(PANEL_MR), &mut ra);
        let mut j = j0;
        while j < j1 {
            let jh = gather_rows(data, j, (j1 - j).min(PANEL_NR), &mut rb);
            let panel = kernel_panel(kernel, isa, &ra[..ih], &rb[..jh]);
            for (a, prow) in panel.iter().enumerate().take(ih) {
                let va = v[i + a];
                let mut acc = out[i + a];
                for (b, &k) in prow.iter().enumerate().take(jh) {
                    acc = k.mul_add(v[j + b], acc);
                    out[j + b] = k.mul_add(va, out[j + b]);
                }
                out[i + a] = acc;
            }
            j += jh;
        }
        i += ih;
    }
}

/// The diagonal cache tile `[i0,i1)²`: the diagonal and the strict upper
/// triangle (mirrored). Micro-tiles strictly above the diagonal go through
/// the panel evaluator; the straddling blocks fall back to the scalar
/// triangle.
fn symmetric_diag_tile<T: Real>(
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    isa: Isa,
    (i0, i1): (usize, usize),
    v: &[T],
    out: &mut [T],
) {
    let mut i = i0;
    while i < i1 {
        let ih = (i1 - i).min(PANEL_MR);
        // straddling micro-block: diagonal entries plus the triangle above
        for a in 0..ih {
            let row_a = data.row(i + a);
            let kaa = kernel_row(kernel, row_a, row_a);
            out[i + a] = kaa.mul_add(v[i + a], out[i + a]);
            for b in (a + 1)..ih {
                let k = kernel_row(kernel, row_a, data.row(i + b));
                out[i + a] = k.mul_add(v[i + b], out[i + a]);
                out[i + b] = k.mul_add(v[i + a], out[i + b]);
            }
        }
        // complete micro-tiles to the right of the straddling block
        if i + ih < i1 {
            symmetric_off_tile(data, kernel, isa, (i, i + ih), (i + ih, i1), v, out);
        }
        i += ih;
    }
}

/// Accumulates the symmetric contributions of every tile row `I` with
/// `I ≡ group (mod groups)` into `out` (which the caller zero-fills or
/// reduces). `group = 0, groups = 1` is the complete sequential matvec.
#[allow(clippy::too_many_arguments)]
pub(crate) fn symmetric_group_matvec<T: Real>(
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    cfg: &CpuTilingConfig,
    n: usize,
    v: &[T],
    group: usize,
    groups: usize,
    out: &mut [T],
) {
    let isa = cfg.resolved_isa();
    let tile_rows = n.div_ceil(cfg.row_tile);
    let mut ti = group;
    while ti < tile_rows {
        let i0 = ti * cfg.row_tile;
        let i1 = (i0 + cfg.row_tile).min(n);
        symmetric_diag_tile(data, kernel, isa, (i0, i1), v, out);
        let mut j0 = i1;
        while j0 < n {
            let j1 = (j0 + cfg.col_tile).min(n);
            symmetric_off_tile(data, kernel, isa, (i0, i1), (j0, j1), v, out);
            j0 = j1;
        }
        ti += groups;
    }
}

/// Computes complete output rows `row0..row0+out.len()` of `K·v` without
/// symmetry (the full `n` columns per row), blocked over column tiles and
/// register micro-tiles. Rows are independent, so parallel callers can
/// hand out disjoint `out` chunks without partial buffers.
pub(crate) fn full_rows_matvec<T: Real>(
    data: &DenseMatrix<T>,
    kernel: &KernelSpec<T>,
    cfg: &CpuTilingConfig,
    n: usize,
    v: &[T],
    row0: usize,
    out: &mut [T],
) {
    out.fill(T::ZERO);
    let isa = cfg.resolved_isa();
    let row1 = row0 + out.len();
    let mut ra: [&[T]; PANEL_MR] = [&[]; PANEL_MR];
    let mut rb: [&[T]; PANEL_MR] = [&[]; PANEL_MR];
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + cfg.col_tile).min(n);
        let mut i = row0;
        while i < row1 {
            let ih = gather_rows(data, i, (row1 - i).min(PANEL_MR), &mut ra);
            let mut j = j0;
            while j < j1 {
                let jh = gather_rows(data, j, (j1 - j).min(PANEL_NR), &mut rb);
                let panel = kernel_panel(kernel, isa, &ra[..ih], &rb[..jh]);
                for (a, prow) in panel.iter().enumerate().take(ih) {
                    let mut acc = out[i - row0 + a];
                    for (b, &k) in prow.iter().enumerate().take(jh) {
                        acc = k.mul_add(v[j + b], acc);
                    }
                    out[i - row0 + a] = acc;
                }
                j += jh;
            }
            i += ih;
        }
        j0 = j1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample(points: usize, features: usize) -> DenseMatrix<f64> {
        generate_planes(&PlanesConfig::new(points, features, 123))
            .unwrap()
            .x
    }

    fn naive(data: &DenseMatrix<f64>, kernel: &KernelSpec<f64>, n: usize, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                *slot += kernel_row(kernel, data.row(i), data.row(j)) * vj;
            }
        }
        out
    }

    fn specs() -> Vec<KernelSpec<f64>> {
        vec![
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 2,
                gamma: 0.5,
                coef0: 0.25,
            },
            KernelSpec::Rbf { gamma: 0.3 },
            KernelSpec::Sigmoid {
                gamma: 0.2,
                coef0: -0.1,
            },
        ]
    }

    #[test]
    fn symmetric_schedule_matches_naive_for_all_kernels_and_tilings() {
        let data = sample(43, 5);
        let n = 42;
        let v: Vec<f64> = (0..n).map(|i| ((i * 5) as f64 * 0.11).sin()).collect();
        for kernel in specs() {
            let reference = naive(&data, &kernel, n, &v);
            for cfg in [
                CpuTilingConfig::default(),
                CpuTilingConfig::new(1, 1),
                CpuTilingConfig::new(7, 3),
                CpuTilingConfig::new(1024, 1024), // tiles larger than n
            ] {
                let groups = cfg.partial_groups(n);
                let mut out = vec![0.0; n];
                let mut partial = vec![0.0; n];
                for g in 0..groups {
                    partial.fill(0.0);
                    symmetric_group_matvec(&data, &kernel, &cfg, n, &v, g, groups, &mut partial);
                    for i in 0..n {
                        out[i] += partial[i];
                    }
                }
                for i in 0..n {
                    assert!(
                        (out[i] - reference[i]).abs() < 1e-9,
                        "{kernel:?} {cfg:?} row {i}: {} vs {}",
                        out[i],
                        reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn full_rows_schedule_matches_naive() {
        let data = sample(30, 6);
        let n = 29;
        let v: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
        for kernel in specs() {
            let reference = naive(&data, &kernel, n, &v);
            let cfg = CpuTilingConfig::new(8, 8).with_symmetry(false);
            // arbitrary row split, including a ragged final chunk
            let mut out = vec![0.0; n];
            for (ci, chunk) in out.chunks_mut(11).enumerate() {
                full_rows_matvec(&data, &kernel, &cfg, n, &v, ci * 11, chunk);
            }
            for i in 0..n {
                assert!(
                    (out[i] - reference[i]).abs() < 1e-9,
                    "{kernel:?} row {i}: {} vs {}",
                    out[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn eval_counts_follow_the_schedule() {
        let cfg = CpuTilingConfig::default();
        assert_eq!(cfg.matvec_evals(10), 55);
        assert_eq!(cfg.with_symmetry(false).matvec_evals(10), 100);
        // the acceptance bound: ≤ 0.55× the full sweep from n = 1024 up
        for n in [1024usize, 4096, 16384] {
            let sym = cfg.matvec_evals(n);
            let full = cfg.with_symmetry(false).matvec_evals(n);
            assert!(sym * 100 <= full * 55, "n={n}: {sym} vs {full}");
        }
    }

    #[test]
    fn partial_group_count_is_bounded_and_thread_free() {
        let cfg = CpuTilingConfig::new(4, 4);
        assert_eq!(cfg.partial_groups(3), 1);
        assert_eq!(cfg.partial_groups(17), 5);
        assert_eq!(CpuTilingConfig::new(1, 1).partial_groups(100_000), 64);
    }

    #[test]
    fn every_isa_tier_matches_naive_on_both_schedules() {
        let data = sample(39, 9);
        let n = 38;
        let v: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.21).cos()).collect();
        for kernel in specs() {
            let reference = naive(&data, &kernel, n, &v);
            for isa in Isa::available() {
                let sym = CpuTilingConfig::new(16, 16).with_isa(isa);
                let mut out = vec![0.0; n];
                symmetric_group_matvec(&data, &kernel, &sym, n, &v, 0, 1, &mut out);
                let nosym = sym.with_symmetry(false);
                let mut rows = vec![0.0; n];
                full_rows_matvec(&data, &kernel, &nosym, n, &v, 0, &mut rows);
                for i in 0..n {
                    assert!(
                        (out[i] - reference[i]).abs() < 1e-9,
                        "{kernel:?} {isa:?} sym row {i}: {} vs {}",
                        out[i],
                        reference[i]
                    );
                    assert!(
                        (rows[i] - reference[i]).abs() < 1e-9,
                        "{kernel:?} {isa:?} nosym row {i}: {} vs {}",
                        rows[i],
                        reference[i]
                    );
                }
            }
        }
    }

    /// Tile auto-selection in the non-symmetric schedule must not change a
    /// single output bit — rows accumulate their columns in strictly
    /// increasing `j` order regardless of tiling.
    #[test]
    fn nosym_output_bits_are_tiling_independent() {
        let data = sample(40, 7);
        let n = 39;
        let v: Vec<f64> = (0..n).map(|i| ((i * 13) as f64 * 0.07).sin()).collect();
        let kernel = KernelSpec::Rbf { gamma: 0.4 };
        let mut reference = vec![0.0; n];
        let base = CpuTilingConfig::new(64, 64).with_symmetry(false);
        full_rows_matvec(&data, &kernel, &base, n, &v, 0, &mut reference);
        for cfg in [
            base.effective_for(n),
            CpuTilingConfig::new(4, 4).with_symmetry(false),
            CpuTilingConfig::new(7, 128).with_symmetry(false),
        ] {
            let mut out = vec![0.0; n];
            full_rows_matvec(&data, &kernel, &cfg, n, &v, 0, &mut out);
            for i in 0..n {
                assert_eq!(out[i].to_bits(), reference[i].to_bits(), "{cfg:?} row {i}");
            }
        }
    }

    #[test]
    fn effective_tiles_clamp_to_problem_size_and_keep_groups() {
        let cfg = CpuTilingConfig::default();
        // symmetric: pure clamp, schedule invariant
        let eff = cfg.effective_for(10);
        assert_eq!((eff.row_tile, eff.col_tile), (10, 10));
        assert_eq!(eff.partial_groups(10), cfg.partial_groups(10));
        assert_eq!(cfg.effective_for(1000), cfg);
        // non-symmetric: small n splits into many chunks for balance
        let nosym = cfg.with_symmetry(false);
        let eff = nosym.effective_for(1023);
        assert_eq!(eff.row_tile, 16);
        assert!(eff.row_tile % PANEL_MR == 0);
        // large n: unchanged
        assert_eq!(nosym.effective_for(16384).row_tile, 64);
        // never grows a tile the user shrank
        assert_eq!(
            CpuTilingConfig::new(1, 1)
                .with_symmetry(false)
                .effective_for(1023)
                .row_tile,
            1
        );
        assert_eq!(cfg.effective_for(0).row_tile, 1);
    }

    #[test]
    fn zero_tiles_rejected() {
        assert!(CpuTilingConfig::new(0, 4).validate().is_err());
        assert!(CpuTilingConfig::new(4, 0).validate().is_err());
        assert!(CpuTilingConfig::new(1, 1).validate().is_ok());
    }
}
