//! The device backend: the paper's tiled GPU kernels on simulated devices.
//!
//! This backend reproduces the structure of PLSSVM's CUDA/OpenCL/SYCL
//! kernels (§III-C) on the simulated GPGPU devices of `plssvm-simgpu`:
//!
//! * **Blocking (§III-C-1)** — the `(m−1)²` implicit matrix is covered by a
//!   2D grid of tiles; the data is padded to tile granularity so no bounds
//!   checks are needed. Only the blocks on or below the diagonal perform
//!   work (`i ≥ j`); the rest return immediately ("thread creation on GPUs
//!   is rather lightweight"). Off-diagonal results are **mirrored** into
//!   the transposed position with device `atomicAdd`s.
//! * **`q⃗` caching (§III-C-2)** — a dedicated `q_kernel` precomputes
//!   `qᵢ = k(xᵢ, x_m)` once, reducing the scalar products per matrix entry
//!   from three to one.
//! * **Block-level caching (§III-C-3)** — inside a tile the feature
//!   dimension is processed in chunks: the chunk of both point sets is
//!   loaded once (the simulated "shared memory" load is what the traffic
//!   counters measure), then reused for every entry of the tile.
//! * **Thread-level caching (§III-C-4)** — each tile entry accumulates in a
//!   register-resident accumulator across chunks.
//! * **Multi-device (§III-C-5)** — for the linear kernel the data is split
//!   *feature-wise* across devices; each device computes a partial kernel
//!   matvec with its feature chunk and the host sums the partial result
//!   vectors. Polynomial and radial kernels are single-device, as in the
//!   paper.

use rayon::prelude::*;

use std::sync::{Mutex, RwLock};

use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::cluster::{Interconnect, NodeConfig};
use plssvm_simgpu::device::AtomicScalar;
use plssvm_simgpu::{
    Backend as DeviceApi, DeviceBuffer, FaultPlan, GpuSpec, Grid, LaunchConfig, Precision,
    SimDevice, SimGpuError,
};

use crate::backend::DeviceReport;
use crate::error::SvmError;
use crate::kernel::kernel_flops;
use crate::matrix_free::QTildeParams;
use crate::trace::{RecoveryKind, RecoverySample};

/// Transient launch timeouts are retried this many times (with simulated
/// exponential backoff) before the device is declared fail-stopped.
const MAX_TRANSIENT_RETRIES: u32 = 8;

/// A device whose per-matvec kernel time exceeds this multiple of the
/// live-device median is flagged a straggler and the work is rebalanced.
const STRAGGLER_FACTOR: f64 = 2.5;

/// Tiling parameters of the device kernels (the paper's two compile-time
/// blocking sizes plus the feature chunk of the shared-memory stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Threads per block edge (CUDA `blockDim`, paper default 16).
    pub thread_block: usize,
    /// Entries each thread computes per dimension (register blocking,
    /// paper default 4–6).
    pub internal_block: usize,
    /// Features staged through "shared memory" per pass.
    pub feature_chunk: usize,
}

impl Default for TilingConfig {
    fn default() -> Self {
        Self {
            thread_block: 16,
            internal_block: 4,
            feature_chunk: 64,
        }
    }
}

impl TilingConfig {
    /// Edge length of one tile: `thread_block · internal_block` output
    /// entries per dimension.
    pub fn tile(&self) -> usize {
        self.thread_block * self.internal_block
    }

    fn validate(&self) -> Result<(), SvmError> {
        if self.thread_block == 0 || self.internal_block == 0 || self.feature_chunk == 0 {
            return Err(SvmError::Solver(
                "tiling sizes must all be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// How tile accumulators combine feature contributions.
#[derive(Clone, Copy, PartialEq)]
enum AccMode {
    /// Accumulate `Σ_f a_f·b_f` (linear, polynomial).
    Dot,
    /// Accumulate `Σ_f (a_f − b_f)²` (radial).
    DistSq,
}

/// How the work is distributed over multiple devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitMode {
    /// The paper's §III-C-5 scheme: each device holds a feature chunk of
    /// every point; partial kernel sums are additive (linear kernel only).
    Features,
    /// Extension for the nonlinear kernels: the data is replicated and
    /// each device computes a contiguous block of output rows (no
    /// triangular mirroring across devices — each row is evaluated in
    /// full). Costs ~2x the kernel evaluations of the triangular scheme
    /// and the full data memory per device, but parallelizes every
    /// kernel, lifting the paper's "polynomial and radial kernels do not
    /// currently support multi-GPU execution" restriction.
    Rows,
}

/// One device's share of the training data.
struct DevicePart<T> {
    data: DeviceBuffer<T>,
    features: usize,
    /// Output rows `[row_begin, row_end)` this device owns (`Rows` mode;
    /// the full range in `Features` mode).
    row_begin: usize,
    row_end: usize,
}

/// Accumulated inter-node communication accounting.
#[derive(Debug, Default, Clone, Copy)]
struct NetworkStats {
    time_s: f64,
    collectives: usize,
    bytes: u64,
}

/// The simulated-GPU backend.
///
/// Covers both the paper's single-node multi-GPU configuration and the §V
/// long-term "multi-node multi-GPU with load balancing on heterogeneous
/// hardware": devices may live on different nodes (inter-node partial-sum
/// reductions are priced as ring allreduces over the configured
/// [`Interconnect`]) and may be of different hardware types (the feature
/// split is weighted by achievable throughput).
pub struct SimGpuBackend<T: AtomicScalar> {
    devices: Vec<SimDevice>,
    /// `node_of[i]` = node of device `i` (all zero for single-node).
    node_of: Vec<usize>,
    nodes: usize,
    interconnect: Option<Interconnect>,
    network: Mutex<NetworkStats>,
    /// Per-device data shards. Interior-mutable so fail-stop recovery can
    /// redistribute shards across the surviving devices mid-solve.
    parts: RwLock<Vec<DevicePart<T>>>,
    /// Host-resident copy of the padded SoA training data, kept so shards
    /// can be re-cut and re-uploaded after a device failure.
    host_data: SoAMatrix<T>,
    /// `alive[i]` = device `i` has not fail-stopped.
    alive: RwLock<Vec<bool>>,
    /// Recovery events not yet drained into a metrics sink.
    recovery: Mutex<Vec<RecoverySample>>,
    kernel: KernelSpec<T>,
    params: QTildeParams<T>,
    /// Dimension of the reduced system (`m − 1`).
    n: usize,
    padded_points: usize,
    tiling: TilingConfig,
    precision: Precision,
    split: SplitMode,
}

impl<T: AtomicScalar> std::fmt::Debug for SimGpuBackend<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimGpuBackend")
            .field("devices", &self.devices.len())
            .field("nodes", &self.nodes)
            .field("n", &self.n)
            .field("tiling", &self.tiling)
            .finish()
    }
}

impl<T: AtomicScalar> SimGpuBackend<T> {
    /// Sets up `devices` simulated devices: splits and uploads the data,
    /// and runs the `q_kernel`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        data: &SoAMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        hardware: GpuSpec,
        api: DeviceApi,
        devices: usize,
        tiling: TilingConfig,
    ) -> Result<Self, SvmError> {
        tiling.validate()?;
        if devices == 0 {
            return Err(SvmError::Solver("need at least one device".into()));
        }
        if devices > 1 && !matches!(kernel, KernelSpec::Linear) {
            return Err(SvmError::Solver(
                "multi-device execution is only supported for the linear kernel \
                 (the polynomial and radial kernels are single-device, as in the paper)"
                    .into(),
            ));
        }
        if !api.supports(&hardware) {
            return Err(SvmError::Solver(format!(
                "{} cannot drive {}",
                api.name(),
                hardware.name
            )));
        }
        let devices = devices.min(data.features());
        let device_list: Vec<SimDevice> = (0..devices)
            .map(|id| SimDevice::with_id(hardware.clone(), api, id))
            .collect();
        let feature_parts = data.split_features(devices);
        Self::finish_setup(
            data,
            kernel,
            cost,
            tiling,
            device_list,
            vec![0; devices],
            1,
            None,
            feature_parts,
        )
    }

    /// Sets up a **multi-node, possibly heterogeneous** cluster backend
    /// (the paper's §V long-term goal). The feature split is weighted by
    /// each device's achievable FP64 throughput when `balance` is true
    /// (load balancing on heterogeneous hardware), or uniform otherwise.
    /// Per CG iteration the inter-node partial-sum combination is priced
    /// as a ring allreduce over `interconnect`. Linear kernel only (the
    /// split needs additivity), like the paper's multi-GPU path.
    pub fn new_cluster(
        data: &SoAMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        nodes: &[NodeConfig],
        interconnect: Interconnect,
        tiling: TilingConfig,
        balance: bool,
    ) -> Result<Self, SvmError> {
        tiling.validate()?;
        if nodes.is_empty() || nodes.iter().any(|n| n.devices.is_empty()) {
            return Err(SvmError::Solver(
                "every cluster node needs at least one device".into(),
            ));
        }
        let total_devices: usize = nodes.iter().map(|n| n.devices.len()).sum();
        if total_devices > 1 && !matches!(kernel, KernelSpec::Linear) {
            return Err(SvmError::Solver(
                "multi-device execution is only supported for the linear kernel \
                 (the polynomial and radial kernels are single-device, as in the paper)"
                    .into(),
            ));
        }
        let mut device_list = Vec::new();
        let mut node_of = Vec::new();
        for (ni, node) in nodes.iter().enumerate() {
            for (spec, api) in &node.devices {
                if !api.supports(spec) {
                    return Err(SvmError::Solver(format!(
                        "{} cannot drive {}",
                        api.name(),
                        spec.name
                    )));
                }
                node_of.push(ni);
                device_list.push(SimDevice::with_id(spec.clone(), *api, device_list.len()));
            }
        }
        if device_list.len() > data.features() {
            return Err(SvmError::Solver(format!(
                "{} devices for only {} features",
                device_list.len(),
                data.features()
            )));
        }
        let feature_parts = if balance {
            let weights: Vec<f64> = device_list
                .iter()
                .map(|d| {
                    let profile = plssvm_simgpu::backend_profile(d.backend(), d.spec());
                    d.spec().peak_flops(Precision::F64) * profile.compute_efficiency
                })
                .collect();
            data.split_features_weighted(&weights)
        } else {
            data.split_features(device_list.len())
        };
        let node_count = nodes.len();
        Self::finish_setup(
            data,
            kernel,
            cost,
            tiling,
            device_list,
            node_of,
            node_count,
            Some(interconnect),
            feature_parts,
        )
    }

    /// Sets up **row-split** multi-device execution (extension): the data
    /// is replicated on every device and each device computes a block of
    /// output rows. Works for *all* kernel functions — this lifts the
    /// paper's restriction of multi-GPU to the linear kernel, at the cost
    /// of full per-device data replication and ~2x kernel evaluations
    /// (no cross-device triangular mirroring).
    #[allow(clippy::too_many_arguments)]
    pub fn new_row_split(
        data: &SoAMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        hardware: GpuSpec,
        api: DeviceApi,
        devices: usize,
        tiling: TilingConfig,
    ) -> Result<Self, SvmError> {
        tiling.validate()?;
        if devices == 0 {
            return Err(SvmError::Solver("need at least one device".into()));
        }
        if !api.supports(&hardware) {
            return Err(SvmError::Solver(format!(
                "{} cannot drive {}",
                api.name(),
                hardware.name
            )));
        }
        let n = data.points() - 1;
        let devices = devices.min(n.max(1));
        let device_list: Vec<SimDevice> = (0..devices)
            .map(|id| SimDevice::with_id(hardware.clone(), api, id))
            .collect();
        // replicate the full data on every device
        let feature_parts = vec![data.clone(); devices];
        Self::finish_setup_mode(
            data,
            kernel,
            cost,
            tiling,
            device_list,
            vec![0; devices],
            1,
            None,
            feature_parts,
            SplitMode::Rows,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_setup(
        data: &SoAMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        tiling: TilingConfig,
        device_list: Vec<SimDevice>,
        node_of: Vec<usize>,
        nodes: usize,
        interconnect: Option<Interconnect>,
        feature_parts: Vec<SoAMatrix<T>>,
    ) -> Result<Self, SvmError> {
        Self::finish_setup_mode(
            data,
            kernel,
            cost,
            tiling,
            device_list,
            node_of,
            nodes,
            interconnect,
            feature_parts,
            SplitMode::Features,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_setup_mode(
        data: &SoAMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        tiling: TilingConfig,
        device_list: Vec<SimDevice>,
        node_of: Vec<usize>,
        nodes: usize,
        interconnect: Option<Interconnect>,
        feature_parts: Vec<SoAMatrix<T>>,
        split: SplitMode,
    ) -> Result<Self, SvmError> {
        let precision = if T::BYTES == 8 {
            Precision::F64
        } else {
            Precision::F32
        };
        let n = data.points() - 1;
        let count = device_list.len();
        let mut parts = Vec::with_capacity(count);
        for (k, (dev, part)) in device_list.iter().zip(&feature_parts).enumerate() {
            // Rows mode: contiguous slices of the n+1 q-rows / n matvec
            // rows; Features mode: every device covers the full range.
            let (row_begin, row_end) = match split {
                SplitMode::Features => (0, n + 1),
                SplitMode::Rows => {
                    let per = (n + 1).div_ceil(count);
                    ((k * per).min(n + 1), ((k + 1) * per).min(n + 1))
                }
            };
            parts.push(DevicePart {
                data: dev.copy_to_device(part.as_slice())?,
                features: part.features(),
                row_begin,
                row_end,
            });
        }
        let count = device_list.len();
        let mut backend = Self {
            devices: device_list,
            node_of,
            nodes,
            interconnect,
            network: Mutex::new(NetworkStats::default()),
            parts: RwLock::new(parts),
            host_data: data.clone(),
            alive: RwLock::new(vec![true; count]),
            recovery: Mutex::new(Vec::new()),
            kernel,
            params: QTildeParams {
                q: Vec::new(),
                k_mm: T::ZERO,
                inv_c: T::ONE / cost,
                ridge_diag: None,
            },
            n,
            padded_points: data.padded_points(),
            tiling,
            precision,
            split,
        };
        let (q, k_mm) = backend.run_q_kernel()?;
        backend.params.q = q;
        backend.params.k_mm = k_mm;
        // the q vector combination is also one inter-node collective
        backend.record_allreduce((backend.n as u64 + 1) * T::BYTES as u64);
        Ok(backend)
    }

    /// Records one inter-node allreduce of `bytes` (no-op on one node).
    fn record_allreduce(&self, bytes: u64) {
        if let Some(net) = self.interconnect {
            if self.nodes > 1 {
                let mut stats = self.network.lock().expect("network stats lock");
                stats.time_s += net.allreduce_time_s(bytes, self.nodes);
                stats.collectives += 1;
                stats.bytes += bytes;
            }
        }
    }

    /// Installs a deterministic [`FaultPlan`] on the devices. Subsequent
    /// kernel launches are gated by the plan: transient timeouts are
    /// retried with simulated backoff, fail-stopped devices are dropped
    /// and their data shard is redistributed across the survivors, and
    /// slow devices are detected as stragglers and rebalanced away from.
    /// Fails without installing anything if the plan addresses a device
    /// this backend does not have.
    pub fn install_fault_plan(&self, plan: &FaultPlan) -> Result<(), SvmError> {
        if let Some(max) = plan.max_device() {
            if max >= self.devices.len() {
                return Err(SvmError::Device(SimGpuError::DeviceIndexOutOfRange {
                    index: max,
                    count: self.devices.len(),
                }));
            }
        }
        for d in &self.devices {
            d.install_fault_plan(plan);
        }
        Ok(())
    }

    /// Takes every recovery event recorded since the last drain, in
    /// deterministic order.
    pub fn drain_recovery_events(&self) -> Vec<RecoverySample> {
        std::mem::take(&mut *self.recovery.lock().expect("recovery lock"))
    }

    /// Number of devices that have not fail-stopped.
    pub fn live_devices(&self) -> usize {
        self.alive
            .read()
            .expect("alive lock")
            .iter()
            .filter(|&&a| a)
            .count()
    }

    fn record_recovery(&self, sample: RecoverySample) {
        self.recovery.lock().expect("recovery lock").push(sample);
    }

    /// Indices of the devices still alive, ascending.
    fn live_indices(&self) -> Vec<usize> {
        self.alive
            .read()
            .expect("alive lock")
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Achievable-throughput weight of one device (the same measure the
    /// heterogeneous cluster setup balances by).
    fn throughput_weight(&self, device: usize) -> f64 {
        let d = &self.devices[device];
        let profile = plssvm_simgpu::backend_profile(d.backend(), d.spec());
        d.spec().peak_flops(self.precision) * profile.compute_efficiency
    }

    /// Re-cuts the data distribution over the `live` devices. `weights`
    /// biases the cut (straggler rebalancing); `None` uses throughput
    /// weights (feature split) or an even partition (row split).
    ///
    /// Feature split: the shards are re-cut from the retained host copy
    /// and re-uploaded. The cached `q⃗`/`k_mm` need no recomputation — they
    /// are host-resident and mathematically independent of the split. Row
    /// split: every device already holds the full data, so only the row
    /// ranges are reassigned (no transfer at all).
    fn redistribute(&self, live: &[usize], weights: Option<&[f64]>) -> Result<(), SvmError> {
        let mut parts = self.parts.write().expect("parts lock");
        match self.split {
            SplitMode::Features => {
                let weights: Vec<f64> = match weights {
                    Some(w) => w.to_vec(),
                    None => live.iter().map(|&i| self.throughput_weight(i)).collect(),
                };
                let chunks = self.host_data.split_features_weighted(&weights);
                for (&i, chunk) in live.iter().zip(&chunks) {
                    parts[i] = DevicePart {
                        data: self.devices[i].copy_to_device(chunk.as_slice())?,
                        features: chunk.features(),
                        row_begin: 0,
                        row_end: self.n + 1,
                    };
                }
            }
            SplitMode::Rows => {
                let rows = self.n + 1;
                let mut begin = 0usize;
                for (k, &i) in live.iter().enumerate() {
                    let end = if k + 1 == live.len() {
                        rows
                    } else {
                        match weights {
                            Some(w) => {
                                let total: f64 = w.iter().sum();
                                let share = (rows as f64 * w[k] / total).round() as usize;
                                (begin + share).min(rows)
                            }
                            None => (begin + rows.div_ceil(live.len())).min(rows),
                        }
                    };
                    parts[i].row_begin = begin;
                    parts[i].row_end = end;
                    begin = end;
                }
            }
        }
        Ok(())
    }

    /// Marks `failures` as fail-stopped, redistributes their work across
    /// the survivors and records one failover event per lost device.
    fn fail_over(&self, failures: &[(usize, u64)]) -> Result<(), SvmError> {
        {
            let mut alive = self.alive.write().expect("alive lock");
            for &(d, _) in failures {
                alive[d] = false;
            }
        }
        let live = self.live_indices();
        if live.is_empty() {
            return Err(SvmError::Solver(
                "every simulated device has fail-stopped; no survivor to redistribute to".into(),
            ));
        }
        self.redistribute(&live, None)?;
        for &(d, l) in failures {
            self.record_recovery(RecoverySample::device_event(
                RecoveryKind::Failover,
                d,
                l,
                format!(
                    "fail-stop; shard redistributed over {} surviving device(s)",
                    live.len()
                ),
            ));
        }
        Ok(())
    }

    /// Runs `job` once per live device (in parallel), with the recovery
    /// policy applied: transient timeouts retry in place with simulated
    /// exponential backoff; a fail-stop (or an exhausted retry budget)
    /// drops the device, redistributes its shard and re-runs the whole
    /// pass on the survivors. Returns the per-device outputs in ascending
    /// device order; errors only when no device survives (or on a
    /// non-fault device error such as out-of-memory).
    fn run_recovered<R, F>(&self, job: F) -> Result<Vec<R>, SvmError>
    where
        R: Send,
        F: Fn(&SimDevice, &DevicePart<T>) -> Result<R, SvmError> + Sync,
    {
        loop {
            let live = self.live_indices();
            if live.is_empty() {
                return Err(SvmError::Solver(
                    "every simulated device has fail-stopped; no survivor to redistribute to"
                        .into(),
                ));
            }
            let attempts: Vec<(usize, Result<R, SvmError>, Vec<RecoverySample>)> = {
                let parts = self.parts.read().expect("parts lock");
                live.par_iter()
                    .map(|&i| {
                        let dev = &self.devices[i];
                        let part = &parts[i];
                        let mut events = Vec::new();
                        let mut retries = 0u32;
                        loop {
                            match job(dev, part) {
                                Err(SvmError::Device(SimGpuError::TransientTimeout {
                                    device,
                                    launch,
                                })) if retries < MAX_TRANSIENT_RETRIES => {
                                    retries += 1;
                                    events.push(RecoverySample::device_event(
                                        RecoveryKind::Retry,
                                        device,
                                        launch,
                                        format!(
                                            "transient timeout; retry {retries} after {} µs \
                                             simulated backoff",
                                            100u64 << retries
                                        ),
                                    ));
                                }
                                other => return (i, other, events),
                            }
                        }
                    })
                    .collect()
            };
            let mut outputs = Vec::with_capacity(attempts.len());
            let mut failures = Vec::new();
            for (_device, result, events) in attempts {
                for e in events {
                    self.record_recovery(e);
                }
                match result {
                    Ok(v) => outputs.push(v),
                    Err(SvmError::Device(SimGpuError::DeviceFailed { device, launch })) => {
                        failures.push((device, launch));
                    }
                    Err(SvmError::Device(SimGpuError::TransientTimeout { device, launch })) => {
                        self.record_recovery(RecoverySample::device_event(
                            RecoveryKind::Retry,
                            device,
                            launch,
                            format!(
                                "transient retry budget ({MAX_TRANSIENT_RETRIES}) exhausted; \
                                 treating device as fail-stopped"
                            ),
                        ));
                        failures.push((device, launch));
                    }
                    Err(e) => return Err(e),
                }
            }
            if failures.is_empty() {
                return Ok(outputs);
            }
            self.fail_over(&failures)?;
        }
    }

    /// Sum of a device's per-kernel simulated time (transfers excluded),
    /// used for straggler detection.
    fn device_kernel_time_s(&self, device: usize) -> f64 {
        self.devices[device]
            .perf_report()
            .per_kernel
            .values()
            .map(|k| k.sim_time_s)
            .sum()
    }

    /// Compares each live device's kernel time for the pass that just ran
    /// (`before` = snapshot of [`Self::device_kernel_time_s`] per device)
    /// against the live median; a device beyond [`STRAGGLER_FACTOR`]× the
    /// median is flagged and the work is rebalanced proportionally to the
    /// inverse observed time. Self-stabilizing: after one rebalance the
    /// per-device times even out and no further events fire.
    fn detect_stragglers(&self, before: &[f64]) -> Result<(), SvmError> {
        let live = self.live_indices();
        if live.len() < 2 {
            return Ok(());
        }
        let deltas: Vec<f64> = live
            .iter()
            .map(|&i| self.device_kernel_time_s(i) - before[i])
            .collect();
        let mut sorted = deltas.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite kernel times"));
        // lower median, so with two devices the baseline is the faster one
        let median = sorted[(sorted.len() - 1) / 2];
        let (worst, &max) = deltas
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite kernel times"))
            .expect("at least two live devices");
        if median <= 0.0 || max <= STRAGGLER_FACTOR * median {
            return Ok(());
        }
        let weights: Vec<f64> = deltas
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        self.redistribute(&live, Some(&weights))?;
        let device = live[worst];
        let launch = self.devices[device].fault_attempts().saturating_sub(1);
        self.record_recovery(RecoverySample::device_event(
            RecoveryKind::Straggler,
            device,
            launch,
            format!(
                "kernel time {:.3e}s vs live median {:.3e}s; rebalanced by inverse observed time",
                max, median
            ),
        ));
        Ok(())
    }

    /// The node a device belongs to (always 0 for single-node setups).
    pub fn node_of(&self, device: usize) -> usize {
        self.node_of[device]
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Per-device feature counts of the (possibly weighted) split.
    pub fn feature_split(&self) -> Vec<usize> {
        self.parts
            .read()
            .expect("parts lock")
            .iter()
            .map(|p| p.features)
            .collect()
    }

    /// The shared `Q̃` parameters (with the device-computed `q⃗`).
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// Number of devices in use.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// Aggregated device counters.
    pub fn report(&self) -> DeviceReport {
        let per_device: Vec<_> = self.devices.iter().map(|d| d.perf_report()).collect();
        let sim_parallel_time_s = per_device
            .iter()
            .map(|r| r.sim_total_time_s())
            .fold(0.0, f64::max);
        let peak_memory_per_device_bytes = per_device
            .iter()
            .map(|r| r.peak_allocated_bytes)
            .max()
            .unwrap_or(0);
        let net = *self.network.lock().expect("network stats lock");
        DeviceReport {
            per_device,
            sim_parallel_time_s,
            peak_memory_per_device_bytes,
            nodes: self.nodes,
            network_time_s: net.time_s,
            network_collectives: net.collectives,
        }
    }

    fn acc_mode(&self) -> AccMode {
        match self.kernel {
            KernelSpec::Linear | KernelSpec::Polynomial { .. } | KernelSpec::Sigmoid { .. } => {
                AccMode::Dot
            }
            KernelSpec::Rbf { .. } => AccMode::DistSq,
        }
    }

    /// Converts a fully-accumulated raw value into a kernel value.
    fn finish(&self, acc: T) -> T {
        match self.kernel {
            KernelSpec::Linear => acc,
            KernelSpec::Polynomial {
                degree,
                gamma,
                coef0,
            } => gamma.mul_add(acc, coef0).powi(degree),
            KernelSpec::Rbf { gamma } => (-gamma * acc).exp(),
            KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(acc, coef0).tanh(),
        }
    }

    /// True if per-device partial kernel values may simply be summed (the
    /// linearity property behind the multi-device split).
    fn partials_are_additive(&self) -> bool {
        matches!(self.kernel, KernelSpec::Linear)
    }

    /// Runs the `q_kernel` on every device: raw accumulations
    /// `acc(xᵢ, x_m)` for `i = 0..=n` (entry `n` yields `k_mm`). Partials
    /// are summed over devices, then the kernel postprocessing is applied
    /// once on the host — this is valid for *all* kernels because both
    /// `Σ_f a·b` and `Σ_f (a−b)²` are additive over feature chunks.
    fn run_q_kernel(&self) -> Result<(Vec<T>, T), SvmError> {
        let n = self.n;
        let padded = self.padded_points;
        let tile = self.tiling.tile();
        let chunk = self.tiling.feature_chunk;
        let mode = self.acc_mode();
        let last = n; // index of x_m in the SoA buffer

        let partials: Vec<Vec<T>> =
            self.run_recovered(|dev, part| -> Result<Vec<T>, SvmError> {
                let out = dev.alloc_atomic::<T>(n + 1)?;
                // Features mode: every device covers all rows (partial
                // feature sums). Rows mode: each device covers its own
                // row slice with the full feature set.
                let (r0, r1) = (part.row_begin, part.row_end);
                let blocks = (r1 - r0).div_ceil(tile).max(1);
                let cfg = LaunchConfig::new("q_kernel", Grid::one_d(blocks), self.precision);
                let d = part.features;
                let buf = part.data.as_slice();
                dev.launch(&cfg, |blk, ctx| {
                    let i0 = r0 + blk.x * tile;
                    let i1 = (i0 + tile).min(r1);
                    if i0 >= i1 {
                        return;
                    }
                    let rows = i1 - i0;
                    let mut acc = vec![T::ZERO; rows];
                    let mut f0 = 0;
                    while f0 < d {
                        let f1 = (f0 + chunk).min(d);
                        for f in f0..f1 {
                            let col = &buf[f * padded..(f + 1) * padded];
                            let xm = col[last];
                            for (r, a) in acc.iter_mut().enumerate() {
                                let xi = col[i0 + r];
                                match mode {
                                    AccMode::Dot => *a = xi.mul_add(xm, *a),
                                    AccMode::DistSq => {
                                        let diff = xi - xm;
                                        *a = diff.mul_add(diff, *a);
                                    }
                                }
                            }
                        }
                        f0 = f1;
                    }
                    for (r, &a) in acc.iter().enumerate() {
                        out.add(i0 + r, a);
                    }
                    // work: one full kernel evaluation per row (the
                    // accumulation over d features plus the finish);
                    // reads: the row tile + the broadcast x_m
                    ctx.add_flops(rows as u64 * kernel_flops(&self.kernel, d));
                    ctx.add_global_read(((rows + 1) * d * T::BYTES) as u64);
                    ctx.add_global_write((rows * T::BYTES) as u64);
                })?;
                Ok(out.read_to_host())
            })?;

        // Host: sum device partials, then apply the kernel postprocessing.
        let mut raw = vec![T::ZERO; n + 1];
        for partial in &partials {
            for (r, p) in raw.iter_mut().zip(partial) {
                *r += *p;
            }
        }
        let k_mm = self.finish(raw[n]);
        let q = raw[..n].iter().map(|&a| self.finish(a)).collect();
        Ok((q, k_mm))
    }

    /// Computes the explicit normal vector `w = Σᵢ αᵢ·xᵢ` on the devices —
    /// the paper's third compute kernel (`w_kernel`), used to accelerate
    /// prediction with the linear kernel (Eq. 15). In the feature split
    /// each device produces the `w` components of its own feature chunk
    /// (the host simply concatenates); in the row split each device
    /// accumulates a full-length partial over its own point range (the
    /// host sums).
    ///
    /// `alpha` must hold all `m` support values. Only meaningful for the
    /// linear kernel (for other kernels `w` lives in feature space).
    pub fn compute_w(&self, alpha: &[T]) -> Result<Vec<T>, SvmError> {
        assert_eq!(alpha.len(), self.n + 1, "alpha must cover all m points");
        let padded = self.padded_points;
        let m = self.n + 1;
        let tile = self.tiling.tile();
        let split = self.split;
        let parts_w: Vec<Vec<T>> = self.run_recovered(|dev, part| -> Result<Vec<T>, SvmError> {
            let d = part.features;
            if d == 0 {
                return Ok(Vec::new());
            }
            // point range to accumulate over: all m points in the
            // feature split, the device's own row slice in the row
            // split (where the features are replicated instead)
            let (p0, p1) = match split {
                SplitMode::Features => (0, m),
                SplitMode::Rows => (part.row_begin.min(m), part.row_end.min(m)),
            };
            if p0 >= p1 {
                return Ok(vec![T::ZERO; d]);
            }
            let points = p1 - p0;
            let alpha_dev = dev.copy_to_device(&alpha[p0..p1])?;
            let w_dev = dev.alloc_atomic::<T>(d)?;
            let cfg = LaunchConfig::new("w_kernel", Grid::one_d(d.div_ceil(tile)), self.precision);
            dev.launch(&cfg, |blk, ctx| {
                let f0 = blk.x * tile;
                let f1 = (f0 + tile).min(d);
                if f0 >= f1 {
                    return;
                }
                let a = alpha_dev.as_slice();
                for f in f0..f1 {
                    let col = &part.data.as_slice()[f * padded + p0..f * padded + p1];
                    let mut acc = T::ZERO;
                    for (p, &x) in col.iter().enumerate() {
                        acc = a[p].mul_add(x, acc);
                    }
                    w_dev.add(f, acc);
                }
                let rows = (f1 - f0) as u64;
                ctx.add_flops(rows * 2 * points as u64);
                ctx.add_global_read((rows as usize * points + points) as u64 * T::BYTES as u64);
                ctx.add_global_write(rows * T::BYTES as u64);
            })?;
            Ok(w_dev.read_to_host())
        })?;
        match split {
            SplitMode::Features => Ok(parts_w.into_iter().flatten().collect()),
            SplitMode::Rows => {
                // every partial is full-length; sum over the point slices
                let d = self.host_data.features();
                let mut w = vec![T::ZERO; d];
                for partial in &parts_w {
                    for (acc, p) in w.iter_mut().zip(partial) {
                        *acc += *p;
                    }
                }
                Ok(w)
            }
        }
    }

    /// `out = K·v` over the first `m−1` points — the paper's `svm_kernel`.
    ///
    /// Fault recovery is applied per launch: transient timeouts retry in
    /// place, fail-stopped devices are dropped with their shard
    /// redistributed across the survivors, and persistent stragglers are
    /// rebalanced away from. Errors only when *no* device survives (or on
    /// a non-fault device error such as out-of-memory mid-solve).
    pub fn kernel_matvec(&self, v: &[T], out: &mut [T]) -> Result<(), SvmError> {
        let n = self.n;
        debug_assert_eq!(v.len(), n);
        debug_assert_eq!(out.len(), n);
        let padded = self.padded_points;
        let tile = self.tiling.tile();
        let chunk = self.tiling.feature_chunk;
        let mode = self.acc_mode();
        let additive = self.partials_are_additive() && self.split == SplitMode::Features;
        let split = self.split;

        let kernel_time_before: Vec<f64> = (0..self.devices.len())
            .map(|i| self.device_kernel_time_s(i))
            .collect();
        let alive_before = self.live_devices();
        let partials: Vec<Vec<T>> =
            self.run_recovered(|dev, part| -> Result<Vec<T>, SvmError> {
                let d = part.features;
                let buf = part.data.as_slice();
                let v_dev = dev.copy_to_device(v)?;
                let out_dev = dev.alloc_atomic::<T>(n)?;
                match split {
                    SplitMode::Features => {
                        let blocks = n.div_ceil(tile);
                        let cfg = LaunchConfig::new(
                            "svm_kernel",
                            Grid::two_d(blocks, blocks),
                            self.precision,
                        );
                        dev.launch(&cfg, |blk, ctx| {
                            // Only blocks on or below the diagonal compute
                            // (threads with i ≥ j, §III-C-1); the rest return
                            // immediately.
                            if blk.x < blk.y {
                                return;
                            }
                            let i0 = blk.x * tile;
                            let i1 = (i0 + tile).min(n);
                            let j0 = blk.y * tile;
                            let j1 = (j0 + tile).min(n);
                            if i0 >= i1 || j0 >= j1 {
                                return;
                            }
                            let rows = i1 - i0;
                            let cols = j1 - j0;
                            let mut acc = vec![T::ZERO; rows * cols];
                            accumulate_tile(buf, padded, d, chunk, mode, i0, i1, j0, j1, &mut acc);
                            // finish entries and scatter with atomicAdd mirroring
                            let diagonal_block = blk.x == blk.y;
                            let mut entries = 0u64;
                            for r in 0..rows {
                                let i = i0 + r;
                                for c in 0..cols {
                                    let j = j0 + c;
                                    if diagonal_block && i < j {
                                        continue; // mirror covers the strict upper triangle
                                    }
                                    let k = if additive {
                                        acc[r * cols + c]
                                    } else {
                                        self.finish(acc[r * cols + c])
                                    };
                                    out_dev.add(i, k * v_dev.as_slice()[j]);
                                    if i != j {
                                        out_dev.add(j, k * v_dev.as_slice()[i]);
                                    }
                                    entries += 1;
                                }
                            }
                            ctx.add_flops(entries * (kernel_flops(&self.kernel, d) + 4));
                            ctx.add_global_read(
                                (((rows + cols) * d + rows + cols) * T::BYTES) as u64,
                            );
                            ctx.add_global_write((2 * entries as usize * T::BYTES) as u64);
                        })?;
                    }
                    SplitMode::Rows => {
                        // each device evaluates its own full output rows
                        // (no cross-device mirroring)
                        let r0 = part.row_begin.min(n);
                        let r1 = part.row_end.min(n);
                        if r0 >= r1 {
                            return Ok(out_dev.read_to_host());
                        }
                        let row_blocks = (r1 - r0).div_ceil(tile);
                        let col_blocks = n.div_ceil(tile);
                        let cfg = LaunchConfig::new(
                            "svm_kernel",
                            Grid::two_d(row_blocks, col_blocks),
                            self.precision,
                        );
                        dev.launch(&cfg, |blk, ctx| {
                            let i0 = r0 + blk.x * tile;
                            let i1 = (i0 + tile).min(r1);
                            let j0 = blk.y * tile;
                            let j1 = (j0 + tile).min(n);
                            if i0 >= i1 || j0 >= j1 {
                                return;
                            }
                            let rows = i1 - i0;
                            let cols = j1 - j0;
                            let mut acc = vec![T::ZERO; rows * cols];
                            accumulate_tile(buf, padded, d, chunk, mode, i0, i1, j0, j1, &mut acc);
                            for r in 0..rows {
                                let i = i0 + r;
                                for c in 0..cols {
                                    let j = j0 + c;
                                    let k = self.finish(acc[r * cols + c]);
                                    out_dev.add(i, k * v_dev.as_slice()[j]);
                                }
                            }
                            let entries = (rows * cols) as u64;
                            ctx.add_flops(entries * (kernel_flops(&self.kernel, d) + 2));
                            ctx.add_global_read(
                                (((rows + cols) * d + rows + cols) * T::BYTES) as u64,
                            );
                            ctx.add_global_write((entries as usize * T::BYTES) as u64);
                        })?;
                    }
                }
                Ok(out_dev.read_to_host())
            })?;

        out.fill(T::ZERO);
        for partial in &partials {
            for (o, p) in out.iter_mut().zip(partial) {
                *o += *p;
            }
        }
        // combining partials across nodes is one allreduce per iteration
        self.record_allreduce(n as u64 * T::BYTES as u64);
        // straggler detection only on clean passes: a failover re-runs the
        // pass and would distort the per-device time deltas
        if self.live_devices() == alive_before {
            self.detect_stragglers(&kernel_time_before)?;
        }
        Ok(())
    }
}

/// Streams the feature dimension of one `(i0..i1) × (j0..j1)` tile through
/// the simulated shared memory in `chunk`-sized passes, accumulating raw
/// inner products (`Dot`) or squared distances (`DistSq`) into `acc`
/// (row-major `rows × cols`). Shared by both multi-device split modes.
#[allow(clippy::too_many_arguments)]
fn accumulate_tile<T: AtomicScalar>(
    buf: &[T],
    padded: usize,
    d: usize,
    chunk: usize,
    mode: AccMode,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    acc: &mut [T],
) {
    let cols = j1 - j0;
    let mut f0 = 0;
    while f0 < d {
        let f1 = (f0 + chunk).min(d);
        for f in f0..f1 {
            let col = &buf[f * padded..(f + 1) * padded];
            let xi = &col[i0..i1];
            let xj = &col[j0..j1];
            match mode {
                AccMode::Dot => {
                    for (r, &a) in xi.iter().enumerate() {
                        let row = &mut acc[r * cols..(r + 1) * cols];
                        for (c, &b) in xj.iter().enumerate() {
                            row[c] = a.mul_add(b, row[c]);
                        }
                    }
                }
                AccMode::DistSq => {
                    for (r, &a) in xi.iter().enumerate() {
                        let row = &mut acc[r * cols..(r + 1) * cols];
                        for (c, &b) in xj.iter().enumerate() {
                            let diff = a - b;
                            row[c] = diff.mul_add(diff, row[c]);
                        }
                    }
                }
            }
        }
        f0 = f1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::serial::SerialBackend;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};
    use plssvm_simgpu::hw;

    fn sample(points: usize, features: usize) -> SoAMatrix<f64> {
        let d = generate_planes(&PlanesConfig::new(points, features, 13)).unwrap();
        SoAMatrix::from_dense(&d.x, TilingConfig::default().tile())
    }

    fn gpu(data: &SoAMatrix<f64>, kernel: KernelSpec<f64>, devices: usize) -> SimGpuBackend<f64> {
        SimGpuBackend::new(
            data,
            kernel,
            1.0,
            hw::A100,
            DeviceApi::Cuda,
            devices,
            TilingConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn q_vector_matches_host_computation() {
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 2,
                gamma: 0.4,
                coef0: 1.0,
            },
            KernelSpec::Rbf { gamma: 0.5 },
        ] {
            let data = sample(20, 6);
            let b = gpu(&data, kernel, 1);
            let host = QTildeParams::compute(&data, &kernel, 1.0);
            assert_eq!(b.params().dim(), host.dim());
            for i in 0..host.dim() {
                assert!(
                    (b.params().q[i] - host.q[i]).abs() < 1e-10,
                    "{kernel:?} q[{i}]"
                );
            }
            assert!((b.params().k_mm - host.k_mm).abs() < 1e-10);
        }
    }

    #[test]
    fn q_vector_multi_device_linear() {
        let data = sample(18, 7);
        let b = gpu(&data, KernelSpec::Linear, 3);
        assert_eq!(b.devices(), 3);
        let host = QTildeParams::compute(&data, &KernelSpec::Linear, 1.0);
        for i in 0..host.dim() {
            assert!((b.params().q[i] - host.q[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn matvec_matches_serial_all_kernels() {
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.25,
                coef0: 0.5,
            },
            KernelSpec::Rbf { gamma: 0.35 },
        ] {
            // 70 points spans multiple tiles with a partial last tile
            let data = sample(70, 5);
            let serial = SerialBackend::new(data.to_dense(), kernel, 1.0);
            let device = gpu(&data, kernel, 1);
            let n = serial.params().dim();
            let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).cos()).collect();
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            serial.kernel_matvec(&v, &mut a);
            device.kernel_matvec(&v, &mut b).unwrap();
            for i in 0..n {
                assert!(
                    (a[i] - b[i]).abs() < 1e-8,
                    "{kernel:?} row {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn matvec_multi_device_equals_single_device() {
        let data = sample(40, 10);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let mut single = vec![0.0; n];
        gpu(&data, KernelSpec::Linear, 1)
            .kernel_matvec(&v, &mut single)
            .unwrap();
        for devices in [2, 3, 4] {
            let mut multi = vec![0.0; n];
            gpu(&data, KernelSpec::Linear, devices)
                .kernel_matvec(&v, &mut multi)
                .unwrap();
            for i in 0..n {
                assert!(
                    (single[i] - multi[i]).abs() < 1e-9,
                    "{devices} devices, row {i}"
                );
            }
        }
    }

    #[test]
    fn multi_device_rejects_nonlinear() {
        let data = sample(10, 4);
        let err = SimGpuBackend::new(
            &data,
            KernelSpec::Rbf { gamma: 0.5 },
            1.0,
            hw::A100,
            DeviceApi::Cuda,
            2,
            TilingConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("linear"));
    }

    #[test]
    fn devices_clamped_to_feature_count() {
        let data = sample(10, 2);
        let b = gpu(&data, KernelSpec::Linear, 8);
        assert_eq!(b.devices(), 2);
    }

    #[test]
    fn kernel_launch_counts() {
        let data = sample(20, 4);
        let b = gpu(&data, KernelSpec::Linear, 1);
        let r0 = b.report();
        // setup runs exactly one q_kernel launch per device
        assert_eq!(r0.per_device[0].per_kernel["q_kernel"].launches, 1);
        let n = data.points() - 1;
        let v = vec![1.0; n];
        let mut out = vec![0.0; n];
        b.kernel_matvec(&v, &mut out).unwrap();
        b.kernel_matvec(&v, &mut out).unwrap();
        let r = b.report();
        assert_eq!(r.per_device[0].per_kernel["svm_kernel"].launches, 2);
        // distinct compute kernels stay small (the paper contrasts its 3
        // kernels against ThunderSVM's >1600 launches)
        assert_eq!(r.per_device[0].per_kernel.len(), 2);
        assert!(r.sim_parallel_time_s > 0.0);
    }

    #[test]
    fn memory_split_reduces_per_device_footprint() {
        let data = sample(64, 16);
        let single = gpu(&data, KernelSpec::Linear, 1);
        let quad = gpu(&data, KernelSpec::Linear, 4);
        let m1 = single.report().peak_memory_per_device_bytes;
        let m4 = quad.report().peak_memory_per_device_bytes;
        // the data dominates; a quarter of the features ≈ a quarter of the
        // footprint plus the shared vectors
        assert!(m4 < m1 / 2, "single {m1} vs quad {m4}");
    }

    #[test]
    fn tiling_variants_agree() {
        let data = sample(50, 6);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((3 * i + 1) as f64 * 0.11).sin()).collect();
        let mut reference = vec![0.0; n];
        gpu(&data, KernelSpec::Rbf { gamma: 0.2 }, 1)
            .kernel_matvec(&v, &mut reference)
            .unwrap();
        for tiling in [
            TilingConfig {
                thread_block: 4,
                internal_block: 2,
                feature_chunk: 3,
            },
            TilingConfig {
                thread_block: 1,
                internal_block: 1,
                feature_chunk: 1,
            },
            TilingConfig {
                thread_block: 128,
                internal_block: 2,
                feature_chunk: 1024,
            },
        ] {
            let b = SimGpuBackend::new(
                &data,
                KernelSpec::Rbf { gamma: 0.2 },
                1.0,
                hw::A100,
                DeviceApi::Cuda,
                1,
                tiling,
            )
            .unwrap();
            let mut out = vec![0.0; n];
            b.kernel_matvec(&v, &mut out).unwrap();
            for i in 0..n {
                assert!((out[i] - reference[i]).abs() < 1e-9, "{tiling:?} row {i}");
            }
        }
    }

    #[test]
    fn invalid_tiling_rejected() {
        let data = sample(10, 4);
        let err = SimGpuBackend::new(
            &data,
            KernelSpec::Linear,
            1.0,
            hw::A100,
            DeviceApi::Cuda,
            1,
            TilingConfig {
                thread_block: 0,
                internal_block: 4,
                feature_chunk: 64,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("tiling"));
    }

    #[test]
    fn cluster_matches_single_device_results() {
        use plssvm_simgpu::{Interconnect, NodeConfig};
        let data = sample(48, 12);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.19).sin()).collect();
        let mut single = vec![0.0; n];
        gpu(&data, KernelSpec::Linear, 1)
            .kernel_matvec(&v, &mut single)
            .unwrap();

        let cluster = SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[
                NodeConfig::homogeneous(hw::A100, DeviceApi::Cuda, 2),
                NodeConfig::homogeneous(hw::V100, DeviceApi::Cuda, 2),
            ],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            true,
        )
        .unwrap();
        assert_eq!(cluster.devices(), 4);
        assert_eq!(cluster.nodes(), 2);
        assert_eq!(cluster.node_of(0), 0);
        assert_eq!(cluster.node_of(3), 1);
        let mut multi = vec![0.0; n];
        cluster.kernel_matvec(&v, &mut multi).unwrap();
        for i in 0..n {
            assert!((single[i] - multi[i]).abs() < 1e-9, "row {i}");
        }
        // q vector also agrees with the host computation
        let host = QTildeParams::compute(&data, &KernelSpec::Linear, 1.0);
        for i in 0..n {
            assert!((cluster.params().q[i] - host.q[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cluster_balanced_split_favours_fast_devices() {
        use plssvm_simgpu::{Interconnect, NodeConfig};
        let data = sample(20, 16);
        let cluster = SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[NodeConfig {
                devices: vec![(hw::A100, DeviceApi::Cuda), (hw::P100, DeviceApi::Cuda)],
            }],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            true,
        )
        .unwrap();
        let split = cluster.feature_split();
        // A100 at 32% of 9.7 TF vs P100 at 32% of 4.7 TF → ~2:1 feature share
        assert!(split[0] > split[1], "{split:?}");
        assert_eq!(split[0] + split[1], 16);

        // unbalanced split is even
        let even = SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[NodeConfig {
                devices: vec![(hw::A100, DeviceApi::Cuda), (hw::P100, DeviceApi::Cuda)],
            }],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            false,
        )
        .unwrap();
        assert_eq!(even.feature_split(), vec![8, 8]);
    }

    #[test]
    fn cluster_network_time_accounted() {
        use plssvm_simgpu::{Interconnect, NodeConfig};
        let data = sample(32, 8);
        let cluster = SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[
                NodeConfig::homogeneous(hw::A100, DeviceApi::Cuda, 1),
                NodeConfig::homogeneous(hw::A100, DeviceApi::Cuda, 1),
            ],
            Interconnect::TEN_GBE,
            TilingConfig::default(),
            false,
        )
        .unwrap();
        let n = data.points() - 1;
        let v = vec![1.0; n];
        let mut out = vec![0.0; n];
        cluster.kernel_matvec(&v, &mut out).unwrap();
        cluster.kernel_matvec(&v, &mut out).unwrap();
        let report = cluster.report();
        assert_eq!(report.nodes, 2);
        // q combine + 2 matvec combines = 3 collectives
        assert_eq!(report.network_collectives, 3);
        assert!(report.network_time_s > 0.0);
        assert!(report.total_sim_time_s() > report.sim_parallel_time_s);

        // single-node multi-GPU has no network term
        let single_node = gpu(&data, KernelSpec::Linear, 2);
        let mut out2 = vec![0.0; n];
        single_node.kernel_matvec(&v, &mut out2).unwrap();
        let r = single_node.report();
        assert_eq!(r.nodes, 1);
        assert_eq!(r.network_collectives, 0);
        assert_eq!(r.network_time_s, 0.0);
    }

    #[test]
    fn cluster_rejects_nonlinear_and_empty() {
        use plssvm_simgpu::{Interconnect, NodeConfig};
        let data = sample(10, 4);
        assert!(SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Rbf { gamma: 0.5 },
            1.0,
            &[NodeConfig::homogeneous(hw::A100, DeviceApi::Cuda, 2)],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            true,
        )
        .is_err());
        assert!(SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            true,
        )
        .is_err());
        // more devices than features
        assert!(SimGpuBackend::new_cluster(
            &data,
            KernelSpec::Linear,
            1.0,
            &[NodeConfig::homogeneous(hw::A100, DeviceApi::Cuda, 8)],
            Interconnect::HDR_INFINIBAND,
            TilingConfig::default(),
            true,
        )
        .is_err());
    }

    #[test]
    fn row_split_matches_single_device_for_all_kernels() {
        // the extension past the paper: multi-GPU for every kernel via
        // output-row partitioning (data replicated)
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 2,
                gamma: 0.4,
                coef0: 0.5,
            },
            KernelSpec::Rbf { gamma: 0.3 },
            KernelSpec::Sigmoid {
                gamma: 0.05,
                coef0: 0.0,
            },
        ] {
            let data = sample(70, 6);
            let n = data.points() - 1;
            let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.27).sin()).collect();
            let mut single = vec![0.0; n];
            gpu(&data, kernel, 1)
                .kernel_matvec(&v, &mut single)
                .unwrap();
            for devices in [2usize, 3] {
                let b = SimGpuBackend::new_row_split(
                    &data,
                    kernel,
                    1.0,
                    hw::A100,
                    DeviceApi::Cuda,
                    devices,
                    TilingConfig::default(),
                )
                .unwrap();
                assert_eq!(b.devices(), devices);
                // q vector matches the host computation
                let host = QTildeParams::compute(&data, &kernel, 1.0);
                for i in 0..n {
                    assert!(
                        (b.params().q[i] - host.q[i]).abs() < 1e-10,
                        "{kernel:?} q[{i}]"
                    );
                }
                let mut multi = vec![0.0; n];
                b.kernel_matvec(&v, &mut multi).unwrap();
                for i in 0..n {
                    assert!(
                        (single[i] - multi[i]).abs() < 1e-9,
                        "{kernel:?} {devices} devices row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_split_replicates_memory_but_splits_rows() {
        let data = sample(64, 16);
        let feature_split = gpu(&data, KernelSpec::Linear, 4);
        let row_split = SimGpuBackend::new_row_split(
            &data,
            KernelSpec::Rbf { gamma: 0.2 },
            1.0,
            hw::A100,
            DeviceApi::Cuda,
            4,
            TilingConfig::default(),
        )
        .unwrap();
        // feature split shrinks the per-device data; row split replicates
        let fm = feature_split.report().peak_memory_per_device_bytes;
        let rm = row_split.report().peak_memory_per_device_bytes;
        assert!(rm > 2 * fm, "row-split {rm} vs feature-split {fm}");
        // every device did real work (launch counters)
        let n = data.points() - 1;
        let v = vec![1.0; n];
        let mut out = vec![0.0; n];
        row_split.kernel_matvec(&v, &mut out).unwrap();
        for dev in &row_split.report().per_device {
            assert!(dev.per_kernel["svm_kernel"].flops > 0);
        }
    }

    #[test]
    fn transient_fault_is_retried_transparently() {
        let data = sample(40, 8);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).sin()).collect();
        let mut clean = vec![0.0; n];
        gpu(&data, KernelSpec::Linear, 2)
            .kernel_matvec(&v, &mut clean)
            .unwrap();

        let b = gpu(&data, KernelSpec::Linear, 2);
        // two consecutive timeouts on device 1's second matvec launch
        b.install_fault_plan(&FaultPlan::new().transient(1, 1, 2))
            .unwrap();
        let mut out = vec![0.0; n];
        b.kernel_matvec(&v, &mut out).unwrap();
        b.kernel_matvec(&v, &mut out).unwrap();
        // bit-identical: the retried launch reruns the exact computation
        assert_eq!(out, clean);
        assert_eq!(b.live_devices(), 2);
        let events = b.drain_recovery_events();
        let retries: Vec<_> = events
            .iter()
            .filter(|e| e.kind == RecoveryKind::Retry)
            .collect();
        assert_eq!(retries.len(), 2, "{events:?}");
        assert!(retries.iter().all(|e| e.device == Some(1)));
        assert!(b.drain_recovery_events().is_empty(), "drain empties queue");
    }

    #[test]
    fn fail_stop_redistributes_shard_over_survivors() {
        let data = sample(48, 12);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.23).cos()).collect();
        let mut clean = vec![0.0; n];
        gpu(&data, KernelSpec::Linear, 4)
            .kernel_matvec(&v, &mut clean)
            .unwrap();

        let b = gpu(&data, KernelSpec::Linear, 4);
        b.install_fault_plan(&FaultPlan::new().fail_stop(1, 2))
            .unwrap();
        let mut out = vec![0.0; n];
        for _ in 0..4 {
            b.kernel_matvec(&v, &mut out).unwrap();
            for i in 0..n {
                assert!((out[i] - clean[i]).abs() < 1e-9, "row {i}");
            }
        }
        assert_eq!(b.live_devices(), 3);
        let events = b.drain_recovery_events();
        let failovers: Vec<_> = events
            .iter()
            .filter(|e| e.kind == RecoveryKind::Failover)
            .collect();
        assert_eq!(failovers.len(), 1, "{events:?}");
        assert_eq!(failovers[0].device, Some(1));
        assert_eq!(failovers[0].at_launch, Some(2));
        // the w kernel also runs on the reduced device set
        let alpha = vec![1.0; n + 1];
        let w = b.compute_w(&alpha).unwrap();
        let w_clean = gpu(&data, KernelSpec::Linear, 1).compute_w(&alpha).unwrap();
        assert_eq!(w.len(), w_clean.len());
        for f in 0..w.len() {
            assert!((w[f] - w_clean[f]).abs() < 1e-9, "w[{f}]");
        }
    }

    #[test]
    fn row_split_fail_stop_reassigns_rows_without_transfer() {
        let data = sample(60, 6);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).sin()).collect();
        let kernel = KernelSpec::Rbf { gamma: 0.3 };
        let mut clean = vec![0.0; n];
        gpu(&data, kernel, 1).kernel_matvec(&v, &mut clean).unwrap();

        let b = SimGpuBackend::new_row_split(
            &data,
            kernel,
            1.0,
            hw::A100,
            DeviceApi::Cuda,
            3,
            TilingConfig::default(),
        )
        .unwrap();
        b.install_fault_plan(&FaultPlan::new().fail_stop(2, 1))
            .unwrap();
        let mut out = vec![0.0; n];
        for _ in 0..3 {
            b.kernel_matvec(&v, &mut out).unwrap();
            for i in 0..n {
                assert!((out[i] - clean[i]).abs() < 1e-9, "row {i}");
            }
        }
        assert_eq!(b.live_devices(), 2);
        assert!(b
            .drain_recovery_events()
            .iter()
            .any(|e| e.kind == RecoveryKind::Failover && e.device == Some(2)));
    }

    #[test]
    fn losing_every_device_is_an_error_not_a_hang() {
        let data = sample(16, 4);
        let n = data.points() - 1;
        let b = gpu(&data, KernelSpec::Linear, 2);
        b.install_fault_plan(&FaultPlan::new().fail_stop(0, 0).fail_stop(1, 0))
            .unwrap();
        let v = vec![1.0; n];
        let mut out = vec![0.0; n];
        let err = b.kernel_matvec(&v, &mut out).unwrap_err();
        assert!(err.to_string().contains("no survivor"), "{err}");
        assert_eq!(b.live_devices(), 0);
    }

    #[test]
    fn exhausted_transient_retries_escalate_to_failover() {
        let data = sample(20, 6);
        let n = data.points() - 1;
        let b = gpu(&data, KernelSpec::Linear, 2);
        // more consecutive timeouts than the retry budget allows
        b.install_fault_plan(&FaultPlan::new().transient(1, 0, 100))
            .unwrap();
        let v = vec![1.0; n];
        let mut out = vec![0.0; n];
        b.kernel_matvec(&v, &mut out).unwrap();
        assert_eq!(b.live_devices(), 1);
        let events = b.drain_recovery_events();
        assert!(events.iter().any(|e| e.kind == RecoveryKind::Failover));
        assert!(
            events
                .iter()
                .filter(|e| e.kind == RecoveryKind::Retry)
                .count()
                >= MAX_TRANSIENT_RETRIES as usize
        );
    }

    #[test]
    fn slow_device_is_detected_and_rebalanced_as_straggler() {
        let data = sample(40, 32);
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.41).cos()).collect();
        let mut clean = vec![0.0; n];
        gpu(&data, KernelSpec::Linear, 2)
            .kernel_matvec(&v, &mut clean)
            .unwrap();

        let b = gpu(&data, KernelSpec::Linear, 2);
        b.install_fault_plan(&FaultPlan::new().slow(1, 0, 8.0))
            .unwrap();
        let before = b.feature_split();
        assert_eq!(before, vec![16, 16]);
        let mut out = vec![0.0; n];
        b.kernel_matvec(&v, &mut out).unwrap();
        let events = b.drain_recovery_events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == RecoveryKind::Straggler && e.device == Some(1)),
            "{events:?}"
        );
        let after = b.feature_split();
        assert!(after[1] < after[0], "straggler kept {after:?}");
        assert_eq!(after[0] + after[1], 32);
        // the rebalanced split still computes the same matvec
        b.kernel_matvec(&v, &mut out).unwrap();
        for i in 0..n {
            assert!((out[i] - clean[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn fault_plan_addressing_missing_device_is_rejected() {
        let data = sample(10, 4);
        let b = gpu(&data, KernelSpec::Linear, 2);
        let err = b
            .install_fault_plan(&FaultPlan::new().fail_stop(5, 0))
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn unsupported_api_hardware_combination() {
        let data = sample(10, 4);
        let err = SimGpuBackend::new(
            &data,
            KernelSpec::Linear,
            1.0,
            hw::RADEON_VII,
            DeviceApi::Cuda,
            1,
            TilingConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("cannot drive"));
    }
}
