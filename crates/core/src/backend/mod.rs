//! Interchangeable execution backends (§III).
//!
//! The paper implements the expensive implicit matrix–vector product with
//! four frameworks — OpenMP, CUDA, OpenCL, SYCL — selectable at runtime.
//! This reproduction mirrors that architecture:
//!
//! * [`serial`] — a single-threaded reference implementation (ground truth
//!   for tests),
//! * [`parallel`] — the "OpenMP" CPU backend: multi-threaded via a rayon
//!   pool with a configurable thread count (used for the paper's many-core
//!   scaling study, Fig. 4a). Runs on the blocked, register-tiled matvec
//!   engine of [`cpu_blocked`] with symmetry exploitation, so it performs
//!   the same `n(n+1)/2` kernel evaluations as the serial reference,
//! * [`simgpu`] — the device backend: the paper's tiled GPU kernels
//!   (blocking, `q⃗` caching, block-level/thread-level tiling, triangular
//!   scheduling with atomic mirroring, §III-C) executed on the simulated
//!   GPGPU devices of `plssvm-simgpu`, standing in for CUDA, OpenCL and
//!   SYCL. Supports multi-device execution for the linear kernel via the
//!   feature-wise split of §III-C-5.
//!
//! All backends produce the *same numbers* (up to floating point
//! reassociation); they differ in how the work is executed and what gets
//! counted.

pub mod cpu_blocked;
pub mod parallel;
pub mod serial;
pub mod simgpu;
pub mod sparse;

pub use cpu_blocked::CpuTilingConfig;

use std::sync::Arc;

use plssvm_data::dense::{DenseMatrix, SoAMatrix};
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::device::AtomicScalar;
use plssvm_simgpu::{Backend as DeviceApi, FaultPlan, GpuSpec, PerfReport};

use crate::cg::LinOp;
use crate::error::SvmError;
use crate::kernel::kernel_flops;
use crate::matrix_free::QTildeParams;
use crate::trace::{MetricsSink, RecoveryKind, RecoverySample};

/// Runtime backend selection (the paper's `--backend` switch).
#[derive(Debug, Clone)]
pub enum BackendSelection {
    /// Single-threaded reference CPU implementation.
    Serial,
    /// Multi-threaded CPU backend ("OpenMP"). `threads = None` uses all
    /// available cores.
    OpenMp {
        /// Number of worker threads; `None` = all logical cores.
        threads: Option<usize>,
        /// Cache-tile sizes and schedule of the blocked matvec engine.
        tiling: CpuTilingConfig,
    },
    /// Sparse (CSR) CPU backend — the §V "sparse data structures for the
    /// CG solver" extension. `threads = None` uses all available cores.
    SparseCpu {
        /// Number of worker threads; `None` = all logical cores.
        threads: Option<usize>,
    },
    /// Simulated device backend (stands in for CUDA/OpenCL/SYCL).
    SimGpu {
        /// Hardware model from the `plssvm_simgpu::hw` catalog.
        hardware: GpuSpec,
        /// Which device API's efficiency profile to simulate.
        api: DeviceApi,
        /// Number of devices (multi-GPU only for the linear kernel).
        devices: usize,
        /// Tiling configuration of the device kernels.
        tiling: simgpu::TilingConfig,
    },
    /// Simulated multi-device backend with the **row-split** extension:
    /// data replicated per device, output rows partitioned — works for
    /// *every* kernel function, lifting the paper's linear-only multi-GPU
    /// restriction at the cost of full per-device memory.
    SimGpuRows {
        /// Hardware model from the `plssvm_simgpu::hw` catalog.
        hardware: GpuSpec,
        /// Which device API's efficiency profile to simulate.
        api: DeviceApi,
        /// Number of devices.
        devices: usize,
        /// Tiling configuration of the device kernels.
        tiling: simgpu::TilingConfig,
    },
    /// Simulated **multi-node** cluster of (possibly heterogeneous)
    /// devices — the paper's §V long-term goal. Linear kernel only.
    SimCluster {
        /// The nodes with their devices.
        nodes: Vec<plssvm_simgpu::NodeConfig>,
        /// The inter-node network model.
        interconnect: plssvm_simgpu::Interconnect,
        /// Tiling configuration of the device kernels.
        tiling: simgpu::TilingConfig,
        /// Weight the feature split by device throughput (heterogeneous
        /// load balancing) instead of splitting evenly.
        balance: bool,
    },
}

impl Default for BackendSelection {
    fn default() -> Self {
        BackendSelection::openmp(None)
    }
}

impl BackendSelection {
    /// The "OpenMP" CPU backend with default tiling.
    pub fn openmp(threads: Option<usize>) -> Self {
        BackendSelection::OpenMp {
            threads,
            tiling: CpuTilingConfig::default(),
        }
    }

    /// A single simulated device with default tiling — the configuration
    /// of the paper's single-GPU experiments (A100 + CUDA).
    pub fn sim_gpu(hardware: GpuSpec, api: DeviceApi) -> Self {
        BackendSelection::SimGpu {
            hardware,
            api,
            devices: 1,
            tiling: simgpu::TilingConfig::default(),
        }
    }

    /// `n` simulated devices with default tiling (linear kernel only).
    pub fn sim_multi_gpu(hardware: GpuSpec, api: DeviceApi, devices: usize) -> Self {
        BackendSelection::SimGpu {
            hardware,
            api,
            devices,
            tiling: simgpu::TilingConfig::default(),
        }
    }

    /// `n` simulated devices in **row-split** mode (any kernel; data
    /// replicated per device).
    pub fn sim_multi_gpu_rows(hardware: GpuSpec, api: DeviceApi, devices: usize) -> Self {
        BackendSelection::SimGpuRows {
            hardware,
            api,
            devices,
            tiling: simgpu::TilingConfig::default(),
        }
    }

    /// A multi-node cluster with default tiling and throughput-balanced
    /// feature split.
    pub fn sim_cluster(
        nodes: Vec<plssvm_simgpu::NodeConfig>,
        interconnect: plssvm_simgpu::Interconnect,
    ) -> Self {
        BackendSelection::SimCluster {
            nodes,
            interconnect,
            tiling: simgpu::TilingConfig::default(),
            balance: true,
        }
    }

    /// Human-readable backend name for reports.
    pub fn name(&self) -> String {
        match self {
            BackendSelection::Serial => "serial".to_owned(),
            BackendSelection::OpenMp { threads: None, .. } => "openmp".to_owned(),
            BackendSelection::OpenMp {
                threads: Some(t), ..
            } => format!("openmp[{t}]"),
            BackendSelection::SparseCpu { threads: None } => "sparse".to_owned(),
            BackendSelection::SparseCpu { threads: Some(t) } => format!("sparse[{t}]"),
            BackendSelection::SimGpu {
                hardware,
                api,
                devices,
                ..
            } => format!("{} on {}x {}", api.name(), devices, hardware.name),
            BackendSelection::SimGpuRows {
                hardware,
                api,
                devices,
                ..
            } => format!(
                "{} on {}x {} (row split)",
                api.name(),
                devices,
                hardware.name
            ),
            BackendSelection::SimCluster { nodes, .. } => {
                let total: usize = nodes.iter().map(|n| n.devices.len()).sum();
                format!("cluster of {} nodes / {} devices", nodes.len(), total)
            }
        }
    }
}

/// Counters collected by a device backend during one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Per-device performance snapshots.
    pub per_device: Vec<PerfReport>,
    /// Simulated wall-clock assuming devices run concurrently (max over
    /// devices of kernels + transfers), in seconds.
    pub sim_parallel_time_s: f64,
    /// Largest per-device peak memory in bytes.
    pub peak_memory_per_device_bytes: usize,
    /// Number of cluster nodes the devices are spread over (1 =
    /// single-node, the paper's configuration).
    pub nodes: usize,
    /// Simulated seconds spent in inter-node allreduces (0 single-node).
    pub network_time_s: f64,
    /// Number of inter-node collectives performed.
    pub network_collectives: usize,
}

impl DeviceReport {
    /// Device time plus network time — the simulated wall-clock of a
    /// multi-node run.
    pub fn total_sim_time_s(&self) -> f64 {
        self.sim_parallel_time_s + self.network_time_s
    }

    /// Folds the per-device kernel counters into the unified metrics
    /// schema of [`crate::trace`]: launches, FLOPs, bytes and simulated
    /// time are summed across devices under each kernel's name. This is
    /// how the device backend's private bookkeeping joins the
    /// [`MetricsSink`] counters the CPU backends record directly.
    pub fn fold_into(&self, sink: &dyn MetricsSink) {
        for dev in &self.per_device {
            for (name, k) in &dev.per_kernel {
                sink.record_launch(name, k.launches, k.flops, k.global_bytes, k.sim_time_s);
            }
        }
    }
}

/// A backend that has been set up for a specific training set: data is
/// uploaded (device backends) and the `q⃗` cache is computed.
///
/// Implements [`LinOp`] as the full `Q̃` operator: the backend computes the
/// heavy kernel-matrix part, [`QTildeParams`] folds in the diagonal and
/// rank-one corrections.
pub struct Prepared<T: AtomicScalar> {
    imp: PreparedImpl<T>,
    params: QTildeParams<T>,
    kernel: KernelSpec<T>,
    points: usize,
    features: usize,
    metrics: Option<Arc<dyn MetricsSink>>,
    /// First-occurrence latch for the matvec finiteness guard: one
    /// `numeric_fault` recovery event per solve, not one per poisoned
    /// iteration.
    numeric_fault_reported: std::sync::atomic::AtomicBool,
}

enum PreparedImpl<T: AtomicScalar> {
    Serial(serial::SerialBackend<T>),
    Parallel(parallel::ParallelBackend<T>),
    Sparse(sparse::SparseBackend<T>),
    SimGpu(simgpu::SimGpuBackend<T>),
}

impl<T: AtomicScalar> std::fmt::Debug for Prepared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let variant = match &self.imp {
            PreparedImpl::Serial(_) => "serial",
            PreparedImpl::Parallel(_) => "openmp",
            PreparedImpl::Sparse(_) => "sparse",
            PreparedImpl::SimGpu(_) => "simgpu",
        };
        f.debug_struct("Prepared")
            .field("backend", &variant)
            .field("dim", &self.params.dim())
            .finish()
    }
}

impl<T: AtomicScalar> Prepared<T> {
    /// Sets up the selected backend for the training data.
    ///
    /// The CPU backends consume the row-major `dense` matrix directly (the
    /// paper's SoA transform is applied only for the device backends,
    /// §IV-E). For the device backend, pass the padded SoA transform in
    /// `soa` (so its cost can be attributed to the `transform` component);
    /// when `None`, the transform runs here. `cost` is the LS-SVM
    /// weighting constant `C`.
    pub fn new(
        selection: &BackendSelection,
        dense: &DenseMatrix<T>,
        soa: Option<&SoAMatrix<T>>,
        kernel: &KernelSpec<T>,
        cost: T,
    ) -> Result<Self, SvmError> {
        kernel.validate()?;
        if dense.rows() < 2 {
            return Err(SvmError::Solver(
                "training needs at least two data points".into(),
            ));
        }
        // Reject zero-feature data here rather than letting `default_gamma`
        // silently clamp `num_features = 0` to 1 downstream.
        if dense.cols() == 0 {
            return Err(SvmError::Solver(
                "training data has zero features; every point needs at \
                 least one feature"
                    .into(),
            ));
        }
        // the negated comparison deliberately rejects NaN as well
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(cost.to_f64() > 0.0) {
            return Err(SvmError::Solver(format!(
                "the cost parameter C must be positive, got {cost}"
            )));
        }
        let (imp, params) = match selection {
            BackendSelection::Serial => {
                let b = serial::SerialBackend::new(dense.clone(), *kernel, cost);
                let params = b.params().clone();
                (PreparedImpl::Serial(b), params)
            }
            BackendSelection::OpenMp { threads, tiling } => {
                let b = parallel::ParallelBackend::new(
                    dense.clone(),
                    *kernel,
                    cost,
                    *threads,
                    *tiling,
                )?;
                let params = b.params().clone();
                (PreparedImpl::Parallel(b), params)
            }
            BackendSelection::SparseCpu { threads } => {
                let b = sparse::SparseBackend::new(dense, *kernel, cost, *threads)?;
                let params = b.params().clone();
                (PreparedImpl::Sparse(b), params)
            }
            BackendSelection::SimGpu {
                hardware,
                api,
                devices,
                tiling,
            } => {
                let owned;
                let soa = match soa {
                    Some(s) => s,
                    None => {
                        owned = SoAMatrix::from_dense(dense, tiling.tile());
                        &owned
                    }
                };
                let b = simgpu::SimGpuBackend::new(
                    soa,
                    *kernel,
                    cost,
                    hardware.clone(),
                    *api,
                    *devices,
                    *tiling,
                )?;
                let params = b.params().clone();
                (PreparedImpl::SimGpu(b), params)
            }
            BackendSelection::SimGpuRows {
                hardware,
                api,
                devices,
                tiling,
            } => {
                let owned;
                let soa = match soa {
                    Some(s) => s,
                    None => {
                        owned = SoAMatrix::from_dense(dense, tiling.tile());
                        &owned
                    }
                };
                let b = simgpu::SimGpuBackend::new_row_split(
                    soa,
                    *kernel,
                    cost,
                    hardware.clone(),
                    *api,
                    *devices,
                    *tiling,
                )?;
                let params = b.params().clone();
                (PreparedImpl::SimGpu(b), params)
            }
            BackendSelection::SimCluster {
                nodes,
                interconnect,
                tiling,
                balance,
            } => {
                let owned;
                let soa = match soa {
                    Some(s) => s,
                    None => {
                        owned = SoAMatrix::from_dense(dense, tiling.tile());
                        &owned
                    }
                };
                let b = simgpu::SimGpuBackend::new_cluster(
                    soa,
                    *kernel,
                    cost,
                    nodes,
                    *interconnect,
                    *tiling,
                    *balance,
                )?;
                let params = b.params().clone();
                (PreparedImpl::SimGpu(b), params)
            }
        };
        Ok(Self {
            imp,
            params,
            kernel: *kernel,
            points: dense.rows(),
            features: dense.cols(),
            metrics: None,
            numeric_fault_reported: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The shared `Q̃` parameters (cached `q⃗`, `k_mm`, `1/C`).
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// Attaches a [`MetricsSink`]: from now on every implicit matvec
    /// reports one `svm_kernel` launch and [`Prepared::compute_linear_w`]
    /// one `w_kernel` launch.
    ///
    /// The CPU backends record the *logical* cost of each launch (every
    /// `K·v` entry evaluated once — see [`crate::trace`] for the counting
    /// convention), so this call also retroactively records the one
    /// `q_kernel` setup launch they performed in [`Prepared::new`]. On top
    /// of the logical counters they report the *physical* kernel
    /// evaluations each matvec actually performs (which the symmetric
    /// schedules halve) through
    /// [`MetricsSink::record_kernel_evals`]. The device backend counts its
    /// real tiled launches on-device instead; fold them in at the end of a
    /// run with [`DeviceReport::fold_into`].
    pub fn set_metrics(&mut self, sink: Arc<dyn MetricsSink>) {
        if self.is_cpu() {
            let (flops, bytes) = self.q_kernel_cost();
            sink.record_launch("q_kernel", 1, flops, bytes, 0.0);
        }
        if let Some(isa) = self.isa() {
            // "forced" only when the env override is what produced this
            // tier — a tier pinned programmatically (with_isa) is not
            let forced = matches!(
                crate::simd::Isa::forced(),
                Ok(Some(f)) if f.clamp_supported() == isa
            );
            sink.record_dispatch(crate::trace::DispatchSample {
                isa: isa.name(),
                forced,
                panel_mr: crate::kernel::PANEL_MR,
                panel_nr: crate::kernel::PANEL_NR,
                lanes_f32: isa.lanes_f32(),
                lanes_f64: isa.lanes_f64(),
            });
        }
        self.metrics = Some(sink);
    }

    fn is_cpu(&self) -> bool {
        !matches!(self.imp, PreparedImpl::SimGpu(_))
    }

    /// The SIMD ISA tier the blocked panel engine dispatches to, resolved
    /// once at construction and cached for the backend's lifetime. `None`
    /// for backends that do not run the panel micro-kernels (the sparse
    /// row sweep and the simulated devices).
    pub fn isa(&self) -> Option<crate::simd::Isa> {
        match &self.imp {
            PreparedImpl::Serial(b) => Some(b.isa()),
            PreparedImpl::Parallel(b) => Some(b.isa()),
            PreparedImpl::Sparse(_) | PreparedImpl::SimGpu(_) => None,
        }
    }

    /// *Physical* kernel evaluations one matvec performs on this backend:
    /// `n(n+1)/2` for the symmetric CPU schedules, `n²` for the full row
    /// sweep of the sparse backend. Device backends count their own tiled
    /// launches instead (see [`DeviceReport`]).
    fn matvec_evals(&self) -> Option<u128> {
        let n = self.params.dim() as u128;
        match &self.imp {
            PreparedImpl::Serial(_) => Some(n * (n + 1) / 2),
            PreparedImpl::Parallel(b) => Some(b.matvec_evals()),
            PreparedImpl::Sparse(_) => Some(n * n),
            PreparedImpl::SimGpu(_) => None,
        }
    }

    /// Logical cost of the `q⃗` setup pass: `m` kernel evaluations
    /// `q_i = k(x_i, x_m)` over all `m` rows (`k_mm` is row `m` itself) —
    /// the same accounting the device's `q_kernel` reports.
    fn q_kernel_cost(&self) -> (u128, u128) {
        let m = self.points as u128;
        let d = self.features as u128;
        let scalar = std::mem::size_of::<T>() as u128;
        let flops = m * u128::from(kernel_flops(&self.kernel, self.features));
        let bytes = (m + 1) * d * scalar + m * scalar;
        (flops, bytes)
    }

    /// Logical cost of one implicit `K·v` matvec: `n²` kernel evaluations
    /// plus one fused multiply–add per entry, reading the data and `v`
    /// once and writing `out` once.
    fn matvec_cost(&self) -> (u128, u128) {
        let n = self.params.dim() as u128;
        let d = self.features as u128;
        let scalar = std::mem::size_of::<T>() as u128;
        let flops = n * n * (u128::from(kernel_flops(&self.kernel, self.features)) + 2);
        let bytes = (n * d + 2 * n) * scalar;
        (flops, bytes)
    }

    /// Logical cost of `w = Σᵢ αᵢ·xᵢ`: one fused multiply–add per matrix
    /// entry, reading the data and `α` once and writing `w` once.
    fn w_kernel_cost(&self) -> (u128, u128) {
        let m = self.points as u128;
        let d = self.features as u128;
        let scalar = std::mem::size_of::<T>() as u128;
        (2 * m * d, (m * d + m + d) * scalar)
    }

    /// Installs per-sample weights (weighted LS-SVM, Suykens et al. \[25\]):
    /// only the host-side diagonal corrections change, so every backend —
    /// including the device ones — supports weighting without re-uploading
    /// anything.
    pub fn set_sample_weights(&mut self, weights: &[T], cost: T) -> Result<(), SvmError> {
        self.params
            .set_sample_weights(weights, cost)
            .map_err(SvmError::Solver)
    }

    /// Computes the explicit normal vector `w = Σᵢ αᵢ·xᵢ` (Eq. 15) for the
    /// **linear kernel** on every backend. On the device backend this
    /// launches the paper's third compute kernel (`w_kernel`); the CPU
    /// backends accumulate on the host (the sparse backend over its CSR
    /// rows). `alpha` must hold all `m` support values. Not meaningful for
    /// nonlinear kernels (their `w` lives in feature space) — the caller
    /// gates on the kernel kind.
    pub fn compute_linear_w(&self, alpha: &[T]) -> Result<Option<Vec<T>>, SvmError> {
        let w = match &self.imp {
            PreparedImpl::SimGpu(b) => b.compute_w(alpha).map(Some),
            PreparedImpl::Serial(b) => Ok(Some(host_linear_w(b.data(), alpha))),
            PreparedImpl::Parallel(b) => Ok(Some(host_linear_w(b.data(), alpha))),
            PreparedImpl::Sparse(b) => Ok(Some(b.linear_w(alpha))),
        };
        if w.is_ok() && self.is_cpu() {
            if let Some(sink) = &self.metrics {
                let (flops, bytes) = self.w_kernel_cost();
                sink.record_launch("w_kernel", 1, flops, bytes, 0.0);
            }
        }
        self.drain_recovery();
        w
    }

    /// Device counters, if this is a device backend. Also drains any
    /// pending recovery events into the attached metrics sink.
    pub fn device_report(&self) -> Option<DeviceReport> {
        self.drain_recovery();
        match &self.imp {
            PreparedImpl::SimGpu(b) => Some(b.report()),
            _ => None,
        }
    }

    /// Installs a deterministic [`FaultPlan`] on the simulated devices:
    /// subsequent launches are gated by the plan and the recovery policy
    /// (retry-with-backoff, fail-stop shard redistribution, straggler
    /// rebalancing) engages. Errors on CPU backends — fault injection is a
    /// device-backend concept.
    pub fn install_fault_plan(&self, plan: &FaultPlan) -> Result<(), SvmError> {
        match &self.imp {
            PreparedImpl::SimGpu(b) => b.install_fault_plan(plan),
            _ => Err(SvmError::Solver(
                "fault injection requires a simulated device backend \
                 (simgpu, simgpu-rows or cluster)"
                    .into(),
            )),
        }
    }

    /// Number of devices that have not fail-stopped (CPU backends report
    /// their single host "device").
    pub fn live_devices(&self) -> usize {
        match &self.imp {
            PreparedImpl::SimGpu(b) => b.live_devices(),
            _ => 1,
        }
    }

    /// Moves recovery events accumulated by the device backend into the
    /// attached metrics sink (no-op without a sink or on CPU backends;
    /// events stay queued on the backend until a sink is available).
    fn drain_recovery(&self) {
        if let (PreparedImpl::SimGpu(b), Some(sink)) = (&self.imp, &self.metrics) {
            for sample in b.drain_recovery_events() {
                sink.record_recovery(sample);
            }
        }
    }
}

/// Host-side `w = Σᵢ αᵢ·xᵢ` over row-major data.
fn host_linear_w<T: plssvm_data::Real>(data: &DenseMatrix<T>, alpha: &[T]) -> Vec<T> {
    let mut w = vec![T::ZERO; data.cols()];
    for (p, &a) in alpha.iter().enumerate() {
        for (f, &x) in data.row(p).iter().enumerate() {
            w[f] = a.mul_add(x, w[f]);
        }
    }
    w
}

impl<T: AtomicScalar> LinOp<T> for Prepared<T> {
    fn dim(&self) -> usize {
        self.params.dim()
    }

    fn apply(&self, v: &[T], out: &mut [T]) {
        match &self.imp {
            PreparedImpl::Serial(b) => b.kernel_matvec(v, out),
            PreparedImpl::Parallel(b) => b.kernel_matvec(v, out),
            PreparedImpl::Sparse(b) => b.kernel_matvec(v, out),
            // `LinOp::apply` is infallible by contract; the device matvec
            // recovers from injected faults internally and only errors
            // when no device survives (or on a real device error such as
            // out-of-memory mid-solve)
            PreparedImpl::SimGpu(b) => {
                if let Err(e) = b.kernel_matvec(v, out) {
                    panic!("device matvec failed beyond recovery: {e}");
                }
                self.drain_recovery();
            }
        }
        self.params.apply_corrections(v, out);
        // finiteness guard: a single NaN/Inf produced here poisons every
        // CG recurrence downstream. The solver classifies the breakdown;
        // this records *where* the poison entered (first occurrence only —
        // subsequent poisoned matvecs of the same solve stay quiet).
        if let Some(bad) = out.iter().position(|y| !y.is_finite()) {
            use std::sync::atomic::Ordering;
            if let Some(sink) = &self.metrics {
                if !self.numeric_fault_reported.swap(true, Ordering::Relaxed) {
                    sink.record_recovery(RecoverySample::solver(
                        RecoveryKind::NumericFault,
                        0,
                        format!(
                            "non-finite matvec output first observed at component {bad} \
                             (input finite: {})",
                            v.iter().all(|x| x.is_finite())
                        ),
                    ));
                }
            }
        }
        if self.is_cpu() {
            if let Some(sink) = &self.metrics {
                let (flops, bytes) = self.matvec_cost();
                sink.record_launch("svm_kernel", 1, flops, bytes, 0.0);
                if let Some(evals) = self.matvec_evals() {
                    sink.record_kernel_evals("svm_kernel", evals);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{PANEL_MR, PANEL_NR};
    use plssvm_data::dense::DenseMatrix;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};
    use plssvm_simgpu::hw;

    fn sample_dense(points: usize, features: usize) -> (DenseMatrix<f64>, Vec<f64>) {
        let d = generate_planes(&PlanesConfig::new(points, features, 31)).unwrap();
        (d.x, d.y)
    }

    fn all_selections() -> Vec<BackendSelection> {
        vec![
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::openmp(None),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::new(8, 8).with_symmetry(false),
            },
            BackendSelection::SparseCpu { threads: Some(2) },
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 3),
        ]
    }

    #[test]
    fn backends_agree_on_q_tilde_matvec_linear() {
        let (data, _) = sample_dense(33, 9);
        let kernel = KernelSpec::Linear;
        let n = data.rows() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();

        let reference = {
            let p = Prepared::new(&BackendSelection::Serial, &data, None, &kernel, 1.5).unwrap();
            let mut out = vec![0.0; n];
            p.apply(&v, &mut out);
            out
        };
        for sel in all_selections() {
            let p = Prepared::new(&sel, &data, None, &kernel, 1.5).unwrap();
            assert_eq!(p.dim(), n);
            let mut out = vec![0.0; n];
            p.apply(&v, &mut out);
            for i in 0..n {
                assert!(
                    (out[i] - reference[i]).abs() < 1e-8,
                    "{} row {i}: {} vs {}",
                    sel.name(),
                    out[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_nonlinear_kernels_single_device() {
        let (data, _) = sample_dense(21, 5);
        for kernel in [
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.3,
                coef0: 1.0,
            },
            KernelSpec::Rbf { gamma: 0.6 },
        ] {
            let n = data.rows() - 1;
            let v: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
            let reference = {
                let p =
                    Prepared::new(&BackendSelection::Serial, &data, None, &kernel, 2.0).unwrap();
                let mut out = vec![0.0; n];
                p.apply(&v, &mut out);
                out
            };
            for sel in [
                BackendSelection::openmp(Some(3)),
                BackendSelection::sim_gpu(hw::V100, DeviceApi::OpenCl),
            ] {
                let p = Prepared::new(&sel, &data, None, &kernel, 2.0).unwrap();
                let mut out = vec![0.0; n];
                p.apply(&v, &mut out);
                for i in 0..n {
                    assert!(
                        (out[i] - reference[i]).abs() < 1e-8,
                        "{:?} {} row {i}",
                        kernel,
                        sel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn multi_device_nonlinear_rejected() {
        let (data, _) = sample_dense(12, 4);
        let sel = BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2);
        let err =
            Prepared::new(&sel, &data, None, &KernelSpec::Rbf { gamma: 0.5 }, 1.0).unwrap_err();
        assert!(err.to_string().contains("linear"), "{err}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (data, _) = sample_dense(8, 3);
        // C <= 0
        assert!(Prepared::new(
            &BackendSelection::Serial,
            &data,
            None,
            &KernelSpec::Linear,
            0.0
        )
        .is_err());
        assert!(Prepared::new(
            &BackendSelection::Serial,
            &data,
            None,
            &KernelSpec::Linear,
            -1.0
        )
        .is_err());
        // invalid kernel hyperparameters
        assert!(Prepared::new(
            &BackendSelection::Serial,
            &data,
            None,
            &KernelSpec::Rbf { gamma: -0.5 },
            1.0
        )
        .is_err());
        // one data point
        let tiny = DenseMatrix::from_rows(vec![vec![1.0f64, 2.0]]).unwrap();
        assert!(Prepared::new(
            &BackendSelection::Serial,
            &tiny,
            None,
            &KernelSpec::Linear,
            1.0
        )
        .is_err());
    }

    #[test]
    fn zero_feature_data_rejected_by_every_backend() {
        // each point exists but carries no features; `default_gamma` would
        // silently clamp 1/num_features — construction must refuse instead
        let empty = DenseMatrix::<f64>::zeros(3, 0);
        for sel in all_selections() {
            let err = Prepared::new(&sel, &empty, None, &KernelSpec::Linear, 1.0).unwrap_err();
            assert!(
                err.to_string().contains("zero features"),
                "{}: {err}",
                sel.name()
            );
        }
    }

    #[test]
    fn cpu_backends_report_physical_kernel_evals() {
        use crate::trace::Telemetry;
        let (data, _) = sample_dense(20, 6);
        let n = (data.rows() - 1) as u128;
        let v: Vec<f64> = (0..data.rows() - 1)
            .map(|i| (i as f64 * 0.2).sin())
            .collect();
        let expect = |sel: &BackendSelection| match sel {
            BackendSelection::SparseCpu { .. } => n * n,
            BackendSelection::OpenMp { tiling, .. } if !tiling.symmetry => n * n,
            _ => n * (n + 1) / 2,
        };
        for sel in [
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::default().with_symmetry(false),
            },
            BackendSelection::SparseCpu { threads: Some(2) },
        ] {
            let mut p = Prepared::new(&sel, &data, None, &KernelSpec::Linear, 1.0).unwrap();
            let t = Telemetry::shared();
            p.set_metrics(t.clone());
            let mut out = vec![0.0; data.rows() - 1];
            p.apply(&v, &mut out);
            p.apply(&v, &mut out);
            let r = t.report();
            assert_eq!(
                r.kernel_evals["svm_kernel"],
                2 * expect(&sel),
                "{}",
                sel.name()
            );
        }
    }

    #[test]
    fn blocked_cpu_backends_report_simd_dispatch() {
        use crate::trace::Telemetry;
        let (data, _) = sample_dense(16, 4);
        // the panel-engine backends cache an ISA tier and emit one
        // dispatch sample when a sink is attached; the sparse row sweep
        // and the simulated devices run no panel micro-kernels
        for sel in [BackendSelection::Serial, BackendSelection::openmp(Some(2))] {
            let mut p = Prepared::new(&sel, &data, None, &KernelSpec::Linear, 1.0).unwrap();
            let isa = p.isa().expect("panel backend has a cached tier");
            let t = Telemetry::shared();
            p.set_metrics(t.clone());
            let d = t.report().dispatch.expect("dispatch sample recorded");
            assert_eq!(d.isa, isa.name(), "{}", sel.name());
            assert_eq!((d.panel_mr, d.panel_nr), (PANEL_MR, PANEL_NR));
            assert_eq!(d.lanes_f64, isa.lanes_f64());
        }
        for sel in [
            BackendSelection::SparseCpu { threads: Some(2) },
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ] {
            let mut p = Prepared::new(&sel, &data, None, &KernelSpec::Linear, 1.0).unwrap();
            assert!(p.isa().is_none(), "{}", sel.name());
            let t = Telemetry::shared();
            p.set_metrics(t.clone());
            assert!(t.report().dispatch.is_none(), "{}", sel.name());
        }
    }

    #[test]
    fn device_report_only_for_device_backends() {
        let (data, _) = sample_dense(10, 3);
        let p = Prepared::new(
            &BackendSelection::Serial,
            &data,
            None,
            &KernelSpec::Linear,
            1.0,
        )
        .unwrap();
        assert!(p.device_report().is_none());
        let p = Prepared::new(
            &BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            &data,
            None,
            &KernelSpec::Linear,
            1.0,
        )
        .unwrap();
        assert!(p.device_report().is_some());
    }

    #[test]
    fn cpu_backends_record_identical_unified_counters() {
        use crate::trace::Telemetry;
        let (data, _) = sample_dense(20, 6);
        let n = data.rows() - 1;
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut reports = Vec::new();
        for sel in [
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::SparseCpu { threads: Some(2) },
        ] {
            let mut p = Prepared::new(&sel, &data, None, &KernelSpec::Linear, 1.5).unwrap();
            let t = Telemetry::shared();
            p.set_metrics(t.clone());
            let mut out = vec![0.0; n];
            p.apply(&v, &mut out);
            p.apply(&v, &mut out);
            p.compute_linear_w(&vec![1.0; data.rows()]).unwrap();
            reports.push((sel.name(), t.report()));
        }
        let (ref_name, reference) = &reports[0];
        assert_eq!(reference.kernels["q_kernel"].launches, 1);
        assert_eq!(reference.kernels["svm_kernel"].launches, 2);
        assert_eq!(reference.kernels["w_kernel"].launches, 1);
        assert!(reference.kernels["svm_kernel"].flops > 0);
        // the logical counting convention makes every CPU backend report
        // the exact same counters, traversal strategy notwithstanding
        for (name, r) in &reports[1..] {
            assert_eq!(r.kernels, reference.kernels, "{name} vs {ref_name}");
        }
    }

    #[test]
    fn device_report_folds_into_unified_schema() {
        use crate::trace::Telemetry;
        let (data, _) = sample_dense(20, 6);
        let p = Prepared::new(
            &BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            &data,
            None,
            &KernelSpec::Linear,
            1.5,
        )
        .unwrap();
        let n = data.rows() - 1;
        let v = vec![0.5; n];
        let mut out = vec![0.0; n];
        p.apply(&v, &mut out);
        let t = Telemetry::new();
        p.device_report().unwrap().fold_into(&t);
        let r = t.report();
        assert_eq!(r.kernels["q_kernel"].launches, 1);
        assert_eq!(r.kernels["svm_kernel"].launches, 1);
        assert!(r.kernels["svm_kernel"].flops > 0);
        assert!(r.kernels["svm_kernel"].sim_time_s > 0.0);
    }

    #[test]
    fn selection_names() {
        assert_eq!(BackendSelection::Serial.name(), "serial");
        assert_eq!(BackendSelection::openmp(Some(8)).name(), "openmp[8]");
        assert_eq!(BackendSelection::openmp(None).name(), "openmp");
        let n = BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 4).name();
        assert!(n.contains("4x") && n.contains("A100"), "{n}");
    }
}
