//! Single-threaded reference backend.
//!
//! Computes the implicit kernel matrix–vector product exactly as written in
//! the paper's equations, exploiting symmetry (each off-diagonal entry is
//! evaluated once and used for both `out[i]` and `out[j]`). This is the
//! ground truth the parallel and device backends are tested against. The
//! inner loops run on the blocked panel micro-kernel of
//! [`crate::backend::cpu_blocked`] with the default [`CpuTilingConfig`], so
//! even the reference is register-tiled and auto-vectorizable — only the
//! sequential, single-buffer schedule distinguishes it from the "OpenMP"
//! backend.
//!
//! Like the paper's CPU path, this backend works on the untransformed
//! row-major layout — the SoA transform exists for GPU memory coalescing
//! and is applied only by the device backend (§III-A, §IV-E).

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::backend::cpu_blocked::{symmetric_group_matvec, CpuTilingConfig};
use crate::matrix_free::QTildeParams;
use crate::simd::Isa;

/// The serial CPU backend.
pub struct SerialBackend<T> {
    data: DenseMatrix<T>,
    kernel: KernelSpec<T>,
    params: QTildeParams<T>,
    tiling: CpuTilingConfig,
}

impl<T: Real> SerialBackend<T> {
    /// Prepares the backend: computes the cached `q⃗` and `k_mm`. The panel
    /// micro-kernel ISA tier is resolved once here ([`Isa::select`]) and
    /// pinned for the backend's lifetime.
    pub fn new(data: DenseMatrix<T>, kernel: KernelSpec<T>, cost: T) -> Self {
        let tiling = CpuTilingConfig::default().with_isa(Isa::select());
        let params = QTildeParams::compute_dense(&data, &kernel, cost, tiling.resolved_isa());
        Self {
            data,
            kernel,
            params,
            tiling,
        }
    }

    /// The shared `Q̃` parameters.
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// The training data.
    pub fn data(&self) -> &DenseMatrix<T> {
        &self.data
    }

    /// The ISA tier the panel micro-kernels dispatch to.
    pub fn isa(&self) -> Isa {
        self.tiling.resolved_isa()
    }

    /// `out = K·v` with `Kᵢⱼ = k(xᵢ,xⱼ)` over the first `m−1` points:
    /// the blocked symmetric schedule run sequentially as a single group,
    /// accumulating straight into `out`.
    pub fn kernel_matvec(&self, v: &[T], out: &mut [T]) {
        let n = self.params.dim();
        debug_assert_eq!(v.len(), n);
        debug_assert_eq!(out.len(), n);
        out.fill(T::ZERO);
        let cfg = self.tiling.effective_for(n);
        symmetric_group_matvec(&self.data, &self.kernel, &cfg, n, v, 0, 1, out);
    }
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::kernel::kernel_row;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn backend(kernel: KernelSpec<f64>) -> SerialBackend<f64> {
        let d = generate_planes(&PlanesConfig::new(17, 4, 5)).unwrap();
        SerialBackend::new(d.x, kernel, 1.0)
    }

    #[test]
    fn matches_naive_double_loop() {
        for kernel in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 2,
                gamma: 0.5,
                coef0: 0.25,
            },
            KernelSpec::Rbf { gamma: 0.3 },
        ] {
            let b = backend(kernel);
            let n = b.params.dim();
            let v: Vec<f64> = (0..n).map(|i| (i as f64 - 7.0) / 3.0).collect();
            let mut fast = vec![0.0; n];
            b.kernel_matvec(&v, &mut fast);

            // naive O(n²) without symmetry
            let mut naive = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    naive[i] += kernel_row(&b.kernel, b.data.row(i), b.data.row(j)) * v[j];
                }
            }
            for i in 0..n {
                assert!((fast[i] - naive[i]).abs() < 1e-10, "{kernel:?} row {i}");
            }
        }
    }

    #[test]
    fn params_match_soa_computation() {
        let d = generate_planes::<f64>(&PlanesConfig::new(17, 4, 5)).unwrap();
        let soa = plssvm_data::dense::SoAMatrix::from_dense(&d.x, 8);
        for kernel in [KernelSpec::Linear, KernelSpec::Rbf { gamma: 0.7 }] {
            let dense = QTildeParams::compute_dense(&d.x, &kernel, 2.0, crate::simd::Isa::select());
            let via_soa = QTildeParams::compute(&soa, &kernel, 2.0);
            assert_eq!(dense.dim(), via_soa.dim());
            for i in 0..dense.dim() {
                assert!((dense.q[i] - via_soa.q[i]).abs() < 1e-12);
            }
            assert!((dense.k_mm - via_soa.k_mm).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_with_zero_vector_is_zero() {
        let b = backend(KernelSpec::Linear);
        let n = b.params.dim();
        let mut out = vec![1.0; n]; // must be overwritten
        b.kernel_matvec(&vec![0.0; n], &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_is_linear() {
        let b = backend(KernelSpec::Rbf { gamma: 0.8 });
        let n = b.params.dim();
        let v1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let v2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let combo: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let mut out1 = vec![0.0; n];
        let mut out2 = vec![0.0; n];
        let mut out_combo = vec![0.0; n];
        b.kernel_matvec(&v1, &mut out1);
        b.kernel_matvec(&v2, &mut out2);
        b.kernel_matvec(&combo, &mut out_combo);
        for i in 0..n {
            let expected = 2.0 * out1[i] - 0.5 * out2[i];
            assert!((out_combo[i] - expected).abs() < 1e-9);
        }
    }
}
