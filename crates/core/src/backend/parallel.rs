//! The multi-threaded "OpenMP" CPU backend.
//!
//! Parallelizes the blocked implicit kernel matvec of
//! [`crate::backend::cpu_blocked`] over tile-row groups on a rayon thread
//! pool with a configurable thread count (the paper's Fig. 4a
//! strong-scaling study sweeps 1…256 OpenMP threads). Works on the
//! untransformed row-major layout like the paper's CPU path — the SoA
//! transform is a GPU-backend concern (§IV-E).
//!
//! Unlike the original scalar row sweep (which evaluated the full `n²`
//! matrix because triangular mirroring would have required synchronization
//! on `out`), this backend exploits symmetry in parallel: each task owns a
//! strided set of upper-triangle tile rows and accumulates both the direct
//! and the mirrored contribution into a **private partial output buffer**;
//! the buffers are then reduced in a fixed order. Kernel evaluations drop
//! from `n²` to `n(n+1)/2` — the same count as the serial reference — and
//! because the task decomposition depends only on `n` and the
//! [`CpuTilingConfig`] (never on the thread count), results are bitwise
//! independent of the number of worker threads.
//!
//! The cache/register tiling itself (panel micro-kernel, cache blocks,
//! boundary clamping) is shared with the serial backend; see
//! [`crate::backend::cpu_blocked`] for the schedule and its boundary
//! guarantees.

use rayon::prelude::*;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::backend::cpu_blocked::{full_rows_matvec, symmetric_group_matvec, CpuTilingConfig};
use crate::error::SvmError;
use crate::matrix_free::QTildeParams;
use crate::simd::Isa;

/// The multi-threaded CPU backend.
pub struct ParallelBackend<T> {
    data: DenseMatrix<T>,
    kernel: KernelSpec<T>,
    params: QTildeParams<T>,
    pool: Option<rayon::ThreadPool>,
    tiling: CpuTilingConfig,
}

impl<T: Real> ParallelBackend<T> {
    /// Prepares the backend. `threads = None` shares the global rayon
    /// pool; `Some(t)` builds a dedicated pool with exactly `t` workers
    /// (the "number of OpenMP threads"). `tiling` selects the cache-tile
    /// sizes and the symmetric schedule of the blocked matvec engine.
    pub fn new(
        data: DenseMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        threads: Option<usize>,
        mut tiling: CpuTilingConfig,
    ) -> Result<Self, SvmError> {
        tiling.validate()?;
        // pin the micro-kernel ISA tier once — detection plus the
        // PLSSVM_FORCE_ISA override are resolved here, never per matvec
        if tiling.isa.is_none() {
            tiling.isa = Some(Isa::select());
        }
        let pool = match threads {
            None => None,
            Some(0) => return Err(SvmError::Solver("thread count must be at least 1".into())),
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|e| SvmError::Solver(format!("thread pool: {e}")))?,
            ),
        };
        let params = QTildeParams::compute_dense(&data, &kernel, cost, tiling.resolved_isa());
        Ok(Self {
            data,
            kernel,
            params,
            pool,
            tiling,
        })
    }

    /// The shared `Q̃` parameters.
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// The training data.
    pub fn data(&self) -> &DenseMatrix<T> {
        &self.data
    }

    /// The active tiling configuration.
    pub fn tiling(&self) -> &CpuTilingConfig {
        &self.tiling
    }

    /// The ISA tier the panel micro-kernels dispatch to.
    pub fn isa(&self) -> Isa {
        self.tiling.resolved_isa()
    }

    /// Number of worker threads this backend computes with.
    pub fn threads(&self) -> usize {
        self.pool
            .as_ref()
            .map(|p| p.current_num_threads())
            .unwrap_or_else(rayon::current_num_threads)
    }

    /// `out = K·v` over the first `m−1` points, parallel over tile-row
    /// groups (symmetric schedule) or row chunks (full schedule).
    pub fn kernel_matvec(&self, v: &[T], out: &mut [T]) {
        let n = self.params.dim();
        debug_assert_eq!(v.len(), n);
        debug_assert_eq!(out.len(), n);
        let data = &self.data;
        let kernel = &self.kernel;
        // problem-size-aware tiles (bit-neutral, see CpuTilingConfig docs)
        let cfg = &self.tiling.effective_for(n);

        if cfg.symmetry {
            let groups = cfg.partial_groups(n);
            let work = || -> Vec<Vec<T>> {
                (0..groups)
                    .into_par_iter()
                    .map(|g| {
                        let mut partial = vec![T::ZERO; n];
                        symmetric_group_matvec(data, kernel, cfg, n, v, g, groups, &mut partial);
                        partial
                    })
                    .collect()
            };
            let partials = match &self.pool {
                Some(pool) => pool.install(work),
                None => work(),
            };
            // fixed-order reduction: group count and order depend only on
            // n and the tiling, so the sum is thread-count independent
            out.fill(T::ZERO);
            for partial in &partials {
                for (o, p) in out.iter_mut().zip(partial) {
                    *o += *p;
                }
            }
        } else {
            // full sweep: each task owns complete output rows, no partial
            // buffers needed. The chunking clamps the final chunk, so n
            // off a row_tile multiple (or n = 1) is handled explicitly.
            let work = |out: &mut [T]| {
                out.par_chunks_mut(cfg.row_tile)
                    .enumerate()
                    .for_each(|(block, chunk)| {
                        full_rows_matvec(data, kernel, cfg, n, v, block * cfg.row_tile, chunk);
                    });
            };
            match &self.pool {
                Some(pool) => pool.install(|| work(out)),
                None => work(out),
            }
        }
    }

    /// Kernel evaluations one [`ParallelBackend::kernel_matvec`] performs
    /// under the active schedule.
    pub fn matvec_evals(&self) -> u128 {
        self.tiling.matvec_evals(self.params.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::serial::SerialBackend;
    use crate::kernel::kernel_row;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample(points: usize) -> DenseMatrix<f64> {
        generate_planes(&PlanesConfig::new(points, 6, 77))
            .unwrap()
            .x
    }

    fn default_backend(data: &DenseMatrix<f64>, kernel: KernelSpec<f64>) -> ParallelBackend<f64> {
        ParallelBackend::new(
            data.clone(),
            kernel,
            1.0,
            Some(4),
            CpuTilingConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn matches_serial_backend() {
        let data = sample(70); // spans multiple cache tiles
        for kernel in [KernelSpec::Linear, KernelSpec::Rbf { gamma: 0.4 }] {
            let serial = SerialBackend::new(data.clone(), kernel, 1.0);
            let par = default_backend(&data, kernel);
            let n = serial.params().dim();
            let v: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.05).sin()).collect();
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            serial.kernel_matvec(&v, &mut a);
            par.kernel_matvec(&v, &mut b);
            for i in 0..n {
                assert!((a[i] - b[i]).abs() < 1e-9, "{kernel:?} row {i}");
            }
        }
    }

    #[test]
    fn result_independent_of_thread_count() {
        let data = sample(40);
        let kernel = KernelSpec::Linear;
        let n = data.rows() - 1;
        let v: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut configs = vec![
            CpuTilingConfig::default(),
            CpuTilingConfig::new(8, 8),
            CpuTilingConfig::default().with_symmetry(false),
        ];
        // every ISA tier must be thread-count deterministic, not just the
        // auto-selected one
        for isa in Isa::available() {
            configs.push(CpuTilingConfig::default().with_isa(isa));
            configs.push(
                CpuTilingConfig::new(8, 8)
                    .with_symmetry(false)
                    .with_isa(isa),
            );
        }
        for cfg in configs {
            let mut reference = vec![0.0; n];
            ParallelBackend::new(data.clone(), kernel, 1.0, Some(1), cfg)
                .unwrap()
                .kernel_matvec(&v, &mut reference);
            for t in [2, 3, 8] {
                let mut out = vec![0.0; n];
                ParallelBackend::new(data.clone(), kernel, 1.0, Some(t), cfg)
                    .unwrap()
                    .kernel_matvec(&v, &mut out);
                // the task decomposition (and the reduction order) depends
                // only on n and the tiling, never on the thread count
                assert_eq!(out, reference, "{t} threads {cfg:?}");
            }
        }
    }

    /// Boundary audit (issue satellite): the blocked engine must clamp the
    /// final partial tile correctly for every awkward `n` — a single row,
    /// one off the tile size in both directions, and a prime that divides
    /// nothing. Checked against a naive full sweep for both schedules.
    #[test]
    fn boundary_sizes_match_naive_reference() {
        let tile = 8usize;
        let cfg = CpuTilingConfig::new(tile, tile);
        for n in [1usize, tile - 1, tile + 1, 37] {
            let data = sample(n + 1); // backend dimension is rows − 1
            let v: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.23).cos()).collect();
            let kernel = KernelSpec::Rbf { gamma: 0.35 };
            let mut naive = vec![0.0; n];
            for (i, slot) in naive.iter_mut().enumerate() {
                for (j, &vj) in v.iter().enumerate() {
                    *slot += kernel_row(&kernel, data.row(i), data.row(j)) * vj;
                }
            }
            for cfg in [cfg, cfg.with_symmetry(false)] {
                let b = ParallelBackend::new(data.clone(), kernel, 1.0, Some(2), cfg).unwrap();
                let mut out = vec![0.0; n];
                b.kernel_matvec(&v, &mut out);
                for i in 0..n {
                    assert!(
                        (out[i] - naive[i]).abs() < 1e-9,
                        "n={n} {cfg:?} row {i}: {} vs {}",
                        out[i],
                        naive[i]
                    );
                }
            }
        }
    }

    #[test]
    fn symmetric_and_full_schedules_agree() {
        let data = sample(55);
        let n = data.rows() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let kernel = KernelSpec::Polynomial {
            degree: 3,
            gamma: 0.2,
            coef0: 1.0,
        };
        let sym = default_backend(&data, kernel);
        let full = ParallelBackend::new(
            data.clone(),
            kernel,
            1.0,
            Some(2),
            CpuTilingConfig::default().with_symmetry(false),
        )
        .unwrap();
        assert!(sym.matvec_evals() < full.matvec_evals());
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        sym.kernel_matvec(&v, &mut a);
        full.kernel_matvec(&v, &mut b);
        for i in 0..n {
            assert!((a[i] - b[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn thread_count_reported() {
        let data = sample(10);
        let b = default_backend(&data, KernelSpec::Linear);
        assert_eq!(b.threads(), 4);
        let b = ParallelBackend::new(
            data,
            KernelSpec::Linear,
            1.0,
            None,
            CpuTilingConfig::default(),
        )
        .unwrap();
        assert!(b.threads() >= 1);
    }

    #[test]
    fn zero_threads_and_zero_tiles_rejected() {
        let data = sample(10);
        assert!(ParallelBackend::new(
            data.clone(),
            KernelSpec::Linear,
            1.0,
            Some(0),
            CpuTilingConfig::default()
        )
        .is_err());
        assert!(ParallelBackend::new(
            data,
            KernelSpec::Linear,
            1.0,
            Some(1),
            CpuTilingConfig::new(0, 8)
        )
        .is_err());
    }
}
