//! The multi-threaded "OpenMP" CPU backend.
//!
//! Parallelizes the implicit kernel matvec over row blocks on a rayon
//! thread pool with a configurable thread count (the paper's Fig. 4a
//! strong-scaling study sweeps 1…256 OpenMP threads). Works on the
//! untransformed row-major layout like the paper's CPU path — the SoA
//! transform is a GPU-backend concern (§IV-E).
//!
//! Faithful to the paper, this backend is *simpler* than the device
//! backend: each thread computes complete rows (no triangular mirroring —
//! that would require synchronization on `out`), so it performs twice the
//! kernel evaluations of the serial backend. The paper notes "the CPU only
//! OpenMP implementation is currently not as well optimized as the GPU
//! implementations", and its measured CPU/GPU gap (§IV-C) reflects exactly
//! this kind of cost. Rows are still processed in cache-friendly blocks.

use rayon::prelude::*;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::error::SvmError;
use crate::kernel::kernel_row;
use crate::matrix_free::QTildeParams;

/// Row-block granularity: each parallel task computes this many output
/// rows.
const ROW_BLOCK: usize = 32;

/// The multi-threaded CPU backend.
pub struct ParallelBackend<T> {
    data: DenseMatrix<T>,
    kernel: KernelSpec<T>,
    params: QTildeParams<T>,
    pool: Option<rayon::ThreadPool>,
}

impl<T: Real> ParallelBackend<T> {
    /// Prepares the backend. `threads = None` shares the global rayon
    /// pool; `Some(t)` builds a dedicated pool with exactly `t` workers
    /// (the "number of OpenMP threads").
    pub fn new(
        data: DenseMatrix<T>,
        kernel: KernelSpec<T>,
        cost: T,
        threads: Option<usize>,
    ) -> Result<Self, SvmError> {
        let pool = match threads {
            None => None,
            Some(0) => return Err(SvmError::Solver("thread count must be at least 1".into())),
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|e| SvmError::Solver(format!("thread pool: {e}")))?,
            ),
        };
        let params = QTildeParams::compute_dense(&data, &kernel, cost);
        Ok(Self {
            data,
            kernel,
            params,
            pool,
        })
    }

    /// The shared `Q̃` parameters.
    pub fn params(&self) -> &QTildeParams<T> {
        &self.params
    }

    /// The training data.
    pub fn data(&self) -> &DenseMatrix<T> {
        &self.data
    }

    /// Number of worker threads this backend computes with.
    pub fn threads(&self) -> usize {
        self.pool
            .as_ref()
            .map(|p| p.current_num_threads())
            .unwrap_or_else(rayon::current_num_threads)
    }

    /// `out = K·v` over the first `m−1` points, parallel over row blocks.
    pub fn kernel_matvec(&self, v: &[T], out: &mut [T]) {
        let n = self.params.dim();
        debug_assert_eq!(v.len(), n);
        debug_assert_eq!(out.len(), n);
        let data = &self.data;
        let kernel = &self.kernel;

        let work = |out: &mut [T]| {
            out.par_chunks_mut(ROW_BLOCK)
                .enumerate()
                .for_each(|(block, chunk)| {
                    let i0 = block * ROW_BLOCK;
                    for (di, slot) in chunk.iter_mut().enumerate() {
                        let row_i = data.row(i0 + di);
                        let mut acc = T::ZERO;
                        for (j, &vj) in v.iter().enumerate() {
                            acc = kernel_row(kernel, row_i, data.row(j)).mul_add(vj, acc);
                        }
                        *slot = acc;
                    }
                });
        };
        match &self.pool {
            Some(pool) => pool.install(|| work(out)),
            None => work(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::serial::SerialBackend;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample(points: usize) -> DenseMatrix<f64> {
        generate_planes(&PlanesConfig::new(points, 6, 77))
            .unwrap()
            .x
    }

    #[test]
    fn matches_serial_backend() {
        let data = sample(70); // spans multiple row blocks
        for kernel in [KernelSpec::Linear, KernelSpec::Rbf { gamma: 0.4 }] {
            let serial = SerialBackend::new(data.clone(), kernel, 1.0);
            let par = ParallelBackend::new(data.clone(), kernel, 1.0, Some(4)).unwrap();
            let n = serial.params().dim();
            let v: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.05).sin()).collect();
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            serial.kernel_matvec(&v, &mut a);
            par.kernel_matvec(&v, &mut b);
            for i in 0..n {
                assert!((a[i] - b[i]).abs() < 1e-9, "{kernel:?} row {i}");
            }
        }
    }

    #[test]
    fn result_independent_of_thread_count() {
        let data = sample(40);
        let kernel = KernelSpec::Linear;
        let n = data.rows() - 1;
        let v: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut reference = vec![0.0; n];
        ParallelBackend::new(data.clone(), kernel, 1.0, Some(1))
            .unwrap()
            .kernel_matvec(&v, &mut reference);
        for t in [2, 3, 8] {
            let mut out = vec![0.0; n];
            ParallelBackend::new(data.clone(), kernel, 1.0, Some(t))
                .unwrap()
                .kernel_matvec(&v, &mut out);
            // per-row sums are computed identically regardless of threads
            assert_eq!(out, reference, "{t} threads");
        }
    }

    #[test]
    fn thread_count_reported() {
        let data = sample(10);
        let b = ParallelBackend::new(data.clone(), KernelSpec::Linear, 1.0, Some(3)).unwrap();
        assert_eq!(b.threads(), 3);
        let b = ParallelBackend::new(data, KernelSpec::Linear, 1.0, None).unwrap();
        assert!(b.threads() >= 1);
    }

    #[test]
    fn zero_threads_rejected() {
        let data = sample(10);
        assert!(ParallelBackend::new(data, KernelSpec::Linear, 1.0, Some(0)).is_err());
    }
}
