//! k-fold cross-validation — LIBSVM's `-v` mode.
//!
//! LIBSVM reports cross-validation accuracy by partitioning the training
//! data into `k` stratified folds, training on `k−1` and predicting the
//! held-out fold, pooling all predictions. This module reproduces that
//! behaviour on top of [`crate::svm::LsSvm`] so `svm-train -v k` works as
//! a drop-in.

use rand::prelude::*;
use rand::rngs::StdRng;

use plssvm_data::libsvm::LabeledData;
use plssvm_data::Real;
use plssvm_simgpu::device::AtomicScalar;

use crate::error::SvmError;
use crate::svm::{predict, LsSvm};

/// Cross-validation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Accuracy per fold (fraction of the fold's points classified
    /// correctly).
    pub fold_accuracies: Vec<f64>,
    /// Pooled accuracy over all points (what LIBSVM prints).
    pub accuracy: f64,
}

/// Builds stratified fold assignments: every fold receives a proportional
/// share of each class. Returns `fold_of[i] ∈ 0..folds` per point.
pub fn stratified_folds<T: Real>(data: &LabeledData<T>, folds: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.points()];
    for class_positive in [true, false] {
        let mut indices: Vec<usize> = (0..data.points())
            .filter(|&i| (data.y[i].to_f64() > 0.0) == class_positive)
            .collect();
        indices.shuffle(&mut rng);
        for (slot, &i) in indices.iter().enumerate() {
            fold_of[i] = slot % folds;
        }
    }
    fold_of
}

/// Runs stratified k-fold cross-validation with `trainer`'s configuration.
pub fn cross_validate<T: AtomicScalar>(
    data: &LabeledData<T>,
    trainer: &LsSvm<T>,
    folds: usize,
    seed: u64,
) -> Result<CvResult, SvmError> {
    if folds < 2 {
        return Err(SvmError::Solver("cross validation needs k >= 2".into()));
    }
    if folds > data.points() {
        return Err(SvmError::Solver(format!(
            "{folds} folds for {} points",
            data.points()
        )));
    }
    let fold_of = stratified_folds(data, folds, seed);
    let mut fold_accuracies = Vec::with_capacity(folds);
    let mut correct_total = 0usize;

    for fold in 0..folds {
        let train_idx: Vec<usize> = (0..data.points()).filter(|&i| fold_of[i] != fold).collect();
        let test_idx: Vec<usize> = (0..data.points()).filter(|&i| fold_of[i] == fold).collect();
        if test_idx.is_empty() || train_idx.len() < 2 {
            return Err(SvmError::Solver(format!(
                "fold {fold} is degenerate ({} train / {} test points)",
                train_idx.len(),
                test_idx.len()
            )));
        }
        let train = LabeledData::with_label_map(
            data.x.select_rows(&train_idx),
            train_idx.iter().map(|&i| data.y[i]).collect(),
            data.label_map,
        )?;
        let out = trainer.train(&train)?;
        let test_x = data.x.select_rows(&test_idx);
        let predictions = predict(&out.model, &test_x);
        let correct = predictions
            .iter()
            .zip(test_idx.iter())
            .filter(|(p, &i)| p.to_f64() == data.y[i].to_f64())
            .count();
        correct_total += correct;
        fold_accuracies.push(correct as f64 / test_idx.len() as f64);
    }
    Ok(CvResult {
        fold_accuracies,
        accuracy: correct_total as f64 / data.points() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample(seed: u64) -> LabeledData<f64> {
        generate_planes(
            &PlanesConfig::new(100, 6, seed)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap()
    }

    #[test]
    fn folds_are_stratified_and_balanced() {
        let data = sample(1);
        let fold_of = stratified_folds(&data, 5, 7);
        assert_eq!(fold_of.len(), 100);
        for fold in 0..5 {
            let members: Vec<usize> = (0..100).filter(|&i| fold_of[i] == fold).collect();
            assert_eq!(members.len(), 20);
            let pos = members.iter().filter(|&&i| data.y[i] > 0.0).count();
            // each fold has a proportional class share (±1)
            assert!((9..=11).contains(&pos), "fold {fold}: {pos} positives");
        }
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let data = sample(2);
        let trainer = LsSvm::new().with_epsilon(1e-8);
        let result = cross_validate(&data, &trainer, 5, 3).unwrap();
        assert_eq!(result.fold_accuracies.len(), 5);
        assert!(result.accuracy >= 0.95, "cv accuracy {}", result.accuracy);
        // pooled accuracy equals the weighted mean of fold accuracies
        let mean: f64 = result.fold_accuracies.iter().sum::<f64>() / 5.0;
        assert!((mean - result.accuracy).abs() < 1e-9);
    }

    #[test]
    fn cv_is_deterministic_per_seed() {
        let data = sample(3);
        let trainer = LsSvm::new().with_epsilon(1e-6);
        let a = cross_validate(&data, &trainer, 4, 9).unwrap();
        let b = cross_validate(&data, &trainer, 4, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_fold_counts_rejected() {
        let data = sample(4);
        let trainer = LsSvm::new();
        assert!(cross_validate(&data, &trainer, 1, 0).is_err());
        assert!(cross_validate(&data, &trainer, 101, 0).is_err());
    }

    #[test]
    fn cv_detects_overfitting_hyperparameters() {
        // heavily noisy data: CV accuracy must fall well below training
        // accuracy of a full-fit model (sanity of held-out estimation)
        let data = generate_planes::<f64>(
            &PlanesConfig::new(80, 4, 5)
                .with_cluster_sep(0.3)
                .with_flip_fraction(0.2),
        )
        .unwrap();
        let trainer = LsSvm::new()
            .with_kernel(plssvm_data::model::KernelSpec::Rbf { gamma: 50.0 })
            .with_cost(1e6)
            .with_epsilon(1e-8);
        let full = trainer.train(&data).unwrap();
        let train_acc = crate::svm::accuracy(&full.model, &data);
        let cv = cross_validate(&data, &trainer, 5, 11).unwrap();
        assert!(
            train_acc > 0.95,
            "overfit model should memorize: {train_acc}"
        );
        assert!(
            cv.accuracy < train_acc - 0.15,
            "cv {} vs train {train_acc}",
            cv.accuracy
        );
    }
}
