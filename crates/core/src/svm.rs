//! The public LS-SVM training and prediction API.
//!
//! Training follows the paper's four steps (§III): (1) read the training
//! data, (2) transform it into the padded SoA layout and load it onto the
//! device, (3) solve the reduced system `Q̃·α̃ = ȳ − y_m·1` with CG on the
//! selected backend, (4) assemble (and optionally save) the model file.
//! Every step is timed individually (Fig. 2).

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use plssvm_data::dense::{DenseMatrix, SoAMatrix};
use plssvm_data::libsvm::{read_libsvm_file, LabeledData};
use plssvm_data::model::{KernelSpec, SvmModel};
use plssvm_data::Real;
use plssvm_simgpu::device::AtomicScalar;
use plssvm_simgpu::FaultPlan;

use plssvm_data::CheckpointJournal;

use crate::backend::{BackendSelection, CpuTilingConfig, DeviceReport, Prepared};
use crate::cg::{CgConfig, SolveOutcome};
use crate::checkpoint::{load_resume_point, ContextFingerprint, JournalSink};
use crate::error::SvmError;
use crate::guard::{
    solve_with_guardrails_checkpointed, GuardedSolve, JacobiDiagonal, RecoveryPolicy,
    RungCheckpointSink,
};
use crate::kernel::kernel_row;
use crate::lowrank::{solve_lowrank, SolverSelection};
use crate::matrix_free::{bias, full_alpha, reduced_rhs};
use crate::timing::ComponentTimes;
use crate::trace::{spans, MetricsSink, RecoveryKind, SpanRecorder, Telemetry, TelemetryReport};

/// LS-SVM trainer configuration (builder style).
///
/// Defaults mirror PLSSVM's command line: linear kernel, `C = 1`,
/// `ε = 1e-3` relative residual, the multi-threaded CPU backend.
///
/// ```
/// use plssvm_core::prelude::*;
/// use plssvm_data::synthetic::{generate_planes, PlanesConfig};
///
/// let data = generate_planes::<f64>(&PlanesConfig::new(64, 8, 42))?;
/// let out = LsSvm::new()
///     .with_kernel(KernelSpec::Linear)
///     .with_epsilon(1e-6)
///     .train(&data)?;
/// assert!(out.converged);
/// assert!(accuracy(&out.model, &data) > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LsSvm<T> {
    /// Kernel function (default linear).
    pub kernel: KernelSpec<T>,
    /// The weighting constant `C > 0` of the LS-SVM objective.
    pub cost: T,
    /// CG relative-residual termination criterion ε.
    pub epsilon: T,
    /// Optional CG iteration cap (`None`: the system dimension).
    pub max_iterations: Option<usize>,
    /// Execution backend.
    pub backend: BackendSelection,
    /// Optional cache-tiling override for the blocked CPU matvec engine
    /// (applies when `backend` is the "OpenMP" backend; `None` keeps the
    /// tiling already carried by the selection).
    pub cpu_tiling: Option<CpuTilingConfig>,
    /// Optional per-sample weights `vᵢ > 0` (weighted LS-SVM, Suykens et
    /// al. \[25\]): the error term of sample `i` is weighted `C·vᵢ`, i.e.
    /// small weights let suspected outliers violate the margin cheaply.
    pub sample_weights: Option<Vec<T>>,
    /// Solve with Jacobi-preconditioned CG instead of plain CG (an
    /// extension past the paper; helps on badly scaled kernels).
    pub jacobi_preconditioner: bool,
    /// Optional observability sink (see [`crate::trace`]): when set, the
    /// run records per-iteration CG telemetry, unified kernel-launch
    /// counters and timing spans, and [`TrainOutput::telemetry`] carries
    /// the report. `None` (the default) records nothing.
    pub metrics: Option<Arc<Telemetry>>,
    /// Optional deterministic fault schedule injected into the simulated
    /// devices (device backends only): transient timeouts are retried
    /// with simulated backoff, fail-stopped devices are dropped with
    /// their shard redistributed across the survivors, and slow devices
    /// are rebalanced away from. Recovery events appear in the telemetry
    /// report when a sink is attached.
    pub fault_plan: Option<FaultPlan>,
    /// Snapshot the CG state every this many iterations (see
    /// [`crate::cg::CgState`]); each snapshot emits a `checkpoint`
    /// recovery event to the metrics sink. `None` (the default) disables
    /// checkpointing.
    pub checkpoint_interval: Option<usize>,
    /// Durable on-disk checkpoint journal: every periodic snapshot is
    /// additionally appended as a checksummed generation file, making the
    /// run crash-safe (see [`crate::checkpoint`]). Requires
    /// `checkpoint_interval` to actually produce snapshots.
    pub checkpoint_journal: Option<CheckpointJournal>,
    /// Resume from the journal's newest valid generation instead of
    /// starting fresh. The journal must belong to the same training
    /// context (data, kernel, cost, precision, shape) — a mismatch is a
    /// hard [`SvmError::Checkpoint`] error. An *empty* journal resumes as
    /// a fresh start (a crash before the first checkpoint loses nothing).
    pub resume: bool,
    /// Extra entropy folded into the checkpoint context fingerprint. The
    /// CLI sets this to a hash of the training file's bytes so a journal
    /// written for one data set can never be resumed against another.
    pub checkpoint_salt: u64,
    /// Escalation ladder engaged when the CG solve comes back
    /// non-converged (see [`crate::guard`]): restart with exact residual,
    /// then Jacobi preconditioning, then (f32 only) f64 iterative
    /// refinement over the working-precision backend. The default engages
    /// every rung; [`RecoveryPolicy::disabled`] returns the first
    /// attempt's classified outcome untouched.
    pub recovery_policy: RecoveryPolicy,
    /// Which solver runs the reduced system (the CLI's `--solver`): the
    /// exact CG ladder (default) or the randomized low-rank (Nyström)
    /// path of [`crate::lowrank`]. The low-rank path never streams
    /// durable checkpoints (an attached journal is left untouched) and
    /// rejects [`LsSvm::with_resume`] with a structured error — the
    /// journal carries exact-CG state only.
    pub solver: SolverSelection,
}

impl<T: Real> Default for LsSvm<T> {
    fn default() -> Self {
        Self {
            kernel: KernelSpec::Linear,
            cost: T::ONE,
            epsilon: T::from_f64(1e-3),
            max_iterations: None,
            backend: BackendSelection::default(),
            cpu_tiling: None,
            sample_weights: None,
            jacobi_preconditioner: false,
            metrics: None,
            fault_plan: None,
            checkpoint_interval: None,
            checkpoint_journal: None,
            resume: false,
            checkpoint_salt: 0,
            recovery_policy: RecoveryPolicy::default(),
            solver: SolverSelection::default(),
        }
    }
}

impl<T: AtomicScalar> LsSvm<T> {
    /// A trainer with all defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the kernel function.
    pub fn with_kernel(mut self, kernel: KernelSpec<T>) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the cost parameter `C`.
    pub fn with_cost(mut self, cost: T) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the CG tolerance ε.
    pub fn with_epsilon(mut self, epsilon: T) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Caps the number of CG iterations.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = Some(iters);
        self
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: BackendSelection) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the cache tiling of the blocked CPU matvec engine (the
    /// CLI's `--cpu-tile`). Takes effect when the "OpenMP" backend is
    /// selected; other backends ignore it.
    pub fn with_cpu_tiling(mut self, tiling: CpuTilingConfig) -> Self {
        self.cpu_tiling = Some(tiling);
        self
    }

    /// Installs per-sample weights (weighted LS-SVM).
    pub fn with_sample_weights(mut self, weights: Vec<T>) -> Self {
        self.sample_weights = Some(weights);
        self
    }

    /// Enables the Jacobi-preconditioned CG solver.
    pub fn with_jacobi_preconditioner(mut self, enabled: bool) -> Self {
        self.jacobi_preconditioner = enabled;
        self
    }

    /// Attaches an observability sink: the training run records CG
    /// telemetry, unified kernel counters and timing spans into it, and
    /// [`TrainOutput::telemetry`] carries the resulting report.
    pub fn with_metrics(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.metrics = Some(telemetry);
        self
    }

    /// Injects a deterministic [`FaultPlan`] into the simulated devices
    /// (device backends only; training errors on CPU backends). The
    /// recovery policy — retry-with-backoff, fail-stop shard
    /// redistribution, straggler rebalancing — engages automatically.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Snapshots the CG state every `iterations` iterations (warm-restart
    /// checkpointing; must be at least 1).
    pub fn with_checkpoint_interval(mut self, iterations: usize) -> Self {
        self.checkpoint_interval = Some(iterations);
        self
    }

    /// Streams every periodic snapshot into a durable on-disk journal
    /// (crash-safe training). Combine with
    /// [`LsSvm::with_checkpoint_interval`] to control the cadence.
    pub fn with_checkpoint_journal(mut self, journal: CheckpointJournal) -> Self {
        self.checkpoint_journal = Some(journal);
        self
    }

    /// Resumes from the journal's newest valid generation (requires
    /// [`LsSvm::with_checkpoint_journal`]).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Folds extra entropy (e.g. a training-file content hash) into the
    /// checkpoint context fingerprint.
    pub fn with_checkpoint_salt(mut self, salt: u64) -> Self {
        self.checkpoint_salt = salt;
        self
    }

    /// Overrides the solver recovery policy (which escalation rungs may
    /// engage on a non-converged solve).
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery_policy = policy;
        self
    }

    /// Selects the solver for the reduced system: exact CG (the default)
    /// or the randomized low-rank (Nyström) path (see [`crate::lowrank`]).
    /// Incompatible with [`LsSvm::with_resume`].
    pub fn with_solver(mut self, solver: SolverSelection) -> Self {
        self.solver = solver;
        self
    }

    /// Trains on an in-memory data set (the `read` component is zero).
    pub fn train(&self, data: &LabeledData<T>) -> Result<TrainOutput<T>, SvmError> {
        self.train_inner(data, std::time::Duration::ZERO, None)
    }

    /// Trains from a LIBSVM data file, timing the `read` component, and
    /// optionally writes the model file (timed as `write`).
    pub fn train_from_file(
        &self,
        train_path: impl AsRef<Path>,
        model_path: Option<&Path>,
    ) -> Result<TrainOutput<T>, SvmError> {
        let t0 = Instant::now();
        let data = read_libsvm_file::<T>(train_path, None)?;
        let read = t0.elapsed();
        self.train_inner(&data, read, model_path)
    }

    /// The fingerprint that must match between the run that wrote a
    /// checkpoint and the run resuming from it: training data (features
    /// *and* labels), kernel, cost, working precision, problem shape,
    /// preconditioning mode, sample weights, plus the caller's salt.
    fn checkpoint_context(&self, data: &LabeledData<T>) -> u64 {
        let mut fp = ContextFingerprint::new()
            .push_kernel(&self.kernel)
            .push_f64(self.cost.to_f64())
            .push_u64(T::BYTES as u64)
            .push_u64(data.points() as u64)
            .push_u64(data.features() as u64)
            .push_u64(u64::from(self.jacobi_preconditioner))
            .push_u64(self.checkpoint_salt);
        for p in 0..data.points() {
            for &v in data.x.row(p) {
                fp = fp.push_f64(v.to_f64());
            }
            fp = fp.push_f64(data.y[p].to_f64());
        }
        fp.finish()
    }

    fn train_inner(
        &self,
        data: &LabeledData<T>,
        read: std::time::Duration,
        model_path: Option<&Path>,
    ) -> Result<TrainOutput<T>, SvmError> {
        let t_total = Instant::now();
        if data.points() < 2 {
            return Err(SvmError::Solver(
                "training needs at least two data points".into(),
            ));
        }
        if self.resume && matches!(self.solver, SolverSelection::LowRank { .. }) {
            return Err(SvmError::Solver(
                "cannot resume a checkpointed run with the low-rank solver: the \
                 checkpoint journal streams exact-CG state only (drop the resume \
                 flag or select the exact solver)"
                    .into(),
            ));
        }
        let mut rec = SpanRecorder::new();
        rec.record(spans::READ, read);

        // the tiling knob overrides what the OpenMP selection carries
        let backend = match (&self.backend, self.cpu_tiling) {
            (BackendSelection::OpenMp { threads, .. }, Some(tiling)) => BackendSelection::OpenMp {
                threads: *threads,
                tiling,
            },
            _ => self.backend.clone(),
        };

        // (2a) transform: 2D row-major → padded column-major SoA. The
        // paper applies this step only for its GPU backends (§IV-E); the
        // CPU backends work on the row-major layout directly.
        let soa = rec.time(spans::TRANSFORM, || match &backend {
            BackendSelection::SimGpu { tiling, .. }
            | BackendSelection::SimGpuRows { tiling, .. }
            | BackendSelection::SimCluster { tiling, .. } => {
                Some(SoAMatrix::from_dense(&data.x, tiling.tile()))
            }
            _ => None,
        });

        // (2b + 3) device setup, upload and CG solve
        let t_cg = Instant::now();
        let t_setup = Instant::now();
        let mut prepared = Prepared::new(&backend, &data.x, soa.as_ref(), &self.kernel, self.cost)?;
        if let Some(sink) = &self.metrics {
            prepared.set_metrics(Arc::clone(sink) as Arc<dyn MetricsSink>);
        }
        if let Some(plan) = &self.fault_plan {
            prepared.install_fault_plan(plan)?;
        }
        if let Some(weights) = &self.sample_weights {
            if weights.len() != data.points() {
                return Err(SvmError::Solver(format!(
                    "{} sample weights for {} data points",
                    weights.len(),
                    data.points()
                )));
            }
            prepared.set_sample_weights(weights, self.cost)?;
        }
        let rhs = reduced_rhs(&data.y);
        rec.record(spans::CG_SETUP, t_setup.elapsed());
        let cg_cfg = CgConfig {
            epsilon: self.epsilon,
            max_iterations: self.max_iterations,
            checkpoint_interval: self.checkpoint_interval,
            ..CgConfig::default()
        };
        let metrics_ref = self.metrics.as_deref().map(|t| t as &dyn MetricsSink);
        let t_solve = Instant::now();
        // diag(Q̃)ᵢ = k(xᵢ,xᵢ) + ridgeᵢ − 2qᵢ + Q_mm, O(m·d) on the host
        let compute_diagonal = || {
            let params = prepared.params();
            (0..params.dim())
                .map(|i| {
                    kernel_row(&self.kernel, data.x.row(i), data.x.row(i)) + params.ridge(i)
                        - T::TWO * params.q[i]
                        + params.q_mm()
                })
                .collect::<Vec<T>>()
        };
        let eager_diagonal = self.jacobi_preconditioner.then(compute_diagonal);
        let jacobi = match &eager_diagonal {
            // Jacobi requested up front: the first attempt already solves
            // preconditioned, exactly as before guardrails existed
            Some(diag) => JacobiDiagonal::Immediate(diag),
            // otherwise the diagonal is only computed if rung 2 engages
            None => JacobiDiagonal::Lazy(&compute_diagonal),
        };
        let mut io_degraded = false;
        let GuardedSolve {
            result: solve,
            total_iterations,
            escalations,
        } = match self.solver {
            SolverSelection::LowRank {
                rank,
                seed,
                strategy,
            } => solve_lowrank(
                &prepared,
                prepared.params(),
                &data.x,
                &self.kernel,
                rank,
                seed,
                strategy,
                &rhs,
                &cg_cfg,
                &self.recovery_policy,
                jacobi,
                metrics_ref,
            )?,
            SolverSelection::Exact => {
                // durable checkpointing: open the sink (and optionally the
                // resume point) before the solve starts
                let mut resume_point = None;
                let journal_sink = match &self.checkpoint_journal {
                    Some(journal) => {
                        let context = self.checkpoint_context(data);
                        if self.resume {
                            resume_point =
                                load_resume_point::<T>(journal, context, rhs.len(), metrics_ref)?;
                        }
                        Some(JournalSink::new(
                            journal.clone(),
                            context,
                            self.metrics
                                .as_ref()
                                .map(|t| Arc::clone(t) as Arc<dyn MetricsSink>),
                        ))
                    }
                    None => None,
                };
                let guarded = solve_with_guardrails_checkpointed(
                    &prepared,
                    &rhs,
                    &cg_cfg,
                    &self.recovery_policy,
                    jacobi,
                    metrics_ref,
                    journal_sink
                        .as_ref()
                        .map(|s| s as &dyn RungCheckpointSink<T>),
                    resume_point.as_ref(),
                );
                io_degraded = journal_sink.as_ref().is_some_and(JournalSink::is_degraded);
                guarded
            }
        };
        rec.record(spans::CG_SOLVE, t_solve.elapsed());
        rec.record(spans::CG, t_cg.elapsed());

        // (4) assemble the model (and optionally write it)
        let t_write = Instant::now();
        let b = bias(prepared.params(), &data.y, &solve.x);
        let alpha = full_alpha(&solve.x);
        // Eq. 15: for the linear kernel the explicit normal vector w is
        // materialized (the paper's third compute kernel, `w_kernel`) so
        // prediction costs O(d) per point instead of O(m·d)
        let linear_w = if matches!(self.kernel, KernelSpec::Linear) {
            prepared.compute_linear_w(&alpha)?
        } else {
            None
        };
        let (pos, neg) = data.class_counts();
        let model = SvmModel {
            kernel: self.kernel,
            labels: data.label_map,
            rho: -b,
            sv: data.x.clone(),
            coef: alpha,
            nr_sv: [pos, neg],
            solver: self.solver.provenance(),
        };
        if let Some(path) = model_path {
            model.save(path)?;
        }
        rec.record(spans::WRITE, t_write.elapsed());
        rec.record(spans::TRAIN, t_total.elapsed() + read);

        let device = prepared.device_report();
        let telemetry = self.metrics.as_ref().map(|t| {
            // the device backend's counters live on-device; fold them into
            // the unified schema now that the run is over
            if let Some(dev) = &device {
                dev.fold_into(&**t);
            }
            rec.flush_into(&**t);
            t.report()
        });

        Ok(TrainOutput {
            model,
            times: ComponentTimes::from_spans(rec.spans()),
            iterations: total_iterations,
            converged: solve.converged,
            outcome: solve.outcome,
            escalations,
            relative_residual: solve.relative_residual().to_f64(),
            backend_name: backend.name(),
            linear_w,
            device,
            telemetry,
            io_degraded,
        })
    }
}

/// Everything a training run produces.
#[derive(Debug)]
pub struct TrainOutput<T> {
    /// The trained model (all `m` training points as support vectors).
    pub model: SvmModel<T>,
    /// Component wall-clock timings.
    pub times: ComponentTimes,
    /// CG iterations performed (summed across all escalation rungs).
    pub iterations: usize,
    /// Whether CG met the ε criterion within its budget.
    pub converged: bool,
    /// Why the solve stopped — [`SolveOutcome::Converged`] on success,
    /// otherwise the classified failure mode of the *last* escalation rung
    /// that ran.
    pub outcome: SolveOutcome,
    /// The recovery rungs that engaged, in order (empty on the happy
    /// path); each also appears as a `recovery` telemetry event.
    pub escalations: Vec<RecoveryKind>,
    /// Final `‖r‖/‖r₀‖`.
    pub relative_residual: f64,
    /// Human-readable backend description.
    pub backend_name: String,
    /// The explicit normal vector `w = Σᵢ αᵢ·xᵢ` (Eq. 15), materialized
    /// for the linear kernel on every backend (the paper's `w_kernel` on
    /// the simulated devices); enables O(d) prediction via
    /// [`predict_linear`].
    pub linear_w: Option<Vec<T>>,
    /// Device counters (simulated backends only).
    pub device: Option<DeviceReport>,
    /// The unified observability report (`Some` iff a sink was attached
    /// via [`LsSvm::with_metrics`]): per-iteration CG telemetry, unified
    /// kernel-launch counters and hierarchical timing spans.
    pub telemetry: Option<TelemetryReport>,
    /// True when persistent storage failures disabled durable
    /// checkpointing partway through the solve (an `io_degraded`
    /// telemetry event carries the detail). The model itself is
    /// unaffected — the run just lost its crash insurance.
    pub io_degraded: bool,
}

/// Trains with the given configuration — convenience wrapper around
/// [`LsSvm::train`].
pub fn train<T: AtomicScalar>(
    data: &LabeledData<T>,
    config: &LsSvm<T>,
) -> Result<TrainOutput<T>, SvmError> {
    config.train(data)
}

/// Decision values `f(x) = Σᵢ coefᵢ·k(svᵢ, x) + b` for every row of `x`
/// (Eq. 10), computed in parallel over the test points with the panel
/// micro-kernel: each feature pass evaluates `PANEL_MR` support vectors
/// against the test point at once.
///
/// Panics on a feature-count mismatch; long-lived callers that must never
/// panic on untrusted query batches use [`try_predict_decision_values`].
pub fn predict_decision_values<T: Real>(model: &SvmModel<T>, x: &DenseMatrix<T>) -> Vec<T> {
    assert_eq!(
        x.cols(),
        model.features(),
        "test data has {} features, model expects {}",
        x.cols(),
        model.features()
    );
    decision_values_panel(model, x)
}

/// Fallible [`predict_decision_values`]: returns a structured
/// [`SvmError::Solver`] instead of panicking when the query batch is
/// empty, has zero-feature rows, or does not match the model's feature
/// count — the contract the serving layer needs for untrusted requests.
pub fn try_predict_decision_values<T: Real>(
    model: &SvmModel<T>,
    x: &DenseMatrix<T>,
) -> Result<Vec<T>, SvmError> {
    validate_query_batch(model.features(), x)?;
    Ok(decision_values_panel(model, x))
}

/// Fallible [`predict_labels`] with the same validation as
/// [`try_predict_decision_values`].
pub fn try_predict_labels<T: Real>(
    model: &SvmModel<T>,
    x: &DenseMatrix<T>,
) -> Result<Vec<i32>, SvmError> {
    Ok(try_predict_decision_values(model, x)?
        .into_iter()
        .map(|d| model.decide(d))
        .collect())
}

/// Shared query-batch validation for the fallible prediction entry
/// points: rejects empty batches, zero-feature rows and feature-count
/// mismatches with a structured error instead of a panic.
pub(crate) fn validate_query_batch<T: Real>(
    model_features: usize,
    x: &DenseMatrix<T>,
) -> Result<(), SvmError> {
    if x.rows() == 0 {
        return Err(SvmError::Solver("prediction batch is empty".into()));
    }
    if x.cols() == 0 {
        return Err(SvmError::Solver(
            "prediction rows have zero features".into(),
        ));
    }
    if x.cols() != model_features {
        return Err(SvmError::Solver(format!(
            "query has {} features, model expects {}",
            x.cols(),
            model_features
        )));
    }
    Ok(())
}

/// The panel-microkernel decision-value sweep shared by the panicking and
/// fallible entry points.
fn decision_values_panel<T: Real>(model: &SvmModel<T>, x: &DenseMatrix<T>) -> Vec<T> {
    use crate::kernel::{kernel_panel, PANEL_MR};
    let b = model.bias();
    let m = model.sv.rows();
    let isa = crate::simd::Isa::select();
    (0..x.rows())
        .into_par_iter()
        .map(|p| {
            let row = x.row(p);
            let mut acc = b;
            let mut i = 0;
            while i < m {
                let h = (m - i).min(PANEL_MR);
                let mut ra: [&[T]; PANEL_MR] = [row; PANEL_MR];
                for (a, slot) in ra.iter_mut().enumerate().take(h) {
                    *slot = model.sv.row(i + a);
                }
                let panel = kernel_panel(&model.kernel, isa, &ra[..h], &[row]);
                for (a, prow) in panel.iter().enumerate().take(h) {
                    acc = model.coef[i + a].mul_add(prow[0], acc);
                }
                i += h;
            }
            acc
        })
        .collect()
}

/// Predicted ±1 signs for every row of `x`.
pub fn predict<T: Real>(model: &SvmModel<T>, x: &DenseMatrix<T>) -> Vec<T> {
    predict_decision_values(model, x)
        .into_iter()
        .map(|d| if d.to_f64() >= 0.0 { T::ONE } else { -T::ONE })
        .collect()
}

/// Predicted original class labels for every row of `x`.
pub fn predict_labels<T: Real>(model: &SvmModel<T>, x: &DenseMatrix<T>) -> Vec<i32> {
    predict_decision_values(model, x)
        .into_iter()
        .map(|d| model.decide(d))
        .collect()
}

/// Fast linear-kernel prediction from the explicit normal vector:
/// `f(x) = ⟨w, x⟩ + b` — O(d) per point instead of the O(m·d) kernel sum
/// (Eq. 4 of the paper). `bias` is `−rho`. Computed in parallel over
/// `PANEL_MR`-point panels sharing one feature pass over `w`.
pub fn predict_linear<T: Real>(w: &[T], bias: T, x: &DenseMatrix<T>) -> Vec<T> {
    use crate::kernel::PANEL_MR;
    assert_eq!(
        w.len(),
        x.cols(),
        "w has {} features, data {}",
        w.len(),
        x.cols()
    );
    let isa = crate::simd::Isa::select();
    let mut out = vec![T::ZERO; x.rows()];
    out.par_chunks_mut(PANEL_MR)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let base = ci * PANEL_MR;
            let mut ra: [&[T]; PANEL_MR] = [w; PANEL_MR];
            for (a, slot) in ra.iter_mut().enumerate().take(chunk.len()) {
                *slot = x.row(base + a);
            }
            let panel = crate::simd::panel_dot(isa, &ra[..chunk.len()], &[w]);
            for (a, o) in chunk.iter_mut().enumerate() {
                *o = panel[a][0] + bias;
            }
        });
    out
}

/// Fraction of correctly classified points of a labeled data set.
pub fn accuracy<T: Real>(model: &SvmModel<T>, data: &LabeledData<T>) -> f64 {
    let signs = predict(model, &data.x);
    let correct = signs
        .iter()
        .zip(&data.y)
        .filter(|(p, y)| p.to_f64() == y.to_f64())
        .count();
    correct as f64 / data.points() as f64
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};
    use plssvm_simgpu::hw;
    use plssvm_simgpu::Backend as DeviceApi;

    fn planes(points: usize, features: usize, seed: u64) -> LabeledData<f64> {
        generate_planes(
            &PlanesConfig::new(points, features, seed)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap()
    }

    #[test]
    fn trains_separable_problem_to_high_accuracy() {
        let data = planes(120, 8, 1);
        let out = LsSvm::new().with_epsilon(1e-6).train(&data).unwrap();
        assert!(out.converged);
        assert!(out.iterations >= 1);
        let acc = accuracy(&out.model, &data);
        assert!(acc >= 0.97, "accuracy {acc}");
    }

    #[test]
    fn all_backends_reach_same_accuracy() {
        let data = planes(80, 6, 2);
        let mut accs = Vec::new();
        for backend in [
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2),
        ] {
            let out = LsSvm::new()
                .with_epsilon(1e-8)
                .with_backend(backend)
                .train(&data)
                .unwrap();
            accs.push(accuracy(&out.model, &data));
        }
        for w in accs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12, "{accs:?}");
        }
        assert!(accs[0] >= 0.97);
    }

    #[test]
    fn backends_produce_nearly_identical_models() {
        let data = planes(60, 5, 3);
        let serial = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::Serial)
            .train(&data)
            .unwrap();
        let device = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::sim_gpu(hw::V100, DeviceApi::OpenCl))
            .train(&data)
            .unwrap();
        assert!((serial.model.rho - device.model.rho).abs() < 1e-6);
        for (a, b) in serial.model.coef.iter().zip(&device.model.coef) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rbf_kernel_solves_nonlinear_problem() {
        // XOR-like data: not linearly separable, easy for RBF.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 5.0 - 1.0, j as f64 / 5.0 - 1.0);
                rows.push(vec![a, b]);
                y.push(if (a > 0.0) == (b > 0.0) { 1.0 } else { -1.0 });
            }
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap();
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 2.0 })
            .with_cost(10.0)
            .with_epsilon(1e-8)
            .train(&data)
            .unwrap();
        let acc = accuracy(&out.model, &data);
        assert!(acc >= 0.97, "rbf accuracy {acc}");

        // the linear kernel cannot do much better than chance here
        let lin = LsSvm::new().with_epsilon(1e-8).train(&data).unwrap();
        assert!(accuracy(&lin.model, &data) < 0.75);
    }

    #[test]
    fn model_has_all_points_as_support_vectors() {
        let data = planes(30, 4, 4);
        let out = LsSvm::new().train(&data).unwrap();
        assert_eq!(out.model.total_sv(), 30);
        assert_eq!(out.model.coef.len(), 30);
        // the eliminated constraint: Σ αᵢ = 0
        let s: f64 = out.model.coef.iter().sum();
        assert!(s.abs() < 1e-8);
    }

    #[test]
    fn tighter_epsilon_more_iterations_not_worse_accuracy() {
        let data = planes(100, 6, 5);
        let loose = LsSvm::new().with_epsilon(1e-1).train(&data).unwrap();
        let tight = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
        assert!(tight.iterations >= loose.iterations);
        assert!(tight.relative_residual <= 1e-10);
    }

    #[test]
    fn file_roundtrip_preserves_predictions() {
        let data = planes(40, 5, 6);
        let out = LsSvm::new().with_epsilon(1e-8).train(&data).unwrap();
        let dir = std::env::temp_dir().join("plssvm_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trained.model");
        out.model.save(&path).unwrap();
        let loaded = SvmModel::<f64>::load(&path).unwrap();
        let a = predict_labels(&out.model, &data.x);
        let b = predict_labels(&loaded, &data.x);
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn train_from_file_times_read_and_write() {
        let data = planes(30, 4, 7);
        let dir = std::env::temp_dir().join("plssvm_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let train_path = dir.join("train.libsvm");
        let model_path = dir.join("out.model");
        plssvm_data::write_libsvm_file(&train_path, &data, true).unwrap();

        let out = LsSvm::<f64>::new()
            .train_from_file(&train_path, Some(&model_path))
            .unwrap();
        assert!(out.times.read.as_nanos() > 0);
        assert!(out.times.cg.as_nanos() > 0);
        assert!(model_path.exists());
        assert!(out.times.total >= out.times.cg);
        std::fs::remove_file(&train_path).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn device_backend_reports_counters() {
        let data = planes(50, 8, 8);
        let out = LsSvm::new()
            .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
            .train(&data)
            .unwrap();
        let report = out.device.expect("device report");
        assert_eq!(report.per_device.len(), 1);
        let r = &report.per_device[0];
        // one q_kernel + one svm_kernel per CG iteration (plus refreshes)
        assert!(r.per_kernel["svm_kernel"].launches as usize >= out.iterations);
        assert!(r.total_flops > 0);
        assert!(report.sim_parallel_time_s > 0.0);
        assert!(report.peak_memory_per_device_bytes > 0);
    }

    #[test]
    fn jacobi_preconditioned_training_matches_plain() {
        let data = planes(80, 6, 30);
        let plain = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
        let pcg = LsSvm::new()
            .with_epsilon(1e-10)
            .with_jacobi_preconditioner(true)
            .train(&data)
            .unwrap();
        assert!(pcg.converged);
        assert!((plain.model.rho - pcg.model.rho).abs() < 1e-6);
        assert!((accuracy(&plain.model, &data) - accuracy(&pcg.model, &data)).abs() < 1e-12);
    }

    #[test]
    fn jacobi_helps_on_badly_scaled_ridge() {
        // extreme per-sample weights make diag(Q̃) span orders of
        // magnitude (ridge 1/(C·vᵢ) from 1 to 10⁴) — exactly the structure
        // Jacobi preconditioning removes
        let data = planes(100, 6, 31);
        let weights: Vec<f64> = (0..100)
            .map(|i| if i % 4 == 0 { 1e-4 } else { 1.0 })
            .collect();
        let cfg = |pc: bool| {
            LsSvm::new()
                .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
                .with_epsilon(1e-8)
                .with_sample_weights(weights.clone())
                .with_jacobi_preconditioner(pc)
        };
        let plain = cfg(false).train(&data).unwrap();
        let pcg = cfg(true).train(&data).unwrap();
        assert!(pcg.converged);
        assert!(
            pcg.iterations < plain.iterations || !plain.converged,
            "pcg {} vs plain {} iterations",
            pcg.iterations,
            plain.iterations
        );
        // both reach the same solution when both converge
        if plain.converged {
            assert!((plain.model.rho - pcg.model.rho).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_w_matches_kernel_predictions() {
        let data = planes(50, 6, 20);
        for backend in [
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::SparseCpu { threads: None },
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 3),
        ] {
            let out = LsSvm::new()
                .with_epsilon(1e-10)
                .with_backend(backend.clone())
                .train(&data)
                .unwrap();
            let w = out.linear_w.as_ref().expect("linear w");
            assert_eq!(w.len(), data.features());
            // w = Σ αᵢ xᵢ computed on the host as ground truth
            for f in 0..data.features() {
                let expected: f64 = (0..data.points())
                    .map(|p| out.model.coef[p] * data.x.get(p, f))
                    .sum();
                assert!((w[f] - expected).abs() < 1e-9, "{backend:?} w[{f}]");
            }
            // fast prediction equals the kernel-sum prediction
            let fast = predict_linear(w, out.model.bias(), &data.x);
            let slow = predict_decision_values(&out.model, &data.x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn nonlinear_kernels_have_no_linear_w() {
        let data = planes(20, 4, 21);
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .train(&data)
            .unwrap();
        assert!(out.linear_w.is_none());
    }

    #[test]
    fn device_backend_launches_three_kernel_kinds() {
        // the paper's profiling claim: "our implementation only spawns 3
        // compute kernels" — q_kernel, svm_kernel, w_kernel
        let data = planes(40, 6, 22);
        let out = LsSvm::new()
            .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
            .train(&data)
            .unwrap();
        let report = out.device.unwrap();
        let kernels: Vec<&String> = report.per_device[0].per_kernel.keys().collect();
        assert_eq!(kernels.len(), 3, "{kernels:?}");
        assert!(report.per_device[0].per_kernel.contains_key("w_kernel"));
        assert_eq!(report.per_device[0].per_kernel["w_kernel"].launches, 1);
    }

    #[test]
    fn minimal_two_point_problem_trains_on_every_backend() {
        // m = 2 → the reduced system is 1x1; every backend and kernel must
        // handle the degenerate tiling (single partial tile)
        let x = DenseMatrix::from_rows(vec![vec![1.0f64, 0.5], vec![-1.0, -0.5]]).unwrap();
        let data = LabeledData::new(x, vec![1.0, -1.0]).unwrap();
        for backend in [
            BackendSelection::Serial,
            BackendSelection::openmp(Some(2)),
            BackendSelection::SparseCpu { threads: None },
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2),
            BackendSelection::sim_multi_gpu_rows(hw::A100, DeviceApi::Cuda, 2),
        ] {
            for kernel in [KernelSpec::Linear, KernelSpec::Rbf { gamma: 1.0 }] {
                if matches!(kernel, KernelSpec::Rbf { .. })
                    && matches!(backend, BackendSelection::SimGpu { devices: 2, .. })
                {
                    continue; // feature-split multi-GPU is linear-only
                }
                let out = LsSvm::new()
                    .with_kernel(kernel)
                    .with_epsilon(1e-10)
                    .with_backend(backend.clone())
                    .train(&data)
                    .unwrap();
                assert!(out.converged, "{kernel:?} on {}", backend.name());
                assert_eq!(
                    accuracy(&out.model, &data),
                    1.0,
                    "{kernel:?} on {}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn three_point_training_with_duplicates() {
        // duplicated points keep Q̃ SPD thanks to the ridge
        let x = DenseMatrix::from_rows(vec![vec![1.0f64, 1.0], vec![1.0, 1.0], vec![-1.0, -1.0]])
            .unwrap();
        let data = LabeledData::new(x, vec![1.0, 1.0, -1.0]).unwrap();
        let out = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
        assert!(out.converged);
        assert_eq!(accuracy(&out.model, &data), 1.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let one = LabeledData::new(
            DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap(),
            vec![1.0],
        )
        .unwrap();
        assert!(LsSvm::new().train(&one).is_err());
    }

    #[test]
    fn single_class_data_trains_and_predicts_that_class() {
        let x = DenseMatrix::from_rows(vec![vec![1.0f64, 0.0], vec![0.9, 0.1], vec![1.1, -0.1]])
            .unwrap();
        let data = LabeledData::new(x, vec![1.0, 1.0, 1.0]).unwrap();
        let out = LsSvm::new().with_epsilon(1e-8).train(&data).unwrap();
        assert_eq!(accuracy(&out.model, &data), 1.0);
    }

    #[test]
    fn prediction_feature_mismatch_panics() {
        let data = planes(20, 4, 9);
        let out = LsSvm::new().train(&data).unwrap();
        let wrong = DenseMatrix::from_rows(vec![vec![1.0f64, 2.0]]).unwrap();
        let result = std::panic::catch_unwind(|| predict(&out.model, &wrong));
        assert!(result.is_err());
    }

    #[test]
    fn try_predict_rejects_degenerate_batches_without_panicking() {
        let data = planes(20, 4, 9);
        let out = LsSvm::new().train(&data).unwrap();
        // empty batch: structured error, not a panic or a silent empty vec
        let empty = DenseMatrix::<f64>::zeros(0, 4);
        let err = try_predict_decision_values(&out.model, &empty).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        // zero-feature rows
        let zero_features = DenseMatrix::<f64>::zeros(3, 0);
        let err = try_predict_decision_values(&out.model, &zero_features).unwrap_err();
        assert!(err.to_string().contains("zero features"), "{err}");
        // feature-count mismatch carries both counts
        let wrong = DenseMatrix::from_rows(vec![vec![1.0f64, 2.0]]).unwrap();
        let err = try_predict_labels(&out.model, &wrong).unwrap_err();
        assert!(
            err.to_string().contains('2') && err.to_string().contains('4'),
            "{err}"
        );
        // a valid batch matches the panicking entry point bit-for-bit
        let ok = try_predict_decision_values(&out.model, &data.x).unwrap();
        assert_eq!(ok, predict_decision_values(&out.model, &data.x));
        assert_eq!(
            try_predict_labels(&out.model, &data.x).unwrap(),
            predict_labels(&out.model, &data.x)
        );
    }

    #[test]
    fn journaled_training_is_unperturbed_and_resumes_bit_exactly() {
        let data = planes(80, 6, 44);
        let dir = std::env::temp_dir().join(format!("plssvm_svm_journal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 4).unwrap();
        let reference = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
        let journaled = LsSvm::new()
            .with_epsilon(1e-10)
            .with_checkpoint_interval(5)
            .with_checkpoint_journal(journal.clone())
            .train(&data)
            .unwrap();
        // streaming snapshots to disk must not perturb the numerics
        assert_eq!(reference.model.coef, journaled.model.coef);
        assert_eq!(reference.model.rho, journaled.model.rho);
        assert!(!journal.is_empty().unwrap());

        // resuming from the newest snapshot replays only the tail of the
        // solve and still lands on the bit-identical model
        let resumed = LsSvm::new()
            .with_epsilon(1e-10)
            .with_checkpoint_interval(5)
            .with_checkpoint_journal(journal.clone())
            .with_resume(true)
            .train(&data)
            .unwrap();
        assert_eq!(resumed.model.coef, reference.model.coef);
        assert_eq!(resumed.model.rho, reference.model.rho);
        // the iteration counter is absolute (it continues from the
        // snapshot), so the resumed run reports the same total
        assert_eq!(resumed.iterations, reference.iterations);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_against_changed_context_is_rejected() {
        let data = planes(40, 4, 45);
        let dir = std::env::temp_dir().join(format!("plssvm_svm_ctx_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        LsSvm::new()
            .with_epsilon(1e-10)
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal.clone())
            .train(&data)
            .unwrap();
        // different cost → different system → the journal must refuse
        let err = LsSvm::new()
            .with_epsilon(1e-10)
            .with_cost(7.0)
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal.clone())
            .with_resume(true)
            .train(&data)
            .unwrap_err();
        assert!(
            matches!(&err, SvmError::Checkpoint(e) if e.kind() == "context_mismatch"),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_empty_journal_is_a_fresh_start() {
        let data = planes(30, 4, 46);
        let dir = std::env::temp_dir().join(format!("plssvm_svm_fresh_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        let reference = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
        let out = LsSvm::new()
            .with_epsilon(1e-10)
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal)
            .with_resume(true)
            .train(&data)
            .unwrap();
        assert_eq!(out.model.coef, reference.model.coef);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lowrank_solver_matches_exact_training() {
        let data = planes(100, 6, 50);
        let exact = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .with_epsilon(1e-8)
            .train(&data)
            .unwrap();
        let lowrank = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .with_epsilon(1e-8)
            .with_solver(SolverSelection::lowrank(24))
            .train(&data)
            .unwrap();
        assert!(lowrank.converged, "{:?}", lowrank.outcome);
        assert!((exact.model.rho - lowrank.model.rho).abs() < 1e-5);
        assert_eq!(
            accuracy(&exact.model, &data),
            accuracy(&lowrank.model, &data)
        );
    }

    #[test]
    fn lowrank_resume_is_rejected_with_structured_error() {
        let data = planes(30, 4, 51);
        let dir = std::env::temp_dir().join(format!("plssvm_svm_lr_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        let err = LsSvm::new()
            .with_solver(SolverSelection::lowrank(8))
            .with_checkpoint_journal(journal)
            .with_resume(true)
            .train(&data)
            .unwrap_err();
        assert!(
            matches!(&err, SvmError::Solver(msg) if msg.contains("resume")),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn f32_training_works() {
        let data = generate_planes::<f32>(
            &PlanesConfig::new(60, 4, 10)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap();
        let out = LsSvm::<f32>::new()
            .with_epsilon(1e-4f32)
            .train(&data)
            .unwrap();
        assert!(accuracy(&out.model, &data) >= 0.95);
    }
}
