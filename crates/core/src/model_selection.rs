//! Hyperparameter grid search — the `grid.py` companion tool of LIBSVM,
//! as a library function over the LS-SVM trainer.
//!
//! LIBSVM's recommended workflow searches `(C, γ)` on an exponential grid
//! with cross-validation; PLSSVM inherits that workflow as a drop-in
//! replacement. [`grid_search`] runs it with the stratified k-fold
//! machinery of [`crate::validation`].

use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;
use plssvm_simgpu::device::AtomicScalar;

use crate::error::SvmError;
use crate::svm::LsSvm;
use crate::validation::cross_validate;

/// The search space.
#[derive(Debug, Clone)]
pub struct GridSearchConfig<T> {
    /// Candidate `C` values. LIBSVM's `grid.py` default is
    /// `2^-5 … 2^15`; see [`GridSearchConfig::libsvm_default`].
    pub costs: Vec<T>,
    /// Candidate `γ` values (ignored for the linear kernel).
    pub gammas: Vec<T>,
    /// Cross-validation folds (grid.py default 5).
    pub folds: usize,
    /// RNG seed for the fold assignment.
    pub seed: u64,
}

impl<T: Real> GridSearchConfig<T> {
    /// A reduced version of `grid.py`'s default exponential grid
    /// (`C ∈ 2^{-3..11 step 2}`, `γ ∈ 2^{-11..1 step 2}`), sized for the
    /// LS-SVM where every candidate costs a full solve.
    pub fn libsvm_default() -> Self {
        Self {
            costs: (-3..=11)
                .step_by(2)
                .map(|e| T::from_f64(2f64.powi(e)))
                .collect(),
            gammas: (-11..=1)
                .step_by(2)
                .map(|e| T::from_f64(2f64.powi(e)))
                .collect(),
            folds: 5,
            seed: 42,
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint<T> {
    /// The candidate `C`.
    pub cost: T,
    /// The candidate kernel (γ filled in for RBF/poly/sigmoid).
    pub kernel: KernelSpec<T>,
    /// Cross-validation accuracy at this point.
    pub cv_accuracy: f64,
}

/// Grid search outcome: the winner plus the full table.
#[derive(Debug, Clone)]
pub struct GridSearchResult<T> {
    /// The best grid point (ties: first encountered wins, like grid.py).
    pub best: GridPoint<T>,
    /// Every evaluated point, in evaluation order.
    pub evaluated: Vec<GridPoint<T>>,
}

/// Replaces the γ of a kernel spec (identity for the linear kernel).
fn with_gamma<T: Real>(kernel: &KernelSpec<T>, gamma: T) -> KernelSpec<T> {
    match *kernel {
        KernelSpec::Linear => KernelSpec::Linear,
        KernelSpec::Polynomial { degree, coef0, .. } => KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        },
        KernelSpec::Rbf { .. } => KernelSpec::Rbf { gamma },
        KernelSpec::Sigmoid { coef0, .. } => KernelSpec::Sigmoid { gamma, coef0 },
    }
}

/// Searches `(C, γ)` by cross-validated accuracy. The `template` trainer
/// supplies everything else (kernel kind, backend, ε); for the linear
/// kernel only `C` is swept.
pub fn grid_search<T: AtomicScalar>(
    data: &LabeledData<T>,
    template: &LsSvm<T>,
    config: &GridSearchConfig<T>,
) -> Result<GridSearchResult<T>, SvmError> {
    if config.costs.is_empty() {
        return Err(SvmError::Solver("grid search needs at least one C".into()));
    }
    let gammas: &[T] = if matches!(template.kernel, KernelSpec::Linear) {
        &[T::ONE][..] // placeholder; γ unused
    } else {
        if config.gammas.is_empty() {
            return Err(SvmError::Solver(
                "grid search needs at least one gamma for nonlinear kernels".into(),
            ));
        }
        &config.gammas
    };

    let mut evaluated = Vec::with_capacity(config.costs.len() * gammas.len());
    let mut best: Option<GridPoint<T>> = None;
    for &cost in &config.costs {
        for &gamma in gammas {
            let kernel = with_gamma(&template.kernel, gamma);
            let trainer = template.clone().with_kernel(kernel).with_cost(cost);
            let cv = cross_validate(data, &trainer, config.folds, config.seed)?;
            let point = GridPoint {
                cost,
                kernel,
                cv_accuracy: cv.accuracy,
            };
            if best
                .as_ref()
                .map(|b| point.cv_accuracy > b.cv_accuracy)
                .unwrap_or(true)
            {
                best = Some(point.clone());
            }
            evaluated.push(point);
        }
    }
    Ok(GridSearchResult {
        best: best.expect("at least one point evaluated"),
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::dense::DenseMatrix;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    #[test]
    fn linear_grid_sweeps_only_costs() {
        let data = generate_planes::<f64>(
            &PlanesConfig::new(60, 4, 1)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap();
        let config = GridSearchConfig {
            costs: vec![0.1, 1.0, 10.0],
            gammas: vec![0.1, 1.0],
            folds: 3,
            seed: 1,
        };
        let result = grid_search(&data, &LsSvm::new().with_epsilon(1e-6), &config).unwrap();
        assert_eq!(result.evaluated.len(), 3); // gammas ignored for linear
        assert!(result.best.cv_accuracy >= 0.9);
    }

    #[test]
    fn rbf_grid_finds_a_sensible_gamma() {
        // XOR-like data: tiny gamma ≈ linear (fails), moderate gamma wins
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (i as f64 / 4.0 - 1.0, j as f64 / 4.0 - 1.0);
                rows.push(vec![a, b]);
                y.push(if (a > 0.0) == (b > 0.0) { 1.0 } else { -1.0 });
            }
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap();
        let template = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 1.0 })
            .with_epsilon(1e-6);
        let config = GridSearchConfig {
            costs: vec![10.0],
            gammas: vec![1e-4, 2.0],
            folds: 4,
            seed: 2,
        };
        let result = grid_search(&data, &template, &config).unwrap();
        assert_eq!(result.evaluated.len(), 2);
        assert!(matches!(
            result.best.kernel,
            KernelSpec::Rbf { gamma } if gamma == 2.0
        ));
        // the winner must clearly beat the quasi-linear candidate
        let worst = result
            .evaluated
            .iter()
            .map(|p| p.cv_accuracy)
            .fold(f64::INFINITY, f64::min);
        assert!(result.best.cv_accuracy > worst + 0.15);
    }

    #[test]
    fn libsvm_default_grid_shape() {
        let g = GridSearchConfig::<f64>::libsvm_default();
        assert_eq!(g.costs.len(), 8);
        assert_eq!(g.gammas.len(), 7);
        assert_eq!(g.folds, 5);
        assert_eq!(g.costs[0], 0.125);
        assert_eq!(*g.costs.last().unwrap(), 2048.0);
    }

    #[test]
    fn empty_grids_rejected() {
        let data = generate_planes::<f64>(&PlanesConfig::new(20, 3, 3)).unwrap();
        let empty_costs = GridSearchConfig {
            costs: vec![],
            gammas: vec![1.0],
            folds: 2,
            seed: 0,
        };
        assert!(grid_search(&data, &LsSvm::new(), &empty_costs).is_err());
        let empty_gammas = GridSearchConfig {
            costs: vec![1.0],
            gammas: vec![],
            folds: 2,
            seed: 0,
        };
        let rbf = LsSvm::new().with_kernel(KernelSpec::Rbf { gamma: 1.0 });
        assert!(grid_search(&data, &rbf, &empty_gammas).is_err());
    }
}
