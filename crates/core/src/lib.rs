//! PLSSVM core — the Parallel Least Squares Support Vector Machine.
//!
//! Training an LS-SVM reduces to solving one symmetric positive definite
//! system of linear equations (§II-F of the paper):
//!
//! ```text
//! Q̃ · α̃ = ȳ − y_m·1,        Q̃ᵢⱼ = k(xᵢ,xⱼ) + δᵢⱼ/C − k(x_m,xⱼ) − k(xᵢ,x_m) + k(x_m,x_m) + 1/C
//! ```
//!
//! solved with Conjugate Gradients where `Q̃` is never materialized — every
//! entry is recomputed from the kernel function on each use (§III-B). The
//! expensive implicit matrix–vector product runs on an interchangeable
//! [`backend`]: a serial reference CPU implementation, a multi-threaded
//! "OpenMP" implementation, or the simulated GPGPU device(s) of
//! `plssvm-simgpu` (standing in for the paper's CUDA/OpenCL/SYCL backends,
//! including the feature-wise multi-GPU split of §III-C-5).
//!
//! Entry points: [`svm::train`], [`svm::predict`], [`svm::accuracy`].

#![warn(missing_docs)]

pub mod backend;
pub mod cg;
pub mod checkpoint;
pub mod error;
pub mod guard;
pub mod kernel;
pub mod lowrank;
pub mod matrix_free;
pub mod model_selection;
pub mod multiclass;
pub mod regression;
pub mod resilience;
pub mod simd;
pub mod svm;
pub mod timing;
pub mod trace;
pub mod validation;
pub mod weighted;

pub use error::SvmError;
pub use svm::{
    accuracy, predict, predict_decision_values, predict_labels, train, try_predict_decision_values,
    try_predict_labels, LsSvm, TrainOutput,
};

/// Convenient glob-import surface for downstream users.
pub mod prelude {
    pub use crate::backend::BackendSelection;
    pub use crate::cg::SolveOutcome;
    pub use crate::checkpoint::{ContextFingerprint, JournalSink};
    pub use crate::guard::RecoveryPolicy;
    pub use crate::lowrank::{LandmarkStrategy, SolverSelection};
    pub use crate::model_selection::{grid_search, GridSearchConfig, GridSearchResult};
    pub use crate::multiclass::{
        train_multiclass, train_multiclass_with_outcomes, MultiClassModel, MultiClassStrategy,
        MultiClassTrainOutput,
    };
    pub use crate::regression::{
        mean_squared_error, predict_values, r_squared, try_predict_values, LsSvr,
    };
    pub use crate::simd::Isa;
    pub use crate::svm::{
        accuracy, predict, predict_labels, predict_linear, train, try_predict_decision_values,
        try_predict_labels, LsSvm, TrainOutput,
    };
    pub use crate::trace::{MetricsSink, Telemetry, TelemetryReport};
    pub use crate::validation::{cross_validate, CvResult};
    pub use crate::weighted::{robust_weights, train_robust, RobustTrainOutput};
    pub use plssvm_data::libsvm::{
        read_libsvm_file, write_libsvm_file, LabeledData, RegressionData,
    };
    pub use plssvm_data::model::{KernelSpec, SvmModel, SvrModel};
    pub use plssvm_data::Real;
}
