//! Solver guardrails: the automatic escalation ladder.
//!
//! [`crate::cg`] classifies *why* a solve stopped ([`SolveOutcome`]); this
//! module decides *what to do about it*. When a solve comes back
//! non-converged, [`solve_with_guardrails`] walks an escalation ladder
//! driven by a [`RecoveryPolicy`]:
//!
//! 1. **Restart** — re-derive the exact residual `b − A·x` at the current
//!    iterate and restart the recurrence from it (stalls are often caused
//!    by accumulated recurrence drift, which a restart cancels for free).
//! 2. **Precondition** — enable the Jacobi preconditioner (diagonal
//!    scaling), restarting from the current iterate.
//! 3. **Precision escalation** — for working precisions narrower than
//!    f64 (`T::BYTES < 8`), wrap the backend in an f64
//!    iterative-refinement outer loop: the iterate and the residual
//!    accumulation live in f64, while every heavy matvec still runs
//!    through the original working-precision backend (the paper's >92 %
//!    of runtime stays in the fast precision).
//!
//! Each rung fires a `recovery` telemetry event
//! ([`RecoveryKind::Restart`] / [`RecoveryKind::Precondition`] /
//! [`RecoveryKind::PrecisionEscalation`]), so a training run either
//! succeeds untouched, degrades with a recorded reason, or fails with a
//! classified outcome — never silently.
//!
//! The ladder only engages on non-convergence: a solve that converges on
//! the first attempt takes exactly the same code path (and performs
//! bit-identical arithmetic) as it did before guardrails existed.
//!
//! The randomized low-rank solver ([`crate::lowrank`]) sits *in front of*
//! this ladder as an optional pre-ladder: Nyström direct solve →
//! [`RecoveryKind::Precondition`] → Nyström-preconditioned CG →
//! [`RecoveryKind::SolverFallback`] → this exact ladder, started fresh.
//! Its transitions are prepended to [`GuardedSolve::escalations`], so the
//! full recovery history reads in chronological order regardless of which
//! solver the run started on.

use plssvm_data::Real;

use crate::cg::{
    conjugate_gradients_checkpointed, BreakdownKind, CgConfig, CgResult, CgState,
    CheckpointSink as CgCheckpointSink, LinOp, SolveOutcome,
};
use crate::kernel::dot;
use crate::trace::{CgOutcomeSample, MetricsSink, RecoveryKind, RecoverySample};

/// Stable rung identifiers persisted inside durable checkpoint snapshots,
/// so a resumed run re-enters the escalation ladder at the rung that was
/// active when the process died instead of redoing earlier rungs.
pub mod rungs {
    /// The first, unescalated solve.
    pub const PRIMARY: u8 = 0;
    /// Rung 1: restart from the exact residual.
    pub const RESTART: u8 = 1;
    /// Rung 2: Jacobi-preconditioned restart.
    pub const JACOBI: u8 = 2;
    /// Rung 3: f64 iterative refinement.
    pub const REFINEMENT: u8 = 3;
}

/// A checkpoint destination that records which escalation rung each
/// snapshot belongs to. The durable journal implements this; the ladder
/// wraps it into a per-rung [`CgCheckpointSink`] for the inner solves.
pub trait RungCheckpointSink<T: Real>: Sync {
    /// Persists one snapshot taken while `rung` was active.
    fn persist(&self, rung: u8, state: &CgState<T>);
}

/// Adapts a [`RungCheckpointSink`] to the rung-unaware hook of
/// [`crate::cg`], pinning the rung the surrounding ladder step is on.
struct RungAdapter<'a, T: Real> {
    inner: &'a dyn RungCheckpointSink<T>,
    rung: u8,
}

impl<T: Real> CgCheckpointSink<T> for RungAdapter<'_, T> {
    fn persist(&self, state: &CgState<T>) {
        self.inner.persist(self.rung, state);
    }
}

/// A recovered checkpoint: the saved CG state plus the escalation rung it
/// was taken on.
#[derive(Debug, Clone)]
pub struct ResumePoint<T> {
    /// Which rung was active when the snapshot was written (see [`rungs`]).
    pub rung: u8,
    /// The saved solver state.
    pub state: CgState<T>,
}

/// Which rungs of the escalation ladder may engage, and how hard the
/// precision-escalation rung tries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Rung 1: restart from the current iterate with the exact residual.
    pub restart: bool,
    /// Rung 2: enable the Jacobi preconditioner (when a diagonal is
    /// available and strictly positive).
    pub jacobi: bool,
    /// Rung 3: escalate `T::BYTES < 8` solves to an f64
    /// iterative-refinement outer loop over the working-precision backend.
    pub precision_escalation: bool,
    /// Maximum outer refinement corrections before giving up with
    /// [`SolveOutcome::IterationBudget`].
    pub refinement_max_outer: usize,
    /// Relative tolerance of each inner working-precision correction
    /// solve. Loose on purpose: refinement converges as long as each
    /// correction gains ~`1/refinement_inner_epsilon` digits.
    pub refinement_inner_epsilon: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            restart: true,
            jacobi: true,
            precision_escalation: true,
            refinement_max_outer: 12,
            refinement_inner_epsilon: 1e-2,
        }
    }
}

impl RecoveryPolicy {
    /// No rung ever engages: the first attempt's classified outcome is
    /// returned as-is. (This is *not* the default — it exists for callers
    /// that want classification without recovery.)
    pub fn disabled() -> Self {
        Self {
            restart: false,
            jacobi: false,
            precision_escalation: false,
            ..Self::default()
        }
    }
}

/// How the escalation ladder can obtain a Jacobi diagonal.
pub enum JacobiDiagonal<'a, T> {
    /// The initial solve already uses this diagonal (the caller enabled
    /// Jacobi preconditioning up front) — rung 2 is a no-op.
    Immediate(&'a [T]),
    /// Computable on demand; only evaluated if rung 2 actually engages,
    /// so the happy path never pays for it.
    Lazy(&'a dyn Fn() -> Vec<T>),
    /// No diagonal available — rung 2 is skipped.
    Unavailable,
}

/// The outcome of a guarded solve: the final [`CgResult`] plus what the
/// ladder had to do to get there.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedSolve<T> {
    /// The final solve result (of the last rung that ran).
    pub result: CgResult<T>,
    /// Matvec-bearing iterations summed across all rungs (the number the
    /// caller should report as "CG iterations").
    pub total_iterations: usize,
    /// The rungs that engaged, in order. Empty on the happy path.
    pub escalations: Vec<RecoveryKind>,
}

impl<T: Real> GuardedSolve<T> {
    /// The final classified outcome.
    pub fn outcome(&self) -> SolveOutcome {
        self.result.outcome
    }
}

fn emit(metrics: Option<&dyn MetricsSink>, kind: RecoveryKind, iteration: usize, detail: String) {
    if let Some(sink) = metrics {
        sink.record_recovery(RecoverySample::solver(kind, iteration, detail));
    }
}

/// The current iterate, or zeros if any component is non-finite (after a
/// NaN/Inf breakdown the iterate cannot seed a restart).
fn sanitized<T: Real>(x: &[T]) -> Vec<T> {
    if x.iter().all(|v| v.is_finite()) {
        x.to_vec()
    } else {
        vec![T::ZERO; x.len()]
    }
}

/// `‖b − A·x‖` with the matvec in working precision and the accumulation
/// in f64 (one extra matvec; only used on the failure path).
fn true_residual_norm<T: Real>(op: &dyn LinOp<T>, b: &[T], x: &[T]) -> f64 {
    let mut out = vec![T::ZERO; op.dim()];
    op.apply(x, &mut out);
    b.iter()
        .zip(&out)
        .map(|(&bv, &ov)| {
            let d = bv.to_f64() - ov.to_f64();
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Solves `A·x = b`, escalating through the recovery ladder on
/// non-convergence.
///
/// The first attempt is exactly
/// [`crate::cg::conjugate_gradients_with_metrics`] (or the Jacobi variant
/// when `jacobi` is [`JacobiDiagonal::Immediate`]) — bit-identical to an
/// unguarded solve. Only when that attempt comes back non-converged do
/// the policy's rungs engage, each restarting from the best iterate so
/// far with the relative-residual criterion still measured against the
/// **original** `‖b‖`.
///
/// The consolidated outcome (final classification, total iterations
/// across rungs, final relative residual) is recorded to `metrics` as the
/// run's [`CgOutcomeSample`].
///
/// # Panics
/// The contract of [`crate::cg::conjugate_gradients_with_metrics`];
/// additionally a [`JacobiDiagonal::Immediate`] diagonal must be strictly
/// positive.
pub fn solve_with_guardrails<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    policy: &RecoveryPolicy,
    jacobi: JacobiDiagonal<'_, T>,
    metrics: Option<&dyn MetricsSink>,
) -> GuardedSolve<T> {
    solve_with_guardrails_checkpointed(op, b, config, policy, jacobi, metrics, None, None)
}

/// [`solve_with_guardrails`] with durable-checkpoint plumbing.
///
/// `sink`, when present, receives every periodic [`CgState`] snapshot the
/// inner solves produce, tagged with the escalation rung that was active
/// — so a crash-recovery journal can restore not just the iterate but the
/// ladder position. `resume`, when present, is a previously persisted
/// snapshot: rungs *below* `resume.rung` are skipped entirely (they
/// already ran before the crash) and the matching rung continues from the
/// saved state instead of restarting, which keeps an interrupted rung-0
/// solve bit-exact with an uninterrupted one.
///
/// With `sink = None` and `resume = None` this is exactly
/// [`solve_with_guardrails`].
#[allow(clippy::too_many_arguments)]
pub fn solve_with_guardrails_checkpointed<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    policy: &RecoveryPolicy,
    jacobi: JacobiDiagonal<'_, T>,
    metrics: Option<&dyn MetricsSink>,
    sink: Option<&dyn RungCheckpointSink<T>>,
    resume: Option<&ResumePoint<T>>,
) -> GuardedSolve<T> {
    let delta0 = dot(b, b);
    let initial_diag: Option<&[T]> = match &jacobi {
        JacobiDiagonal::Immediate(d) => Some(d),
        _ => None,
    };

    let resume_rung = resume.map(|r| r.rung);
    // A rung that was already *passed* when the snapshot was taken must
    // not run again on resume.
    let already_passed = |rung: u8| resume_rung.is_some_and(|r| r > rung);
    let resume_state_for = |rung: u8| resume.filter(|r| r.rung == rung).map(|r| r.state.clone());
    let adapter_for = |rung: u8| sink.map(|inner| RungAdapter { inner, rung });

    let mut result = if already_passed(rungs::PRIMARY) {
        // The journal says a later rung was active when the process died:
        // seed the ladder with the saved iterate instead of redoing the
        // primary solve.
        let state = &resume.unwrap().state;
        CgResult {
            x: state.solution().to_vec(),
            iterations: 0,
            initial_residual_norm: T::from_f64(delta0.to_f64().max(0.0).sqrt()),
            residual_norm: state.residual_norm(),
            converged: false,
            outcome: SolveOutcome::IterationBudget,
            drift_restarts: 0,
            checkpoint: None,
        }
    } else {
        let adapter = adapter_for(rungs::PRIMARY);
        let resumed = resume_state_for(rungs::PRIMARY);
        conjugate_gradients_checkpointed(
            op,
            b,
            config,
            initial_diag,
            metrics,
            resumed.as_ref(),
            adapter.as_ref().map(|a| a as &dyn CgCheckpointSink<T>),
        )
    };
    let mut total_iterations = result.iterations;
    let mut escalations = Vec::new();

    // A rung can move *backwards* (a restart from a drifted iterate may
    // end farther from the solution than it started), so on the failure
    // path the best iterate across all rungs is tracked by true residual
    // and restored at the end. The happy path never measures anything.
    let ladder_enabled =
        policy.restart || policy.jacobi || (policy.precision_escalation && T::BYTES < 8);
    let mut best: Option<(Vec<T>, f64)> = None;
    let consider = |result: &CgResult<T>, best: &mut Option<(Vec<T>, f64)>| {
        if result.converged {
            return;
        }
        let x = sanitized(&result.x);
        let norm = true_residual_norm(op, b, &x);
        if norm.is_finite() && best.as_ref().is_none_or(|(_, bn)| norm < *bn) {
            *best = Some((x, norm));
        }
    };
    if !result.converged && ladder_enabled {
        consider(&result, &mut best);
    }

    // Rung 1: restart from the current iterate with the exact residual.
    if !result.converged && policy.restart && !already_passed(rungs::RESTART) {
        emit(
            metrics,
            RecoveryKind::Restart,
            total_iterations,
            format!(
                "escalation after {}: restart from current iterate with exact residual",
                result.outcome
            ),
        );
        escalations.push(RecoveryKind::Restart);
        let state = match resume_state_for(rungs::RESTART) {
            Some(saved) => saved,
            None => {
                let x0 = sanitized(&result.x);
                CgState::restart_from(op, b, &x0, initial_diag, Some(delta0))
            }
        };
        let adapter = adapter_for(rungs::RESTART);
        result = conjugate_gradients_checkpointed(
            op,
            b,
            config,
            initial_diag,
            metrics,
            Some(&state),
            adapter.as_ref().map(|a| a as &dyn CgCheckpointSink<T>),
        );
        total_iterations += result.iterations;
        consider(&result, &mut best);
    }

    // Rung 2: enable the Jacobi preconditioner.
    let mut owned_diag: Option<Vec<T>> = None;
    if !result.converged
        && policy.jacobi
        && initial_diag.is_none()
        && !already_passed(rungs::JACOBI)
    {
        if let JacobiDiagonal::Lazy(make) = &jacobi {
            let diag = make();
            // a non-positive or non-finite diagonal cannot precondition an
            // SPD solve — skip the rung rather than trip the assert
            let usable =
                diag.len() == op.dim() && diag.iter().all(|d| d.is_finite() && d.to_f64() > 0.0);
            if usable {
                emit(
                    metrics,
                    RecoveryKind::Precondition,
                    total_iterations,
                    format!(
                        "escalation after {}: enabling Jacobi preconditioner",
                        result.outcome
                    ),
                );
                escalations.push(RecoveryKind::Precondition);
                let state = match resume_state_for(rungs::JACOBI) {
                    Some(saved) => saved,
                    None => {
                        let x0 = sanitized(&result.x);
                        CgState::restart_from(op, b, &x0, Some(&diag), Some(delta0))
                    }
                };
                let adapter = adapter_for(rungs::JACOBI);
                result = conjugate_gradients_checkpointed(
                    op,
                    b,
                    config,
                    Some(&diag),
                    metrics,
                    Some(&state),
                    adapter.as_ref().map(|a| a as &dyn CgCheckpointSink<T>),
                );
                total_iterations += result.iterations;
                consider(&result, &mut best);
                owned_diag = Some(diag);
            }
        }
    }

    // Rung 3: f64 iterative refinement over the working-precision backend.
    if !result.converged && policy.precision_escalation && T::BYTES < 8 {
        emit(
            metrics,
            RecoveryKind::PrecisionEscalation,
            total_iterations,
            format!(
                "escalation after {}: f64 iterative refinement over the {}-byte backend",
                result.outcome,
                T::BYTES
            ),
        );
        escalations.push(RecoveryKind::PrecisionEscalation);
        let diag = initial_diag.or(owned_diag.as_deref());
        // On a rung-3 resume, refinement restarts its outer loop from the
        // persisted iterate (the outer loop has no recurrence to resume —
        // each correction starts from the measured residual, so restarting
        // from the saved x loses nothing but the in-flight correction).
        let resumed_x = resume_state_for(rungs::REFINEMENT).map(|s| s.solution().to_vec());
        let x_start: &[T] = resumed_x.as_deref().unwrap_or(&result.x);
        let adapter = adapter_for(rungs::REFINEMENT);
        let (refined, inner_iterations) = iterative_refinement(
            op,
            b,
            config,
            policy,
            diag,
            x_start,
            adapter.as_ref().map(|a| a as &dyn CgCheckpointSink<T>),
        );
        total_iterations += inner_iterations;
        result = refined;
        consider(&result, &mut best);
    }

    // Restore the best iterate measured across the ladder: never hand back
    // a final rung's result when an earlier rung got closer.
    if !result.converged && !escalations.is_empty() {
        if let Some((x, norm)) = best {
            result.x = x;
            result.residual_norm = T::from_f64(norm);
        }
    }

    if let Some(sink) = metrics {
        // measured in f64 so a ‖b‖² that overflows the working type still
        // yields an honest relative residual
        let initial = b
            .iter()
            .map(|v| v.to_f64() * v.to_f64())
            .sum::<f64>()
            .sqrt();
        let final_norm = result.residual_norm.to_f64();
        sink.record_cg_outcome(CgOutcomeSample {
            outcome: result.outcome.as_str(),
            iterations: total_iterations,
            final_residual_norm: final_norm,
            relative_residual: if initial == 0.0 {
                0.0
            } else {
                final_norm / initial
            },
        });
    }

    GuardedSolve {
        result,
        total_iterations,
        escalations,
    }
}

/// The f64 iterative-refinement outer loop (ladder rung 3).
///
/// The iterate and residual accumulation live in f64; the residual is
/// *measured through the working-precision backend* (`x` is rounded to
/// `T`, the matvec runs in `T`, the subtraction happens in f64), so the
/// heavy O(n²) work never leaves the fast precision. Each correction
/// solves `A·d = r/‖r‖` at a loose inner tolerance — the normalization
/// keeps the inner right-hand side at unit scale, out of the narrow
/// type's denormal range — and applies `x += ‖r‖·d`.
///
/// Returns the final [`CgResult`] (in working precision) and the number
/// of inner iterations consumed.
///
/// When `sink` is present, a synthesized working-precision snapshot of
/// the outer state (iterate + measured residual) is persisted before each
/// correction, so a crash mid-refinement resumes from the last completed
/// correction instead of the ladder's entry iterate.
fn iterative_refinement<T: Real>(
    op: &dyn LinOp<T>,
    b: &[T],
    config: &CgConfig<T>,
    policy: &RecoveryPolicy,
    diagonal: Option<&[T]>,
    x_start: &[T],
    sink: Option<&dyn CgCheckpointSink<T>>,
) -> (CgResult<T>, usize) {
    let n = op.dim();
    let b64: Vec<f64> = b.iter().map(|&v| v.to_f64()).collect();
    let norm_b = dot(&b64, &b64).sqrt();
    let threshold = config.epsilon.to_f64() * norm_b;
    let mut x64: Vec<f64> = sanitized(x_start).iter().map(|&v| v.to_f64()).collect();
    let mut x_t: Vec<T> = vec![T::ZERO; n];
    let mut out_t: Vec<T> = vec![T::ZERO; n];
    let mut r64: Vec<f64> = vec![0.0; n];
    let inner_config = CgConfig {
        epsilon: T::from_f64(policy.refinement_inner_epsilon),
        ..*config
    };

    let mut inner_iterations = 0usize;
    let mut best_rnorm = f64::INFINITY;
    let mut best_x64 = x64.clone();
    let mut rnorm = 0.0f64;
    let mut outcome = SolveOutcome::IterationBudget;
    for outer in 0..=policy.refinement_max_outer {
        for (xt, &xv) in x_t.iter_mut().zip(&x64) {
            *xt = T::from_f64(xv);
        }
        op.apply(&x_t, &mut out_t);
        for ((r, &bv), &ov) in r64.iter_mut().zip(&b64).zip(&out_t) {
            *r = bv - ov.to_f64();
        }
        rnorm = dot(&r64, &r64).sqrt();
        if !rnorm.is_finite() {
            outcome = SolveOutcome::Breakdown(BreakdownKind::NonFinite);
            break;
        }
        if norm_b == 0.0 || rnorm <= threshold {
            outcome = SolveOutcome::Converged;
            break;
        }
        if outer == policy.refinement_max_outer {
            outcome = SolveOutcome::IterationBudget;
            break;
        }
        if rnorm > best_rnorm * 0.9 {
            // the last correction improved the best residual by less than
            // 10%: we are at the working-precision noise floor and further
            // refinement cannot reach the tolerance
            outcome = SolveOutcome::Stalled;
            break;
        }
        best_rnorm = rnorm;
        best_x64.copy_from_slice(&x64);
        if let Some(out) = sink {
            // Synthesize a CgState from the outer iterate: the refinement
            // loop has no CG recurrence of its own, so the residual also
            // serves as the direction. `iterations` counts completed
            // corrections.
            let r_t: Vec<T> = r64.iter().map(|&v| T::from_f64(v)).collect();
            let delta = T::from_f64(rnorm * rnorm);
            out.persist(&CgState::from_raw_parts(
                x_t.clone(),
                r_t.clone(),
                r_t,
                delta,
                delta,
                T::from_f64(norm_b * norm_b),
                outer,
            ));
        }
        let rhs: Vec<T> = r64.iter().map(|&v| T::from_f64(v / rnorm)).collect();
        let inner =
            conjugate_gradients_checkpointed(op, &rhs, &inner_config, diagonal, None, None, None);
        inner_iterations += inner.iterations;
        if inner.x.iter().any(|v| !v.is_finite()) {
            outcome = SolveOutcome::Breakdown(BreakdownKind::NonFinite);
            break;
        }
        for (xv, &dv) in x64.iter_mut().zip(&inner.x) {
            *xv += rnorm * dv.to_f64();
        }
    }

    // never hand back an iterate worse than the best one measured — a
    // correction built from a failed inner solve can move backwards
    if !outcome.is_converged() && best_rnorm < rnorm {
        x64 = best_x64;
        rnorm = best_rnorm;
    }

    let result = CgResult {
        x: x64.iter().map(|&v| T::from_f64(v)).collect(),
        iterations: inner_iterations,
        initial_residual_norm: T::from_f64(norm_b),
        residual_norm: T::from_f64(rnorm),
        converged: outcome.is_converged(),
        outcome,
        drift_restarts: 0,
        checkpoint: None,
    };
    (result, inner_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::conjugate_gradients;

    struct Dense64 {
        n: usize,
        a: Vec<f64>,
    }

    impl LinOp<f64> for Dense64 {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, v: &[f64], out: &mut [f64]) {
            for (i, o) in out.iter_mut().enumerate() {
                *o = dot(&self.a[i * self.n..(i + 1) * self.n], v);
            }
        }
    }

    /// The same matrix evaluated entirely in f32 — models a
    /// working-precision backend.
    struct Dense32 {
        n: usize,
        a: Vec<f32>,
    }

    impl LinOp<f32> for Dense32 {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, v: &[f32], out: &mut [f32]) {
            for (i, o) in out.iter_mut().enumerate() {
                *o = dot(&self.a[i * self.n..(i + 1) * self.n], v);
            }
        }
    }

    fn random_spd(n: usize, seed: u64) -> Dense64 {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[k * n + i] * b[k * n + j];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        Dense64 { n, a }
    }

    /// SPD with rows/columns scaled over several orders of magnitude —
    /// plain CG crawls, Jacobi fixes it.
    fn ill_scaled_spd(n: usize) -> Dense64 {
        let mut op = random_spd(n, 99);
        let scales: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(5.0 * i as f64 / n as f64))
            .collect();
        for i in 0..n {
            for j in 0..n {
                op.a[i * n + j] *= scales[i] * scales[j];
            }
        }
        op
    }

    /// An SPD matrix with near-dependent directions (condition number
    /// ~1/`ridge`) whose diagonal is nearly uniform, so Jacobi cannot
    /// rescue it — only precision escalation can.
    fn near_singular_spd(n: usize, perturb: f64, ridge: f64) -> Dense64 {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        // G has n columns that are small perturbations of a single vector:
        // GᵀG is rank-deficient up to the perturbation scale
        let base: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let g: Vec<f64> = (0..n * n)
            .map(|idx| base[idx % n] + perturb * rng.random_range(-1.0..1.0))
            .collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += g[k * n + i] * g[k * n + j];
                }
                a[i * n + j] = s / n as f64 + if i == j { ridge } else { 0.0 };
            }
        }
        Dense64 { n, a }
    }

    #[test]
    fn happy_path_is_bit_identical_and_unescalated() {
        let n = 32;
        let op = random_spd(n, 5);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let cfg = CgConfig::with_epsilon(1e-10);
        let guarded = solve_with_guardrails(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Unavailable,
            None,
        );
        let plain = conjugate_gradients(&op, &b, &cfg);
        assert_eq!(guarded.result.x, plain.x);
        assert_eq!(guarded.total_iterations, plain.iterations);
        assert!(guarded.escalations.is_empty());
        assert_eq!(guarded.outcome(), SolveOutcome::Converged);
    }

    #[test]
    fn disabled_policy_returns_classified_outcome_untouched() {
        // −I is not SPD: immediate indefinite breakdown, no recovery.
        let n = 4;
        let a: Vec<f64> = (0..n * n)
            .map(|idx| if idx % (n + 1) == 0 { -1.0 } else { 0.0 })
            .collect();
        let op = Dense64 { n, a };
        let guarded = solve_with_guardrails(
            &op,
            &[1.0; 4],
            &CgConfig::with_epsilon(1e-6),
            &RecoveryPolicy::disabled(),
            JacobiDiagonal::Unavailable,
            None,
        );
        assert_eq!(
            guarded.outcome(),
            SolveOutcome::Breakdown(BreakdownKind::Indefinite)
        );
        assert!(guarded.escalations.is_empty());
    }

    #[test]
    fn indefinite_system_exhausts_ladder_without_lying() {
        // Full policy on −I: restart re-breaks, Jacobi diagonal is
        // negative (skipped), refinement is f64-gated — the final outcome
        // must still be the honest breakdown.
        let n = 4;
        let a: Vec<f64> = (0..n * n)
            .map(|idx| if idx % (n + 1) == 0 { -1.0 } else { 0.0 })
            .collect();
        let op = Dense64 { n, a };
        let make_diag = || vec![-1.0; 4];
        let guarded = solve_with_guardrails(
            &op,
            &[1.0; 4],
            &CgConfig::with_epsilon(1e-6),
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            None,
        );
        assert_eq!(
            guarded.outcome(),
            SolveOutcome::Breakdown(BreakdownKind::Indefinite)
        );
        assert_eq!(guarded.escalations, vec![RecoveryKind::Restart]);
    }

    #[test]
    fn jacobi_rung_rescues_ill_scaled_system() {
        let n = 60;
        let op = ill_scaled_spd(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        // budget small enough that plain CG (and its restart) cannot make
        // it, but preconditioned CG can
        let cfg = CgConfig {
            epsilon: 1e-8,
            max_iterations: Some(n),
            ..CgConfig::default()
        };
        let unguarded = conjugate_gradients(&op, &b, &cfg);
        assert!(!unguarded.converged, "fixture must defeat plain CG");

        let t = crate::trace::Telemetry::new();
        let make_diag = || diag.clone();
        let guarded = solve_with_guardrails(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            Some(&t),
        );
        assert_eq!(guarded.outcome(), SolveOutcome::Converged);
        assert!(guarded.escalations.contains(&RecoveryKind::Precondition));
        // the rescue is recorded, and the consolidated outcome reflects
        // the whole ladder
        let report = t.report();
        assert!(report
            .recovery
            .iter()
            .any(|s| s.kind == RecoveryKind::Precondition));
        let outcome = report.cg_outcome.expect("consolidated outcome recorded");
        assert_eq!(outcome.outcome, "converged");
        assert_eq!(outcome.iterations, guarded.total_iterations);
        // the claimed residual is real
        let mut ax = vec![0.0; n];
        op.apply(&guarded.result.x, &mut ax);
        let true_rel = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt()
            / b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(true_rel <= 1e-6, "true relative residual {true_rel}");
    }

    #[test]
    fn f32_solve_converges_only_via_precision_escalation() {
        // A well-conditioned system whose right-hand side lives at a scale
        // where ‖b‖² overflows f32: every f32-native solve (plain,
        // restarted, preconditioned) sees `delta0 = inf` and is classified
        // breakdown_nonfinite, while the f64 refinement outer loop keeps
        // its norms in f64 and normalizes the inner right-hand sides to
        // unit scale — so only rung 3 can solve it, deterministically.
        let n = 32;
        let op64 = random_spd(n, 5);
        let op32 = Dense32 {
            n,
            a: op64.a.iter().map(|&v| v as f32).collect(),
        };
        const SCALE: f64 = 1e25; // ‖b‖² ≈ 1e50 ≫ f32::MAX ≈ 3.4e38
        let b64: Vec<f64> = (0..n)
            .map(|i| SCALE * (1.0 + ((i as f64) * 0.37).sin()))
            .collect();
        let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
        let cfg = CgConfig {
            epsilon: 1e-4f32,
            max_iterations: Some(4 * n),
            ..CgConfig::default()
        };
        let unguarded = conjugate_gradients(&op32, &b32, &cfg);
        assert_eq!(
            unguarded.outcome,
            SolveOutcome::Breakdown(BreakdownKind::NonFinite),
            "fixture must defeat plain f32 CG"
        );

        let t = crate::trace::Telemetry::new();
        let diag: Vec<f32> = (0..n).map(|i| op32.a[i * n + i]).collect();
        let make_diag = || diag.clone();
        let guarded = solve_with_guardrails(
            &op32,
            &b32,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            Some(&t),
        );
        assert_eq!(
            guarded.outcome(),
            SolveOutcome::Converged,
            "escalation ladder must rescue the f32 solve"
        );
        assert!(guarded
            .escalations
            .contains(&RecoveryKind::PrecisionEscalation));
        let report = t.report();
        assert!(report
            .recovery
            .iter()
            .any(|s| s.kind == RecoveryKind::PrecisionEscalation));
        // verify the claim against the f64 operator
        let x64: Vec<f64> = guarded.result.x.iter().map(|&v| v as f64).collect();
        let mut ax = vec![0.0; n];
        op64.apply(&x64, &mut ax);
        let true_rel = b64
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt()
            / b64.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(true_rel <= 1e-3, "true relative residual {true_rel}");
    }

    /// Collects every persisted snapshot together with its rung tag.
    struct Collect<T: Real>(std::sync::Mutex<Vec<(u8, CgState<T>)>>);

    impl<T: Real> Collect<T> {
        fn new() -> Self {
            Self(std::sync::Mutex::new(Vec::new()))
        }
    }

    impl<T: Real> RungCheckpointSink<T> for Collect<T> {
        fn persist(&self, rung: u8, state: &CgState<T>) {
            self.0.lock().unwrap().push((rung, state.clone()));
        }
    }

    #[test]
    fn sink_snapshots_are_tagged_with_the_active_rung() {
        let n = 60;
        let op = ill_scaled_spd(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        let cfg = CgConfig {
            epsilon: 1e-8,
            max_iterations: Some(n),
            checkpoint_interval: Some(5),
            ..CgConfig::default()
        };
        let make_diag = || diag.clone();
        let sink = Collect::new();
        let guarded = solve_with_guardrails_checkpointed(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            None,
            Some(&sink),
            None,
        );
        assert_eq!(guarded.outcome(), SolveOutcome::Converged);
        let seen = sink.0.lock().unwrap();
        let rungs_seen: Vec<u8> = seen.iter().map(|(r, _)| *r).collect();
        assert!(rungs_seen.contains(&rungs::PRIMARY));
        assert!(
            rungs_seen.contains(&rungs::JACOBI),
            "preconditioned rung must stream snapshots too: {rungs_seen:?}"
        );
        // rung tags never decrease: the ladder only climbs
        assert!(rungs_seen.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn resume_at_jacobi_rung_skips_earlier_rungs_and_converges() {
        let n = 60;
        let op = ill_scaled_spd(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        let diag: Vec<f64> = (0..n).map(|i| op.a[i * n + i]).collect();
        let cfg = CgConfig {
            epsilon: 1e-8,
            max_iterations: Some(n),
            checkpoint_interval: Some(5),
            ..CgConfig::default()
        };
        let make_diag = || diag.clone();
        let sink = Collect::new();
        let full = solve_with_guardrails_checkpointed(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            None,
            Some(&sink),
            None,
        );
        assert_eq!(full.outcome(), SolveOutcome::Converged);
        let snapshots = sink.0.lock().unwrap();
        let (rung, state) = snapshots
            .iter()
            .find(|(r, _)| *r == rungs::JACOBI)
            .expect("jacobi rung produced a snapshot")
            .clone();

        // Resume from the mid-jacobi snapshot: rungs 0–1 must not rerun.
        let resume = ResumePoint { rung, state };
        let resumed = solve_with_guardrails_checkpointed(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Lazy(&make_diag),
            None,
            None,
            Some(&resume),
        );
        assert_eq!(resumed.outcome(), SolveOutcome::Converged);
        assert_eq!(
            resumed.escalations,
            vec![RecoveryKind::Precondition],
            "only the resumed rung engages; earlier rungs are skipped"
        );
        assert!(resumed.total_iterations < full.total_iterations);
        // the resumed continuation reproduces the exact tail of the full
        // jacobi rung: identical final iterate
        assert_eq!(resumed.result.x, full.result.x);
    }

    #[test]
    fn resume_at_primary_rung_is_bit_exact() {
        let n = 32;
        let op = random_spd(n, 5);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let cfg = CgConfig {
            epsilon: 1e-10,
            checkpoint_interval: Some(3),
            ..CgConfig::default()
        };
        let sink = Collect::new();
        let full = solve_with_guardrails_checkpointed(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Unavailable,
            None,
            Some(&sink),
            None,
        );
        assert_eq!(full.outcome(), SolveOutcome::Converged);
        let snapshots = sink.0.lock().unwrap();
        let (rung, state) = snapshots.last().expect("periodic snapshots taken").clone();
        assert_eq!(rung, rungs::PRIMARY);
        let resume = ResumePoint { rung, state };
        let resumed = solve_with_guardrails_checkpointed(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Unavailable,
            None,
            None,
            Some(&resume),
        );
        assert_eq!(resumed.result.x, full.result.x, "resume must be bit-exact");
        assert!(resumed.escalations.is_empty());
    }

    #[test]
    fn refinement_is_gated_to_narrow_precisions() {
        // An f64 solve that cannot converge must NOT enter rung 3.
        let n = 24;
        let op = near_singular_spd(n, 1e-3, 1e-14);
        let b = vec![1.0; n];
        let cfg = CgConfig {
            epsilon: 1e-12,
            max_iterations: Some(8),
            ..CgConfig::default()
        };
        let guarded = solve_with_guardrails(
            &op,
            &b,
            &cfg,
            &RecoveryPolicy::default(),
            JacobiDiagonal::Unavailable,
            None,
        );
        assert!(!guarded
            .escalations
            .contains(&RecoveryKind::PrecisionEscalation));
        assert!(!guarded.outcome().is_converged());
    }
}
