//! Unified solver observability: CG telemetry, kernel-launch metrics and
//! hierarchical timing spans.
//!
//! The paper argues its performance case with three kinds of evidence:
//! per-ε CG iteration counts (Fig. 3), kernel launch counts / achieved
//! FLOP rates from Nsight profiles (§IV-C), and a per-component runtime
//! breakdown (Fig. 2). This module gives the repository one schema for all
//! three so every backend — serial, "OpenMP", sparse and the simulated
//! devices — reports into the same place:
//!
//! * [`MetricsSink`] — the recording interface. Backends call
//!   [`MetricsSink::record_launch`] once per (logical) kernel launch, the
//!   CG solver calls [`MetricsSink::record_cg_iteration`] once per
//!   iteration, and the training drivers record wall-clock
//!   [`MetricsSink::record_span`]s.
//! * [`Telemetry`] — the standard sink: a lock-protected collector that
//!   can be snapshotted into a [`TelemetryReport`] at any time.
//! * [`TelemetryReport`] — the immutable result attached to
//!   [`crate::svm::TrainOutput::telemetry`], with a deterministic subset
//!   ([`TelemetryReport::deterministic_summary`]) and a line-oriented JSON
//!   serialization ([`TelemetryReport::to_json_lines`]) for the CLI's
//!   `--metrics-out`.
//!
//! **Counting convention.** The CPU backends record the *logical* work of
//! the implicit operator (every entry of `K·v` evaluated once), so the
//! serial, "OpenMP" and sparse counters are identical by construction —
//! symmetry tricks and sparse storage are implementation details that do
//! not change what is mathematically computed. Alongside the logical
//! counters they report the *physical* kernel evaluations each matvec
//! performs through [`MetricsSink::record_kernel_evals`]: `n(n+1)/2` for
//! the symmetric schedules of the serial and blocked "OpenMP" backends,
//! `n²` for the full row sweep — so the effect of symmetry exploitation is
//! observable without perturbing the logical accounting. The device
//! backend records what its tiled kernels *actually* execute (triangular
//! blocking with atomic mirroring, §III-C), folded out of the per-device
//! `plssvm_simgpu::PerfReport`s into the same schema. Counters and
//! simulated times are deterministic; wall-clock spans and per-matvec wall
//! times are not, and are therefore excluded from the deterministic
//! subset.
//!
//! Telemetry is strictly opt-in: a disabled sink costs one `Option` branch
//! per CG iteration and per matvec — nothing is timed or allocated.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Canonical span paths used by the training drivers (the hierarchical
/// replacement of the ad-hoc `ComponentTimes` plumbing).
pub mod spans {
    /// The complete training run.
    pub const TRAIN: &str = "train";
    /// Reading and parsing the input file.
    pub const READ: &str = "train/read";
    /// 2D row-major → padded SoA transform.
    pub const TRANSFORM: &str = "train/transform";
    /// The `cg` component: backend setup, transfers and the CG solve.
    pub const CG: &str = "train/cg";
    /// Backend setup and data upload (child of [`CG`]).
    pub const CG_SETUP: &str = "train/cg/setup";
    /// The CG iterations themselves (child of [`CG`]).
    pub const CG_SOLVE: &str = "train/cg/solve";
    /// Model assembly and (optional) model file write.
    pub const WRITE: &str = "train/write";
}

/// One CG iteration's telemetry sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgIterationSample {
    /// 1-based iteration number.
    pub iteration: usize,
    /// `‖rₖ‖` after this iteration (recurrence value, deterministic).
    pub residual_norm: f64,
    /// Step length α of this iteration (deterministic).
    pub alpha: f64,
    /// Direction update β of this iteration (deterministic).
    pub beta: f64,
    /// Wall-clock time of this iteration's `A·d` matvec (not
    /// deterministic; excluded from the deterministic subset).
    pub matvec_wall: Duration,
}

/// What happened in one fault-tolerance event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A transient launch failure was retried (with simulated backoff).
    Retry,
    /// A fail-stopped device's shard was redistributed to the survivors.
    Failover,
    /// A device was detected running far slower than its peers.
    Straggler,
    /// The CG solver snapshotted its state ([`crate::cg::CgState`]).
    Checkpoint,
    /// The solver restarted from its current iterate with the exactly
    /// recomputed residual (drift restart, or escalation-ladder rung 1).
    Restart,
    /// The escalation ladder enabled the Jacobi preconditioner (rung 2).
    Precondition,
    /// The escalation ladder switched an f32 solve to an f64
    /// iterative-refinement outer loop (rung 3).
    PrecisionEscalation,
    /// A numeric fault was detected (non-finite matvec output, breakdown);
    /// emitted at the detection point, before any recovery rung engages.
    NumericFault,
    /// An approximate solver (the randomized low-rank path) handed the
    /// problem to the exact escalation ladder after failing to reach the
    /// requested tolerance.
    SolverFallback,
    /// A storage operation failed transiently and was retried (with
    /// capped backoff); the retry succeeded or the attempt budget ran out.
    IoRetry,
    /// Storage kept failing past the retry budget and a durability
    /// feature degraded gracefully (e.g. checkpointing disabled while
    /// training continues).
    IoDegraded,
}

impl RecoveryKind {
    /// The stable lower-case name used in the JSON schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryKind::Retry => "retry",
            RecoveryKind::Failover => "failover",
            RecoveryKind::Straggler => "straggler",
            RecoveryKind::Checkpoint => "checkpoint",
            RecoveryKind::Restart => "restart",
            RecoveryKind::Precondition => "precondition",
            RecoveryKind::PrecisionEscalation => "precision_escalation",
            RecoveryKind::NumericFault => "numeric_fault",
            RecoveryKind::SolverFallback => "solver_fallback",
            RecoveryKind::IoRetry => "io_retry",
            RecoveryKind::IoDegraded => "io_degraded",
        }
    }
}

/// One fault-tolerance event: a retry, failover, straggler detection or
/// solver checkpoint. All fields are deterministic (fault injection is
/// keyed on launch counts, never on wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySample {
    /// What happened.
    pub kind: RecoveryKind,
    /// The device involved, if the event concerns one.
    pub device: Option<usize>,
    /// The device's launch-attempt index at the event, if applicable.
    pub at_launch: Option<u64>,
    /// The CG iteration at the event, if applicable (checkpoints).
    pub iteration: Option<usize>,
    /// Human-readable context (deterministic wording).
    pub detail: String,
}

impl RecoverySample {
    /// A solver checkpoint at the given CG iteration.
    pub fn checkpoint(iteration: usize) -> Self {
        Self {
            kind: RecoveryKind::Checkpoint,
            device: None,
            at_launch: None,
            iteration: Some(iteration),
            detail: "cg state snapshot".to_owned(),
        }
    }

    /// A device-scoped event (retry, failover or straggler).
    pub fn device_event(
        kind: RecoveryKind,
        device: usize,
        at_launch: u64,
        detail: impl Into<String>,
    ) -> Self {
        Self {
            kind,
            device: Some(device),
            at_launch: Some(at_launch),
            iteration: None,
            detail: detail.into(),
        }
    }

    /// A solver-scoped event (drift restart, escalation rung, numeric
    /// fault) at the given CG iteration.
    pub fn solver(kind: RecoveryKind, iteration: usize, detail: impl Into<String>) -> Self {
        Self {
            kind,
            device: None,
            at_launch: None,
            iteration: Some(iteration),
            detail: detail.into(),
        }
    }
}

/// The final classification of a CG solve (or of a whole escalation
/// ladder), recorded once at the end: what happened, how many iterations
/// ran, and the final (relative) residual. This is what makes "silently
/// hit `max_iterations`" observable — the outcome and final residual are
/// part of every telemetry summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcomeSample {
    /// Stable lowercase outcome name (see `plssvm_core::cg::SolveOutcome`):
    /// `converged`, `stalled`, `diverged`, `breakdown_indefinite`,
    /// `breakdown_nonfinite` or `iteration_budget`.
    pub outcome: &'static str,
    /// Matvec-bearing iterations performed (across all ladder rungs when
    /// recorded by the guard layer).
    pub iterations: usize,
    /// Final residual norm `‖r‖` (deterministic).
    pub final_residual_norm: f64,
    /// `‖r‖ / ‖r₀‖` against the *original* right-hand side (deterministic).
    pub relative_residual: f64,
}

/// One randomized low-rank (Nyström) solve's telemetry: the chosen rank,
/// landmark strategy, factorization cost and achieved accuracy. Recorded
/// once per low-rank solve through [`MetricsSink::record_lowrank`]; wall
/// times are *not* deterministic and are excluded from
/// [`TelemetryReport::deterministic_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankSample {
    /// Effective rank `k` after clamping to the reduced dimension.
    pub rank: usize,
    /// Landmark strategy name (`uniform` or `leverage`).
    pub strategy: &'static str,
    /// Jitter steps taken before the capacitance Cholesky succeeded
    /// (0 = clean factorization).
    pub jitter_steps: usize,
    /// Relative residual `‖b − Q̃x‖/‖b‖` of the *direct* Nyström solve,
    /// measured against the exact operator (deterministic).
    pub direct_relative_residual: f64,
    /// Iterations spent in the Nyström-preconditioned CG polish (0 when
    /// the direct solve already met the tolerance).
    pub pcg_iterations: usize,
    /// Wall-clock spent assembling `C`, `W` and the factorizations (not
    /// deterministic).
    pub assembly_wall: Duration,
    /// Wall-clock of the direct solve + PCG polish (not deterministic).
    pub solve_wall: Duration,
}

/// The SIMD dispatch decision of a blocked CPU backend: which ISA tier
/// the panel micro-kernels resolved to, whether it was forced through
/// `PLSSVM_FORCE_ISA`, and the resulting panel/lane geometry. Recorded
/// once when a prepared backend is attached to a sink through
/// [`MetricsSink::record_dispatch`]; fully deterministic for a given host
/// and environment, but host-dependent — so it is serialized to the JSON
/// lines yet excluded from [`TelemetryReport::deterministic_summary`]
/// (which must stay byte-identical across hosts of different ISA tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchSample {
    /// Stable lowercase tier name (`scalar`, `neon`, `avx2`, `avx512`).
    pub isa: &'static str,
    /// Whether `PLSSVM_FORCE_ISA` selected the tier (vs auto-detection).
    pub forced: bool,
    /// Panel micro-kernel rows (`PANEL_MR`).
    pub panel_mr: usize,
    /// Panel micro-kernel columns (`PANEL_NR`).
    pub panel_nr: usize,
    /// `f32` SIMD lanes of the tier (1 for scalar).
    pub lanes_f32: usize,
    /// `f64` SIMD lanes of the tier (1 for scalar).
    pub lanes_f64: usize,
}

/// One flushed micro-batch of the serving layer (`svm-serve`): how many
/// coalesced requests it carried, how long the oldest of them queued, and
/// how long the batched prediction took. Timing fields are measured on the
/// server's injected clock, so they are deterministic exactly when the
/// clock is (manual clocks in tests, wall time in production) — serve
/// samples are therefore excluded from
/// [`TelemetryReport::deterministic_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeBatchSample {
    /// Requests coalesced into this batch.
    pub batch_size: usize,
    /// Requests still queued after this batch was taken.
    pub queue_depth: usize,
    /// Queue wait of the oldest request in the batch, in clock µs.
    pub queued_us: u64,
    /// Batched prediction time, in clock µs.
    pub process_us: u64,
}

/// One completed serving request: submit-to-response latency and whether
/// it produced a prediction (vs a structured per-request error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequestSample {
    /// Submit-to-response latency in clock µs.
    pub latency_us: u64,
    /// `true` when the request was answered with a prediction.
    pub ok: bool,
}

/// One model hot-reload attempt of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReloadSample {
    /// The model generation serving *after* the attempt (bumped on an
    /// accepted swap, unchanged on a rejected one).
    pub generation: u64,
    /// Whether the new model file was validated and swapped in.
    pub accepted: bool,
    /// Human-readable context (model kind/features, or the load error).
    pub detail: String,
}

/// Why the serving layer refused to do work — the overload-control events
/// of `svm-serve`'s admission/deadline/drain layer. Every shed request or
/// refused connection still receives a structured reply; these samples are
/// the server-side count of those replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeShedKind {
    /// A request was shed at admission: the batch queue was at its
    /// watermark, so the request was answered `overloaded` immediately
    /// instead of queuing unboundedly.
    Overloaded,
    /// An admitted request waited past its deadline and was answered
    /// `deadline_exceeded` at dequeue time without taking a batch slot.
    DeadlineExceeded,
    /// A request arrived while the server was draining and was answered
    /// `shutting_down`.
    ShuttingDown,
    /// A connection was refused at the `--max-connections` cap (answered
    /// with a one-line structured error before close).
    RefusedConnection,
}

/// One engagement of the hot-reload circuit breaker: after a run of
/// consecutive failed reloads the watcher backs off exponentially while
/// the old generation keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReloadBackoffSample {
    /// Consecutive failed reload attempts when the backoff engaged.
    pub consecutive_failures: u64,
    /// How long reload attempts are suppressed, in clock µs.
    pub backoff_us: u64,
}

/// Bounded-memory aggregation of the serving layer's telemetry: batch-size
/// histogram, queue/latency counters and the reload audit trail. A
/// long-lived server records unbounded request streams, so per-request
/// samples are folded into counters instead of stored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Micro-batches flushed.
    pub batches: u64,
    /// Batch-size histogram: `size → batches of exactly that size`.
    pub batch_size_hist: BTreeMap<usize, u64>,
    /// Largest queue depth observed at a batch flush.
    pub max_queue_depth: usize,
    /// Sum over batches of the oldest request's queue wait (clock µs).
    pub queued_us_sum: u64,
    /// Sum of batched prediction times (clock µs).
    pub process_us_sum: u64,
    /// Requests answered (predictions and structured errors).
    pub requests: u64,
    /// Requests answered with a structured per-request error.
    pub request_errors: u64,
    /// Sum of request latencies (clock µs).
    pub latency_us_sum: u64,
    /// Largest single request latency (clock µs).
    pub latency_us_max: u64,
    /// Every hot-reload attempt, in order (reloads are rare events, so
    /// the full audit trail is kept).
    pub reloads: Vec<ServeReloadSample>,
    /// Requests shed at admission with an `overloaded` reply.
    pub shed_overloaded: u64,
    /// Admitted requests answered `deadline_exceeded` at dequeue time.
    pub shed_deadline: u64,
    /// Requests answered `shutting_down` while the server drained.
    pub shed_draining: u64,
    /// Connections refused at the connection cap (each got a one-line
    /// structured error before close).
    pub refused_connections: u64,
    /// Every engagement of the reload circuit breaker, in order.
    pub reload_backoffs: Vec<ServeReloadBackoffSample>,
}

impl ServeStats {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.batches == 0 && self.requests == 0 && self.reloads.is_empty() && !self.overloaded()
    }

    /// Whether any overload-control event (shed, deadline, drain
    /// rejection, refused connection, reload backoff) was recorded.
    pub fn overloaded(&self) -> bool {
        self.shed_overloaded > 0
            || self.shed_deadline > 0
            || self.shed_draining > 0
            || self.refused_connections > 0
            || !self.reload_backoffs.is_empty()
    }

    /// Mean batch size (0 when no batch flushed).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let total: u64 = self
            .batch_size_hist
            .iter()
            .map(|(size, count)| *size as u64 * count)
            .sum();
        total as f64 / self.batches as f64
    }

    /// Mean request latency in clock µs (0 when no request completed).
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.latency_us_sum as f64 / self.requests as f64
    }
}

/// Aggregated counters for one kernel name — the unified schema the
/// per-backend bookkeeping folds into.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCounter {
    /// Number of launches (CPU backends: one per logical kernel
    /// invocation; device backends: one per device launch).
    pub launches: u64,
    /// Floating point operations across all launches.
    pub flops: u128,
    /// Global memory traffic in bytes across all launches (CPU backends:
    /// the logical minimum traffic; device backends: counted traffic).
    pub bytes: u128,
    /// Simulated seconds (roofline model; 0 for CPU backends).
    pub sim_time_s: f64,
}

impl KernelCounter {
    /// Achieved arithmetic throughput in FLOP/s against the *simulated*
    /// time (0 if no simulated time was recorded).
    pub fn achieved_flops(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            self.flops as f64 / self.sim_time_s
        } else {
            0.0
        }
    }
}

/// One recorded wall-clock span. Paths are `/`-separated for hierarchy
/// (`train/cg/solve` is a child of `train/cg`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Hierarchical span path (see [`spans`] for the canonical names).
    pub path: String,
    /// Wall-clock duration of the span.
    pub wall: Duration,
}

/// The recording interface of the observability layer.
///
/// Every backend reports into a `MetricsSink`; [`Telemetry`] is the
/// standard implementation. Implementations must be thread-safe — device
/// backends record from the (potentially parallel) launch path.
pub trait MetricsSink: Send + Sync {
    /// Records `launches` launches of kernel `name` with the given
    /// aggregate cost.
    fn record_launch(&self, name: &str, launches: u64, flops: u128, bytes: u128, sim_time_s: f64);

    /// Records the start of a CG solve (`dim` unknowns, `‖r₀‖`).
    fn record_cg_start(&self, dim: usize, initial_residual_norm: f64);

    /// Records one CG iteration.
    fn record_cg_iteration(&self, sample: CgIterationSample);

    /// Records one wall-clock span.
    fn record_span(&self, path: &str, wall: Duration);

    /// Records one fault-tolerance event (retry, failover, straggler,
    /// checkpoint). Default: discard — sinks that predate the recovery
    /// schema keep compiling and simply ignore these events.
    fn record_recovery(&self, sample: RecoverySample) {
        let _ = sample;
    }

    /// Records `evals` *physical* kernel evaluations performed under
    /// kernel `name` — the complement to the logical
    /// [`MetricsSink::record_launch`] counters: symmetric CPU schedules
    /// report `n(n+1)/2` per matvec where the logical convention counts
    /// `n²` entries. Default: discard — sinks that predate this channel
    /// keep compiling.
    fn record_kernel_evals(&self, name: &str, evals: u128) {
        let _ = (name, evals);
    }

    /// Records the final classification of a CG solve (or escalation
    /// ladder). Recorded last; when several solves share one sink the
    /// most recent outcome wins. Default: discard — sinks that predate
    /// the guardrail schema keep compiling.
    fn record_cg_outcome(&self, sample: CgOutcomeSample) {
        let _ = sample;
    }

    /// Records one randomized low-rank (Nyström) solve: rank, strategy,
    /// factorization cost and achieved accuracy. When several solves share
    /// one sink the most recent sample wins. Default: discard — sinks
    /// that predate the low-rank solver keep compiling.
    fn record_lowrank(&self, sample: LowRankSample) {
        let _ = sample;
    }

    /// Records the SIMD dispatch decision of a blocked CPU backend (ISA
    /// tier, forced/auto, panel and lane geometry). When several backends
    /// share one sink the most recent sample wins. Default: discard —
    /// sinks that predate the SIMD engine keep compiling.
    fn record_dispatch(&self, sample: DispatchSample) {
        let _ = sample;
    }

    /// Records one flushed serving micro-batch. Default: discard — sinks
    /// that predate the serving layer keep compiling.
    fn record_serve_batch(&self, sample: ServeBatchSample) {
        let _ = sample;
    }

    /// Records one completed serving request. Default: discard — sinks
    /// that predate the serving layer keep compiling.
    fn record_serve_request(&self, sample: ServeRequestSample) {
        let _ = sample;
    }

    /// Records one model hot-reload attempt. Default: discard — sinks
    /// that predate the serving layer keep compiling.
    fn record_serve_reload(&self, sample: ServeReloadSample) {
        let _ = sample;
    }

    /// Records one overload-control event of the serving layer (shed
    /// request, expired deadline, drain rejection, or refused
    /// connection). Default: discard — sinks that predate the overload
    /// layer keep compiling.
    fn record_serve_shed(&self, kind: ServeShedKind) {
        let _ = kind;
    }

    /// Records one engagement of the hot-reload circuit breaker.
    /// Default: discard — sinks that predate the overload layer keep
    /// compiling.
    fn record_serve_reload_backoff(&self, sample: ServeReloadBackoffSample) {
        let _ = sample;
    }
}

#[derive(Debug, Default)]
struct TelemetryState {
    kernels: BTreeMap<String, KernelCounter>,
    kernel_evals: BTreeMap<String, u128>,
    cg_dim: Option<usize>,
    cg_initial_residual_norm: Option<f64>,
    cg: Vec<CgIterationSample>,
    cg_outcome: Option<CgOutcomeSample>,
    lowrank: Option<LowRankSample>,
    dispatch: Option<DispatchSample>,
    spans: Vec<SpanRecord>,
    recovery: Vec<RecoverySample>,
    serve: ServeStats,
}

/// The standard [`MetricsSink`]: collects everything behind a lock and
/// snapshots into a [`TelemetryReport`].
///
/// ```
/// use std::sync::Arc;
/// use plssvm_core::prelude::*;
/// use plssvm_core::trace::Telemetry;
/// use plssvm_data::synthetic::{generate_planes, PlanesConfig};
///
/// let data = generate_planes::<f64>(&PlanesConfig::new(64, 8, 42))?;
/// let telemetry = Telemetry::shared();
/// let out = LsSvm::new()
///     .with_epsilon(1e-6)
///     .with_metrics(Arc::clone(&telemetry))
///     .train(&data)?;
/// let report = out.telemetry.expect("telemetry was enabled");
/// assert_eq!(report.iterations(), out.iterations);
/// assert!(report.kernels.contains_key("svm_kernel"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Telemetry {
    state: Mutex<TelemetryState>,
}

impl Telemetry {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh collector already wrapped in the [`Arc`] the training APIs
    /// take.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TelemetryState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshots the collected data.
    pub fn report(&self) -> TelemetryReport {
        let s = self.lock();
        TelemetryReport {
            kernels: s.kernels.clone(),
            kernel_evals: s.kernel_evals.clone(),
            cg_dim: s.cg_dim,
            cg_initial_residual_norm: s.cg_initial_residual_norm,
            cg: s.cg.clone(),
            cg_outcome: s.cg_outcome,
            lowrank: s.lowrank.clone(),
            dispatch: s.dispatch,
            spans: s.spans.clone(),
            recovery: s.recovery.clone(),
            serve: s.serve.clone(),
        }
    }

    /// Clears all collected data (for sink reuse across runs).
    pub fn reset(&self) {
        *self.lock() = TelemetryState::default();
    }
}

impl MetricsSink for Telemetry {
    fn record_launch(&self, name: &str, launches: u64, flops: u128, bytes: u128, sim_time_s: f64) {
        let mut s = self.lock();
        let entry = s.kernels.entry(name.to_owned()).or_default();
        entry.launches += launches;
        entry.flops += flops;
        entry.bytes += bytes;
        entry.sim_time_s += sim_time_s;
    }

    fn record_cg_start(&self, dim: usize, initial_residual_norm: f64) {
        let mut s = self.lock();
        s.cg_dim = Some(dim);
        s.cg_initial_residual_norm = Some(initial_residual_norm);
        s.cg.clear();
    }

    fn record_cg_iteration(&self, sample: CgIterationSample) {
        self.lock().cg.push(sample);
    }

    fn record_span(&self, path: &str, wall: Duration) {
        self.lock().spans.push(SpanRecord {
            path: path.to_owned(),
            wall,
        });
    }

    fn record_recovery(&self, sample: RecoverySample) {
        self.lock().recovery.push(sample);
    }

    fn record_kernel_evals(&self, name: &str, evals: u128) {
        let mut s = self.lock();
        *s.kernel_evals.entry(name.to_owned()).or_default() += evals;
    }

    fn record_cg_outcome(&self, sample: CgOutcomeSample) {
        self.lock().cg_outcome = Some(sample);
    }

    fn record_lowrank(&self, sample: LowRankSample) {
        self.lock().lowrank = Some(sample);
    }

    fn record_dispatch(&self, sample: DispatchSample) {
        self.lock().dispatch = Some(sample);
    }

    fn record_serve_batch(&self, sample: ServeBatchSample) {
        let mut s = self.lock();
        let serve = &mut s.serve;
        serve.batches += 1;
        *serve.batch_size_hist.entry(sample.batch_size).or_default() += 1;
        serve.max_queue_depth = serve.max_queue_depth.max(sample.queue_depth);
        serve.queued_us_sum += sample.queued_us;
        serve.process_us_sum += sample.process_us;
    }

    fn record_serve_request(&self, sample: ServeRequestSample) {
        let mut s = self.lock();
        let serve = &mut s.serve;
        serve.requests += 1;
        if !sample.ok {
            serve.request_errors += 1;
        }
        serve.latency_us_sum += sample.latency_us;
        serve.latency_us_max = serve.latency_us_max.max(sample.latency_us);
    }

    fn record_serve_reload(&self, sample: ServeReloadSample) {
        self.lock().serve.reloads.push(sample);
    }

    fn record_serve_shed(&self, kind: ServeShedKind) {
        let mut s = self.lock();
        let serve = &mut s.serve;
        match kind {
            ServeShedKind::Overloaded => serve.shed_overloaded += 1,
            ServeShedKind::DeadlineExceeded => serve.shed_deadline += 1,
            ServeShedKind::ShuttingDown => serve.shed_draining += 1,
            ServeShedKind::RefusedConnection => serve.refused_connections += 1,
        }
    }

    fn record_serve_reload_backoff(&self, sample: ServeReloadBackoffSample) {
        self.lock().serve.reload_backoffs.push(sample);
    }
}

/// Immutable snapshot of one training run's telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Unified kernel counters, keyed by kernel name (`q_kernel`,
    /// `svm_kernel`, `w_kernel`).
    pub kernels: BTreeMap<String, KernelCounter>,
    /// *Physical* kernel evaluations by kernel name — what the backend's
    /// schedule actually computed (symmetric CPU schedules: `n(n+1)/2` per
    /// matvec vs the logical `n²`). Empty when no backend reported them.
    pub kernel_evals: BTreeMap<String, u128>,
    /// Dimension of the reduced CG system (`m − 1`), when a solve ran.
    pub cg_dim: Option<usize>,
    /// `‖r₀‖` of the CG solve, when a solve ran.
    pub cg_initial_residual_norm: Option<f64>,
    /// Per-iteration CG samples, in iteration order.
    pub cg: Vec<CgIterationSample>,
    /// Final classification of the (most recent) CG solve: outcome,
    /// iteration count and final relative residual. `None` when no solve
    /// ran against this sink.
    pub cg_outcome: Option<CgOutcomeSample>,
    /// The (most recent) randomized low-rank solve's sample. `None` when
    /// no low-rank solve ran against this sink.
    pub lowrank: Option<LowRankSample>,
    /// The (most recent) blocked CPU backend's SIMD dispatch decision.
    /// `None` when no blocked CPU backend was attached to this sink.
    /// Host-dependent, so excluded from
    /// [`TelemetryReport::deterministic_summary`].
    pub dispatch: Option<DispatchSample>,
    /// Recorded wall-clock spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Fault-tolerance events (retries, failovers, straggler detections,
    /// solver checkpoints), in recording order.
    pub recovery: Vec<RecoverySample>,
    /// Aggregated serving-layer telemetry (`svm-serve`): batch-size
    /// histogram, queue/latency counters and the hot-reload audit trail.
    /// Empty unless a server recorded into this sink. Timing-dependent,
    /// so excluded from [`TelemetryReport::deterministic_summary`].
    pub serve: ServeStats,
}

impl TelemetryReport {
    /// Number of CG iterations recorded.
    pub fn iterations(&self) -> usize {
        self.cg.len()
    }

    /// The per-iteration residual norms, in iteration order.
    pub fn residual_history(&self) -> Vec<f64> {
        self.cg.iter().map(|s| s.residual_norm).collect()
    }

    /// Total kernel launches across all kernels.
    pub fn total_launches(&self) -> u64 {
        self.kernels.values().map(|k| k.launches).sum()
    }

    /// Total FLOPs across all kernels.
    pub fn total_flops(&self) -> u128 {
        self.kernels.values().map(|k| k.flops).sum()
    }

    /// Total global memory traffic across all kernels, in bytes.
    pub fn total_bytes(&self) -> u128 {
        self.kernels.values().map(|k| k.bytes).sum()
    }

    /// Sum of the wall-clock of all spans matching `path` (0 when absent).
    pub fn span(&self, path: &str) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.wall)
            .sum()
    }

    /// The deterministic subset of the telemetry, serialized to a string
    /// that is byte-identical across repeated runs on identical inputs:
    /// the iteration count, per-kernel launch/FLOP/byte counters, and the
    /// bit-exact residual history. Wall-clock (and simulated) times are
    /// excluded.
    pub fn deterministic_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "iterations={}", self.cg.len());
        if let Some(dim) = self.cg_dim {
            let _ = writeln!(out, "cg_dim={dim}");
        }
        if let Some(r0) = self.cg_initial_residual_norm {
            let _ = writeln!(out, "initial_residual_bits={:016x}", r0.to_bits());
        }
        for (name, k) in &self.kernels {
            let _ = writeln!(
                out,
                "kernel={name} launches={} flops={} bytes={}",
                k.launches, k.flops, k.bytes
            );
        }
        for (name, evals) in &self.kernel_evals {
            let _ = writeln!(out, "kernel_evals={name} evals={evals}");
        }
        for s in &self.cg {
            let _ = writeln!(
                out,
                "iter={} residual_bits={:016x} alpha_bits={:016x} beta_bits={:016x}",
                s.iteration,
                s.residual_norm.to_bits(),
                s.alpha.to_bits(),
                s.beta.to_bits()
            );
        }
        if let Some(o) = &self.cg_outcome {
            let _ = writeln!(
                out,
                "outcome={} iterations={} final_residual_bits={:016x} relative_residual_bits={:016x}",
                o.outcome,
                o.iterations,
                o.final_residual_norm.to_bits(),
                o.relative_residual.to_bits()
            );
        }
        if let Some(l) = &self.lowrank {
            let _ = writeln!(
                out,
                "lowrank rank={} strategy={} jitter_steps={} \
                 direct_residual_bits={:016x} pcg_iterations={}",
                l.rank,
                l.strategy,
                l.jitter_steps,
                l.direct_relative_residual.to_bits(),
                l.pcg_iterations
            );
        }
        for s in &self.recovery {
            let _ = writeln!(
                out,
                "recovery={} device={} launch={} iter={} detail={}",
                s.kind.as_str(),
                s.device.map_or_else(|| "-".to_owned(), |d| d.to_string()),
                s.at_launch
                    .map_or_else(|| "-".to_owned(), |l| l.to_string()),
                s.iteration
                    .map_or_else(|| "-".to_owned(), |i| i.to_string()),
                s.detail
            );
        }
        // overload-control counters are event counts, not timings: under a
        // manual clock (or any fixed request schedule) they are exactly
        // reproducible, so they belong to the deterministic subset —
        // unlike the latency/queue timing stats, which stay JSON-only
        if self.serve.overloaded() {
            let _ = writeln!(
                out,
                "serve_overload shed={} deadline_exceeded={} rejected_draining={} \
                 refused_connections={} reload_backoffs={}",
                self.serve.shed_overloaded,
                self.serve.shed_deadline,
                self.serve.shed_draining,
                self.serve.refused_connections,
                self.serve.reload_backoffs.len()
            );
        }
        out
    }

    /// Serializes the full report as line-oriented JSON (one object per
    /// line), the format of the CLI's `--metrics-out`.
    ///
    /// Documented line types and keys:
    /// * `{"type":"cg_start","dim":n,"initial_residual_norm":x}`
    /// * `{"type":"cg_iteration","iteration":k,"residual_norm":x,`
    ///   `"alpha":x,"beta":x,"matvec_wall_s":x}`
    /// * `{"type":"kernel","name":"svm_kernel","launches":n,"flops":n,`
    ///   `"bytes":n,"sim_time_s":x}`
    /// * `{"type":"kernel_evals","name":"svm_kernel","evals":n}` — only
    ///   present when a backend reported physical evaluation counts
    /// * `{"type":"cg_outcome","outcome":"converged|stalled|diverged|`
    ///   `breakdown_indefinite|breakdown_nonfinite|iteration_budget",`
    ///   `"iterations":n,"final_residual_norm":x,"relative_residual":x}` —
    ///   present when a solve ran against a guardrail-aware solver
    /// * `{"type":"lowrank","rank":n,"strategy":"uniform|leverage",`
    ///   `"jitter_steps":n,"direct_relative_residual":x,`
    ///   `"pcg_iterations":n,"assembly_wall_s":x,"solve_wall_s":x}` —
    ///   present when the randomized low-rank solver ran
    /// * `{"type":"simd_dispatch","isa":"scalar|neon|avx2|avx512",`
    ///   `"forced":true|false,"panel_mr":n,"panel_nr":n,"lanes_f32":n,`
    ///   `"lanes_f64":n}` — present when a blocked CPU backend reported
    ///   its micro-kernel dispatch decision
    /// * `{"type":"span","path":"train/cg","wall_s":x}`
    /// * `{"type":"recovery","kind":"retry|failover|straggler|checkpoint|`
    ///   `restart|precondition|precision_escalation|numeric_fault|`
    ///   `solver_fallback","device":n|null,"at_launch":n|null,`
    ///   `"iteration":n|null,"detail":"..."}`
    /// * `{"type":"serve_batches","count":n,"max_queue_depth":n,`
    ///   `"queued_us_sum":n,"process_us_sum":n,"mean_batch_size":x}` —
    ///   present when a server recorded batches into this sink
    /// * `{"type":"serve_batch_size","size":n,"count":n}` — one line per
    ///   batch-size histogram bucket
    /// * `{"type":"serve_requests","count":n,"errors":n,`
    ///   `"latency_us_sum":n,"latency_us_max":n,"mean_latency_us":x}` —
    ///   present when a server completed requests against this sink
    /// * `{"type":"serve_reload","generation":n,"accepted":true|false,`
    ///   `"detail":"..."}` — one line per hot-reload attempt
    /// * `{"type":"serve_overload","shed":n,"deadline_exceeded":n,`
    ///   `"rejected_draining":n,"refused_connections":n}` — present when
    ///   the server's admission/deadline/drain layer shed any work
    /// * `{"type":"serve_reload_backoff","consecutive_failures":n,`
    ///   `"backoff_us":n}` — one line per reload circuit-breaker
    ///   engagement
    ///
    /// Non-finite floats serialize as `null`; all other values are plain
    /// JSON numbers or strings.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        if let (Some(dim), Some(r0)) = (self.cg_dim, self.cg_initial_residual_norm) {
            let _ = writeln!(
                out,
                "{{\"type\":\"cg_start\",\"dim\":{dim},\"initial_residual_norm\":{}}}",
                json_f64(r0)
            );
        }
        for s in &self.cg {
            let _ = writeln!(
                out,
                "{{\"type\":\"cg_iteration\",\"iteration\":{},\"residual_norm\":{},\
                 \"alpha\":{},\"beta\":{},\"matvec_wall_s\":{}}}",
                s.iteration,
                json_f64(s.residual_norm),
                json_f64(s.alpha),
                json_f64(s.beta),
                json_f64(s.matvec_wall.as_secs_f64())
            );
        }
        for (name, k) in &self.kernels {
            let _ = writeln!(
                out,
                "{{\"type\":\"kernel\",\"name\":{},\"launches\":{},\"flops\":{},\
                 \"bytes\":{},\"sim_time_s\":{}}}",
                json_str(name),
                k.launches,
                k.flops,
                k.bytes,
                json_f64(k.sim_time_s)
            );
        }
        for (name, evals) in &self.kernel_evals {
            let _ = writeln!(
                out,
                "{{\"type\":\"kernel_evals\",\"name\":{},\"evals\":{evals}}}",
                json_str(name)
            );
        }
        if let Some(o) = &self.cg_outcome {
            let _ = writeln!(
                out,
                "{{\"type\":\"cg_outcome\",\"outcome\":{},\"iterations\":{},\
                 \"final_residual_norm\":{},\"relative_residual\":{}}}",
                json_str(o.outcome),
                o.iterations,
                json_f64(o.final_residual_norm),
                json_f64(o.relative_residual)
            );
        }
        if let Some(l) = &self.lowrank {
            let _ = writeln!(
                out,
                "{{\"type\":\"lowrank\",\"rank\":{},\"strategy\":{},\
                 \"jitter_steps\":{},\"direct_relative_residual\":{},\
                 \"pcg_iterations\":{},\"assembly_wall_s\":{},\"solve_wall_s\":{}}}",
                l.rank,
                json_str(l.strategy),
                l.jitter_steps,
                json_f64(l.direct_relative_residual),
                l.pcg_iterations,
                json_f64(l.assembly_wall.as_secs_f64()),
                json_f64(l.solve_wall.as_secs_f64())
            );
        }
        if let Some(d) = &self.dispatch {
            let _ = writeln!(
                out,
                "{{\"type\":\"simd_dispatch\",\"isa\":{},\"forced\":{},\
                 \"panel_mr\":{},\"panel_nr\":{},\"lanes_f32\":{},\"lanes_f64\":{}}}",
                json_str(d.isa),
                d.forced,
                d.panel_mr,
                d.panel_nr,
                d.lanes_f32,
                d.lanes_f64
            );
        }
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"path\":{},\"wall_s\":{}}}",
                json_str(&s.path),
                json_f64(s.wall.as_secs_f64())
            );
        }
        for s in &self.recovery {
            let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |n| n.to_string());
            let _ = writeln!(
                out,
                "{{\"type\":\"recovery\",\"kind\":{},\"device\":{},\"at_launch\":{},\
                 \"iteration\":{},\"detail\":{}}}",
                json_str(s.kind.as_str()),
                opt(s.device.map(|d| d as u64)),
                opt(s.at_launch),
                opt(s.iteration.map(|i| i as u64)),
                json_str(&s.detail)
            );
        }
        if self.serve.batches > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"serve_batches\",\"count\":{},\"max_queue_depth\":{},\
                 \"queued_us_sum\":{},\"process_us_sum\":{},\"mean_batch_size\":{}}}",
                self.serve.batches,
                self.serve.max_queue_depth,
                self.serve.queued_us_sum,
                self.serve.process_us_sum,
                json_f64(self.serve.mean_batch_size())
            );
            for (size, count) in &self.serve.batch_size_hist {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"serve_batch_size\",\"size\":{size},\"count\":{count}}}"
                );
            }
        }
        if self.serve.requests > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"serve_requests\",\"count\":{},\"errors\":{},\
                 \"latency_us_sum\":{},\"latency_us_max\":{},\"mean_latency_us\":{}}}",
                self.serve.requests,
                self.serve.request_errors,
                self.serve.latency_us_sum,
                self.serve.latency_us_max,
                json_f64(self.serve.mean_latency_us())
            );
        }
        for r in &self.serve.reloads {
            let _ = writeln!(
                out,
                "{{\"type\":\"serve_reload\",\"generation\":{},\"accepted\":{},\"detail\":{}}}",
                r.generation,
                r.accepted,
                json_str(&r.detail)
            );
        }
        if self.serve.overloaded() {
            let _ = writeln!(
                out,
                "{{\"type\":\"serve_overload\",\"shed\":{},\"deadline_exceeded\":{},\
                 \"rejected_draining\":{},\"refused_connections\":{}}}",
                self.serve.shed_overloaded,
                self.serve.shed_deadline,
                self.serve.shed_draining,
                self.serve.refused_connections
            );
        }
        for b in &self.serve.reload_backoffs {
            let _ = writeln!(
                out,
                "{{\"type\":\"serve_reload_backoff\",\"consecutive_failures\":{},\
                 \"backoff_us\":{}}}",
                b.consecutive_failures, b.backoff_us
            );
        }
        out
    }
}

/// Formats an `f64` as a JSON value (`null` for non-finite values) — the
/// convention of every JSON line this module (and the serving layer's
/// wire protocol) emits.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // Rust renders integral floats as "1.0" — already valid JSON.
        s
    } else {
        "null".to_owned()
    }
}

/// Formats a string as a JSON string literal with minimal escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A local, lock-free span collector used by the training drivers.
///
/// Spans are always collected (they are how [`crate::timing::ComponentTimes`]
/// is derived) and flushed into the optional [`MetricsSink`] at the end of
/// the run.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<SpanRecord>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pre-measured span.
    pub fn record(&mut self, path: impl Into<String>, wall: Duration) {
        self.spans.push(SpanRecord {
            path: path.into(),
            wall,
        });
    }

    /// Runs `f`, recording its wall-clock under `path`.
    pub fn time<R>(&mut self, path: &str, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let result = f();
        self.record(path, t0.elapsed());
        result
    }

    /// The spans recorded so far, in recording order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Replays every recorded span into a sink.
    pub fn flush_into(&self, sink: &dyn MetricsSink) {
        for s in &self.spans {
            sink.record_span(&s.path, s.wall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> CgIterationSample {
        CgIterationSample {
            iteration: i,
            residual_norm: 1.0 / (i as f64 + 1.0),
            alpha: 0.5,
            beta: 0.25,
            matvec_wall: Duration::from_micros(10),
        }
    }

    #[test]
    fn kernel_counters_accumulate() {
        let t = Telemetry::new();
        t.record_launch("svm_kernel", 1, 100, 10, 0.5);
        t.record_launch("svm_kernel", 2, 100, 10, 0.5);
        t.record_launch("q_kernel", 1, 7, 3, 0.25);
        let r = t.report();
        assert_eq!(r.kernels["svm_kernel"].launches, 3);
        assert_eq!(r.kernels["svm_kernel"].flops, 200);
        assert_eq!(r.total_launches(), 4);
        assert_eq!(r.total_flops(), 207);
        assert_eq!(r.total_bytes(), 23);
        assert_eq!(r.kernels["svm_kernel"].achieved_flops(), 200.0);
    }

    #[test]
    fn cg_samples_in_order_and_start_resets() {
        let t = Telemetry::new();
        t.record_cg_start(8, 2.0);
        t.record_cg_iteration(sample(1));
        t.record_cg_iteration(sample(2));
        // a second solve on the same sink restarts the history
        t.record_cg_start(8, 2.0);
        t.record_cg_iteration(sample(1));
        let r = t.report();
        assert_eq!(r.iterations(), 1);
        assert_eq!(r.cg_dim, Some(8));
        assert_eq!(r.cg_initial_residual_norm, Some(2.0));
        assert_eq!(r.residual_history(), vec![0.5]);
    }

    #[test]
    fn deterministic_summary_is_stable_and_ignores_walltime() {
        let build = |wall_us: u64| {
            let t = Telemetry::new();
            t.record_cg_start(4, 1.5);
            t.record_launch("svm_kernel", 1, 123, 456, 0.75);
            t.record_cg_iteration(CgIterationSample {
                matvec_wall: Duration::from_micros(wall_us),
                ..sample(1)
            });
            t.record_span(spans::CG, Duration::from_micros(wall_us));
            t.report().deterministic_summary()
        };
        assert_eq!(build(10), build(99_999));
        assert!(build(1).contains("kernel=svm_kernel launches=1 flops=123 bytes=456"));
    }

    #[test]
    fn json_lines_have_documented_shape() {
        let t = Telemetry::new();
        t.record_cg_start(4, 1.5);
        t.record_cg_iteration(sample(1));
        t.record_launch("q_kernel", 1, 10, 20, 0.0);
        t.record_span(spans::TRAIN, Duration::from_millis(5));
        let json = t.report().to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"cg_start\""));
        assert!(lines[1].contains("\"type\":\"cg_iteration\""));
        assert!(lines[2].contains("\"name\":\"q_kernel\""));
        assert!(lines[3].contains("\"path\":\"train\""));
    }

    #[test]
    fn kernel_evals_accumulate_and_serialize() {
        let t = Telemetry::new();
        t.record_kernel_evals("svm_kernel", 55);
        t.record_kernel_evals("svm_kernel", 55);
        let r = t.report();
        assert_eq!(r.kernel_evals["svm_kernel"], 110);
        assert!(r
            .deterministic_summary()
            .contains("kernel_evals=svm_kernel evals=110"));
        let json = r.to_json_lines();
        assert!(json.contains("{\"type\":\"kernel_evals\",\"name\":\"svm_kernel\",\"evals\":110}"));
        // sinks that never see the channel emit no kernel_evals lines
        let empty = Telemetry::new().report();
        assert!(!empty.deterministic_summary().contains("kernel_evals"));
        assert!(!empty.to_json_lines().contains("kernel_evals"));
    }

    #[test]
    fn recovery_events_are_recorded_and_serialized() {
        let t = Telemetry::new();
        t.record_recovery(RecoverySample::device_event(
            RecoveryKind::Retry,
            1,
            5,
            "transient timeout, retry 1",
        ));
        t.record_recovery(RecoverySample::checkpoint(8));
        // cg_start must NOT clear recovery history: device-setup faults
        // legitimately predate the solve.
        t.record_cg_start(4, 1.0);
        let r = t.report();
        assert_eq!(r.recovery.len(), 2);
        assert_eq!(r.recovery[0].kind, RecoveryKind::Retry);
        assert_eq!(r.recovery[1].iteration, Some(8));
        let json = r.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines.iter().any(|l| l.contains("\"type\":\"recovery\"")
            && l.contains("\"kind\":\"retry\"")
            && l.contains("\"device\":1")
            && l.contains("\"at_launch\":5")
            && l.contains("\"iteration\":null")));
        assert!(lines.iter().any(|l| l.contains("\"kind\":\"checkpoint\"")
            && l.contains("\"device\":null")
            && l.contains("\"iteration\":8")));
        let summary = r.deterministic_summary();
        assert!(summary.contains("recovery=retry device=1 launch=5 iter=-"));
        assert!(summary.contains("recovery=checkpoint device=- launch=- iter=8"));
    }

    #[test]
    fn lowrank_sample_is_recorded_and_serialized() {
        let t = Telemetry::new();
        t.record_lowrank(LowRankSample {
            rank: 64,
            strategy: "uniform",
            jitter_steps: 2,
            direct_relative_residual: 1e-3,
            pcg_iterations: 7,
            assembly_wall: Duration::from_micros(123),
            solve_wall: Duration::from_micros(456),
        });
        let r = t.report();
        assert_eq!(r.lowrank.as_ref().unwrap().rank, 64);
        let json = r.to_json_lines();
        assert!(json.contains("\"type\":\"lowrank\""));
        assert!(json.contains("\"rank\":64"));
        assert!(json.contains("\"strategy\":\"uniform\""));
        assert!(json.contains("\"pcg_iterations\":7"));
        // deterministic summary includes the rank/residual but no wall time
        let wall_free = {
            let t2 = Telemetry::new();
            t2.record_lowrank(LowRankSample {
                assembly_wall: Duration::from_secs(9),
                solve_wall: Duration::from_secs(9),
                ..r.lowrank.clone().unwrap()
            });
            t2.report().deterministic_summary()
        };
        assert_eq!(r.deterministic_summary(), wall_free);
        assert!(r.deterministic_summary().contains("lowrank rank=64"));
    }

    #[test]
    fn dispatch_sample_serializes_but_stays_out_of_deterministic_summary() {
        let t = Telemetry::new();
        t.record_dispatch(DispatchSample {
            isa: "avx2",
            forced: true,
            panel_mr: 4,
            panel_nr: 4,
            lanes_f32: 8,
            lanes_f64: 4,
        });
        let r = t.report();
        assert_eq!(r.dispatch.as_ref().unwrap().isa, "avx2");
        let json = r.to_json_lines();
        assert!(json.contains(
            "{\"type\":\"simd_dispatch\",\"isa\":\"avx2\",\"forced\":true,\
             \"panel_mr\":4,\"panel_nr\":4,\"lanes_f32\":8,\"lanes_f64\":4}"
        ));
        // the deterministic subset must stay byte-identical across hosts
        // of different ISA tiers, so the dispatch line is JSON-only
        let empty = Telemetry::new().report();
        assert_eq!(r.deterministic_summary(), empty.deterministic_summary());
        assert!(!empty.to_json_lines().contains("simd_dispatch"));
    }

    #[test]
    fn serve_stats_aggregate_boundedly_and_serialize() {
        let t = Telemetry::new();
        t.record_serve_batch(ServeBatchSample {
            batch_size: 3,
            queue_depth: 5,
            queued_us: 100,
            process_us: 40,
        });
        t.record_serve_batch(ServeBatchSample {
            batch_size: 3,
            queue_depth: 1,
            queued_us: 50,
            process_us: 60,
        });
        t.record_serve_batch(ServeBatchSample {
            batch_size: 1,
            queue_depth: 0,
            queued_us: 0,
            process_us: 10,
        });
        t.record_serve_request(ServeRequestSample {
            latency_us: 200,
            ok: true,
        });
        t.record_serve_request(ServeRequestSample {
            latency_us: 400,
            ok: false,
        });
        t.record_serve_reload(ServeReloadSample {
            generation: 2,
            accepted: true,
            detail: "binary model, 8 features".into(),
        });
        t.record_serve_reload(ServeReloadSample {
            generation: 2,
            accepted: false,
            detail: "torn file".into(),
        });
        let r = t.report();
        assert_eq!(r.serve.batches, 3);
        assert_eq!(r.serve.batch_size_hist[&3], 2);
        assert_eq!(r.serve.batch_size_hist[&1], 1);
        assert_eq!(r.serve.max_queue_depth, 5);
        assert_eq!(r.serve.requests, 2);
        assert_eq!(r.serve.request_errors, 1);
        assert_eq!(r.serve.latency_us_max, 400);
        assert!((r.serve.mean_batch_size() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.serve.mean_latency_us(), 300.0);
        let json = r.to_json_lines();
        assert!(json.contains("\"type\":\"serve_batches\",\"count\":3"));
        assert!(json.contains("{\"type\":\"serve_batch_size\",\"size\":3,\"count\":2}"));
        assert!(json.contains("\"type\":\"serve_requests\",\"count\":2,\"errors\":1"));
        assert!(json.contains("\"type\":\"serve_reload\",\"generation\":2,\"accepted\":false"));
        // serve telemetry is timing-dependent: the deterministic subset
        // must not change when a server records into the sink
        let empty = Telemetry::new().report();
        assert_eq!(r.deterministic_summary(), empty.deterministic_summary());
        // sinks never touched by a server emit no serve lines
        assert!(!empty.to_json_lines().contains("serve_"));
        assert!(empty.serve.is_empty() && !r.serve.is_empty());
    }

    #[test]
    fn serve_overload_counters_reach_deterministic_summary_and_json() {
        let t = Telemetry::new();
        t.record_serve_shed(ServeShedKind::Overloaded);
        t.record_serve_shed(ServeShedKind::Overloaded);
        t.record_serve_shed(ServeShedKind::DeadlineExceeded);
        t.record_serve_shed(ServeShedKind::ShuttingDown);
        t.record_serve_shed(ServeShedKind::RefusedConnection);
        t.record_serve_reload_backoff(ServeReloadBackoffSample {
            consecutive_failures: 3,
            backoff_us: 1_000_000,
        });
        let r = t.report();
        assert_eq!(r.serve.shed_overloaded, 2);
        assert_eq!(r.serve.shed_deadline, 1);
        assert_eq!(r.serve.shed_draining, 1);
        assert_eq!(r.serve.refused_connections, 1);
        assert_eq!(r.serve.reload_backoffs.len(), 1);
        assert!(r.serve.overloaded() && !r.serve.is_empty());
        // unlike the timing-dependent serve stats, shed COUNTS are exact
        // under a fixed request schedule, so they pin into the
        // deterministic summary — and only when something was shed
        let summary = r.deterministic_summary();
        assert!(
            summary.contains(
                "serve_overload shed=2 deadline_exceeded=1 rejected_draining=1 \
                 refused_connections=1 reload_backoffs=1"
            ),
            "{summary}"
        );
        let json = r.to_json_lines();
        assert!(json.contains(
            "{\"type\":\"serve_overload\",\"shed\":2,\"deadline_exceeded\":1,\
             \"rejected_draining\":1,\"refused_connections\":1}"
        ));
        assert!(json.contains(
            "{\"type\":\"serve_reload_backoff\",\"consecutive_failures\":3,\
             \"backoff_us\":1000000}"
        ));
        // an overload-free run keeps both serializations untouched
        let clean = Telemetry::new().report();
        assert!(!clean.deterministic_summary().contains("serve_overload"));
        assert!(!clean.to_json_lines().contains("serve_overload"));
    }

    #[test]
    fn json_escaping_and_nonfinite_floats() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(1e-7), "1e-7");
    }

    #[test]
    fn span_recorder_times_and_flushes() {
        let mut rec = SpanRecorder::new();
        let v = rec.time(spans::CG, || 41 + 1);
        assert_eq!(v, 42);
        rec.record(spans::READ, Duration::from_millis(3));
        assert_eq!(rec.spans().len(), 2);
        let t = Telemetry::new();
        rec.flush_into(&t);
        let r = t.report();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.span(spans::READ), Duration::from_millis(3));
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.record_launch("k", 1, 1, 1, 0.0);
        t.record_cg_start(2, 1.0);
        t.record_cg_iteration(sample(1));
        t.reset();
        assert_eq!(t.report(), TelemetryReport::default());
    }
}
