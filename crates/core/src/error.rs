//! Error type for training and prediction.

use std::fmt;

use plssvm_data::{CheckpointError, DataError};
use plssvm_simgpu::SimGpuError;

use crate::cg::SolveOutcome;

/// Errors produced by the LS-SVM solver.
#[derive(Debug)]
pub enum SvmError {
    /// Invalid or unreadable input data.
    Data(DataError),
    /// A simulated-device failure (typically out of device memory).
    Device(SimGpuError),
    /// The durable checkpoint journal could not be written, or a resume
    /// was requested but no usable snapshot exists / the journal belongs
    /// to a different training context.
    Checkpoint(CheckpointError),
    /// Invalid solver parameters or a solver-level failure.
    Solver(String),
    /// The solve finished without meeting the ε criterion even after the
    /// recovery ladder was exhausted, and the caller asked for strict
    /// handling (the CLI's `--on-nonconverged error`). Carries the
    /// classified [`SolveOutcome`] so callers can distinguish a budget
    /// exhaustion from a numerical breakdown.
    NonConverged {
        /// Why the solve stopped.
        outcome: SolveOutcome,
        /// Final `‖r‖/‖b‖`.
        relative_residual: f64,
        /// Matvec-bearing iterations across all escalation rungs.
        iterations: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::Data(e) => write!(f, "data error: {e}"),
            SvmError::Device(e) => write!(f, "device error: {e}"),
            SvmError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SvmError::Solver(msg) => write!(f, "solver error: {msg}"),
            SvmError::NonConverged {
                outcome,
                relative_residual,
                iterations,
            } => write!(
                f,
                "solver did not converge: {outcome} after {iterations} iterations \
                 (relative residual {relative_residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for SvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvmError::Data(e) => Some(e),
            SvmError::Device(e) => Some(e),
            SvmError::Checkpoint(e) => Some(e),
            SvmError::Solver(_) | SvmError::NonConverged { .. } => None,
        }
    }
}

impl From<DataError> for SvmError {
    fn from(e: DataError) -> Self {
        SvmError::Data(e)
    }
}

impl From<CheckpointError> for SvmError {
    fn from(e: CheckpointError) -> Self {
        SvmError::Checkpoint(e)
    }
}

impl From<SimGpuError> for SvmError {
    fn from(e: SimGpuError) -> Self {
        SvmError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = SvmError::from(DataError::Invalid("x".into()));
        assert!(e.to_string().contains("data error"));
        assert!(e.source().is_some());

        let e = SvmError::from(SimGpuError::InvalidLaunch("y".into()));
        assert!(e.to_string().contains("device error"));
        assert!(e.source().is_some());

        let e = SvmError::Solver("diverged".into());
        assert!(e.to_string().contains("diverged"));
        assert!(e.source().is_none());
    }
}
