//! Kernel function evaluation (§II-E).
//!
//! PLSSVM provides three kernel functions:
//!
//! ```text
//! linear:      ⟨x, x'⟩
//! polynomial:  (γ·⟨x, x'⟩ + r)^d          γ > 0, d ∈ ℤ
//! radial:      exp(−γ·‖x − x'‖²)          γ > 0
//! sigmoid:     tanh(γ·⟨x, x'⟩ + r)        γ > 0   (LIBSVM-parity extension)
//! ```
//!
//! The hyperparameter container [`KernelSpec`] lives in `plssvm-data`
//! because it is part of the model file format; this module adds the
//! evaluation code for both the row-major and the SoA layouts.

use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::Real;

use crate::simd::{self, Isa};

/// LIBSVM's default `γ = 1 / num_features`.
///
/// Zero-feature data is rejected at backend construction
/// ([`crate::backend::Prepared::new`]), so the `max(1)` clamp here is a
/// belt-and-braces guard against division by zero, never a silent
/// reinterpretation of real training data.
pub fn default_gamma<T: Real>(num_features: usize) -> T {
    T::ONE / T::from_usize(num_features.max(1))
}

/// Scalar product of two feature rows.
#[inline]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// Squared euclidean distance of two feature rows.
#[inline]
pub fn dist_sq<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc = d.mul_add(d, acc);
    }
    acc
}

/// Evaluates the kernel function on two feature rows.
#[inline]
pub fn kernel_row<T: Real>(spec: &KernelSpec<T>, a: &[T], b: &[T]) -> T {
    match *spec {
        KernelSpec::Linear => dot(a, b),
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => gamma.mul_add(dot(a, b), coef0).powi(degree),
        KernelSpec::Rbf { gamma } => (-gamma * dist_sq(a, b)).exp(),
        KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(dot(a, b), coef0).tanh(),
    }
}

/// Evaluates the kernel function on two points of an SoA matrix.
#[inline]
pub fn kernel_soa<T: Real>(spec: &KernelSpec<T>, data: &SoAMatrix<T>, i: usize, j: usize) -> T {
    match *spec {
        KernelSpec::Linear => data.dot(i, j),
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => gamma.mul_add(data.dot(i, j), coef0).powi(degree),
        KernelSpec::Rbf { gamma } => (-gamma * data.dist_sq(i, j)).exp(),
        KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(data.dot(i, j), coef0).tanh(),
    }
}

/// Applies the kernel's scalar-product postprocessing to an
/// already-computed inner product. Only valid for kernels defined on the
/// inner product (linear and polynomial) — this is the operation that makes
/// the feature-wise multi-device split work for the linear kernel: partial
/// dot products are summed first, the (identity) postprocessing applied
/// once.
#[inline]
pub fn finish_inner_product<T: Real>(spec: &KernelSpec<T>, ip: T) -> T {
    match *spec {
        KernelSpec::Linear => ip,
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => gamma.mul_add(ip, coef0).powi(degree),
        KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(ip, coef0).tanh(),
        KernelSpec::Rbf { .. } => {
            unreachable!("the RBF kernel is not an inner-product kernel")
        }
    }
}

/// Register micro-tile height of the panel evaluators: how many `i` rows
/// one [`kernel_panel`] call covers.
pub const PANEL_MR: usize = 4;

/// Register micro-tile width of the panel evaluators: how many `j` rows
/// one [`kernel_panel`] call covers.
pub const PANEL_NR: usize = 4;

/// One `PANEL_MR×PANEL_NR` block of kernel (or inner-product) values.
/// Entries beyond the active `ra.len()×rb.len()` sub-block are
/// unspecified filler and must not be read.
pub type Panel<T> = [[T; PANEL_NR]; PANEL_MR];

/// GEMM-style panel inner products: `out[a][b] = ⟨ra[a], rb[b]⟩` for up to
/// [`PANEL_MR`]×[`PANEL_NR`] row pairs in a single pass over the features.
///
/// This is the **scalar tier** of the panel engine — the reference the
/// explicit SIMD kernels of [`crate::simd`] are tested against, selected
/// by dispatch whenever vector code is unavailable or forced off. The
/// full-tile fast path keeps all `MR·NR` accumulators live across the
/// feature loop — independent fused multiply–add chains the compiler can
/// hold in registers and auto-vectorize, instead of the latency-bound
/// single chain of [`dot`]. Partial tiles fall back to per-pair [`dot`]s.
#[inline]
pub fn panel_dot<T: Real>(ra: &[&[T]], rb: &[&[T]]) -> Panel<T> {
    debug_assert!(ra.len() <= PANEL_MR && rb.len() <= PANEL_NR);
    let mut acc = [[T::ZERO; PANEL_NR]; PANEL_MR];
    if ra.len() == PANEL_MR && rb.len() == PANEL_NR {
        let d = ra[0].len();
        let a = [ra[0], &ra[1][..d], &ra[2][..d], &ra[3][..d]];
        let b = [&rb[0][..d], &rb[1][..d], &rb[2][..d], &rb[3][..d]];
        for f in 0..d {
            let av = [a[0][f], a[1][f], a[2][f], a[3][f]];
            let bv = [b[0][f], b[1][f], b[2][f], b[3][f]];
            for (acc_row, &x) in acc.iter_mut().zip(&av) {
                for (slot, &y) in acc_row.iter_mut().zip(&bv) {
                    *slot = x.mul_add(y, *slot);
                }
            }
        }
    } else {
        for (acc_row, a) in acc.iter_mut().zip(ra) {
            for (slot, b) in acc_row.iter_mut().zip(rb) {
                *slot = dot(a, b);
            }
        }
    }
    acc
}

/// Panel counterpart of [`dist_sq`]: `out[a][b] = ‖ra[a] − rb[b]‖²` with
/// the same register-tiled accumulation as [`panel_dot`].
#[inline]
pub fn panel_dist_sq<T: Real>(ra: &[&[T]], rb: &[&[T]]) -> Panel<T> {
    debug_assert!(ra.len() <= PANEL_MR && rb.len() <= PANEL_NR);
    let mut acc = [[T::ZERO; PANEL_NR]; PANEL_MR];
    if ra.len() == PANEL_MR && rb.len() == PANEL_NR {
        let d = ra[0].len();
        let a = [ra[0], &ra[1][..d], &ra[2][..d], &ra[3][..d]];
        let b = [&rb[0][..d], &rb[1][..d], &rb[2][..d], &rb[3][..d]];
        for f in 0..d {
            let av = [a[0][f], a[1][f], a[2][f], a[3][f]];
            let bv = [b[0][f], b[1][f], b[2][f], b[3][f]];
            for (acc_row, &x) in acc.iter_mut().zip(&av) {
                for (slot, &y) in acc_row.iter_mut().zip(&bv) {
                    let diff = x - y;
                    *slot = diff.mul_add(diff, *slot);
                }
            }
        }
    } else {
        for (acc_row, a) in acc.iter_mut().zip(ra) {
            for (slot, b) in acc_row.iter_mut().zip(rb) {
                *slot = dist_sq(a, b);
            }
        }
    }
    acc
}

/// Evaluates the kernel on every pair `(ra[a], rb[b])` of an
/// `ra.len()×rb.len()` micro-tile (at most [`PANEL_MR`]×[`PANEL_NR`]) —
/// the panel form of [`kernel_row`] used by the blocked CPU matvec engine
/// and the prediction paths. All four kernel functions are supported: the
/// inner-product kernels (linear, polynomial, sigmoid) post-process a
/// [`panel_dot`], the RBF kernel a [`panel_dist_sq`].
///
/// The inner products run on the micro-kernels of the given [`Isa`] tier
/// (see [`crate::simd`]); `Isa::Scalar` reproduces the pre-SIMD engine
/// bit-for-bit. The transcendental postprocessing is always scalar.
#[inline]
pub fn kernel_panel<T: Real>(spec: &KernelSpec<T>, isa: Isa, ra: &[&[T]], rb: &[&[T]]) -> Panel<T> {
    match *spec {
        KernelSpec::Linear => simd::panel_dot(isa, ra, rb),
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => {
            let mut p = simd::panel_dot(isa, ra, rb);
            for row in &mut p {
                for v in row {
                    *v = gamma.mul_add(*v, coef0).powi(degree);
                }
            }
            p
        }
        KernelSpec::Rbf { gamma } => {
            let mut p = simd::panel_dist_sq(isa, ra, rb);
            for row in &mut p {
                for v in row {
                    *v = (-gamma * *v).exp();
                }
            }
            p
        }
        KernelSpec::Sigmoid { gamma, coef0 } => {
            let mut p = simd::panel_dot(isa, ra, rb);
            for row in &mut p {
                for v in row {
                    *v = gamma.mul_add(*v, coef0).tanh();
                }
            }
            p
        }
    }
}

/// The FLOPs of one kernel evaluation over `d` features. Used by the
/// simulated backend's work tallies (fused multiply-add counted as 2).
pub fn kernel_flops(spec: &KernelSpec<impl Real>, d: usize) -> u64 {
    let d = d as u64;
    match spec {
        KernelSpec::Linear => 2 * d,
        // dot (2d) + scale/offset (2) + pow (~2·degree)
        KernelSpec::Polynomial { degree, .. } => 2 * d + 2 + 2 * (*degree as u64),
        // diff+square+add (3d) + scale (1) + exp (~10)
        KernelSpec::Rbf { .. } => 3 * d + 11,
        // dot (2d) + scale/offset (2) + tanh (~10)
        KernelSpec::Sigmoid { .. } => 2 * d + 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::dense::DenseMatrix;

    fn a() -> Vec<f64> {
        vec![1.0, 2.0, 3.0]
    }
    fn b() -> Vec<f64> {
        vec![-1.0, 0.5, 2.0]
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&a(), &b()), -1.0 + 1.0 + 6.0);
        assert_eq!(dist_sq(&a(), &b()), 4.0 + 2.25 + 1.0);
    }

    #[test]
    fn linear_kernel_is_dot() {
        assert_eq!(kernel_row(&KernelSpec::Linear, &a(), &b()), 6.0);
    }

    #[test]
    fn polynomial_kernel() {
        let spec = KernelSpec::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        };
        // (0.5*6 + 1)^2 = 16
        assert_eq!(kernel_row(&spec, &a(), &b()), 16.0);
    }

    #[test]
    fn rbf_kernel() {
        let spec = KernelSpec::Rbf { gamma: 0.1 };
        let expected = (-0.1f64 * 7.25).exp();
        assert!((kernel_row(&spec, &a(), &b()) - expected).abs() < 1e-15);
    }

    #[test]
    fn rbf_of_identical_points_is_one() {
        let spec = KernelSpec::Rbf { gamma: 2.0 };
        assert_eq!(kernel_row(&spec, &a(), &a()), 1.0);
    }

    #[test]
    fn sigmoid_kernel() {
        let spec = KernelSpec::Sigmoid {
            gamma: 0.25,
            coef0: -0.5,
        };
        let expected = (0.25f64 * 6.0 - 0.5).tanh();
        assert!((kernel_row(&spec, &a(), &b()) - expected).abs() < 1e-15);
        // bounded in (-1, 1)
        assert!(kernel_row(&spec, &a(), &a()).abs() < 1.0);
        // inner-product finish agrees
        assert_eq!(
            finish_inner_product(&spec, dot(&a(), &b())),
            kernel_row(&spec, &a(), &b())
        );
    }

    #[test]
    fn soa_matches_row_major() {
        let m = DenseMatrix::from_rows(vec![a(), b()]).unwrap();
        let s = SoAMatrix::from_dense(&m, 4);
        for spec in [
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.25,
                coef0: 0.5,
            },
            KernelSpec::Rbf { gamma: 0.75 },
            KernelSpec::Sigmoid {
                gamma: 0.3,
                coef0: 0.1,
            },
        ] {
            let row = kernel_row(&spec, &a(), &b());
            let soa = kernel_soa(&spec, &s, 0, 1);
            assert!((row - soa).abs() < 1e-12, "{spec:?}: {row} vs {soa}");
        }
    }

    #[test]
    fn finish_inner_product_matches_full_eval() {
        let ip = dot(&a(), &b());
        assert_eq!(finish_inner_product(&KernelSpec::Linear, ip), 6.0);
        let spec = KernelSpec::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        };
        assert_eq!(
            finish_inner_product(&spec, ip),
            kernel_row(&spec, &a(), &b())
        );
    }

    #[test]
    #[should_panic]
    fn finish_inner_product_rejects_rbf() {
        let _ = finish_inner_product(&KernelSpec::Rbf { gamma: 1.0f64 }, 1.0);
    }

    /// Four deterministic pseudo-random rows of dimension `d`.
    fn panel_rows(d: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..4)
            .map(|r| {
                (0..d)
                    .map(|f| (((r as u64 * 31 + f as u64 * 7 + salt) % 17) as f64 - 8.0) / 5.0)
                    .collect()
            })
            .collect()
    }

    fn all_specs() -> Vec<KernelSpec<f64>> {
        vec![
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.25,
                coef0: 0.5,
            },
            KernelSpec::Rbf { gamma: 0.75 },
            KernelSpec::Sigmoid {
                gamma: 0.3,
                coef0: 0.1,
            },
        ]
    }

    #[test]
    fn panels_match_scalar_evaluation_for_all_kernels() {
        for isa in Isa::available() {
            for d in [1, 3, 8, 17] {
                let ra_owned = panel_rows(d, 1);
                let rb_owned = panel_rows(d, 9);
                let ra: Vec<&[f64]> = ra_owned.iter().map(|r| r.as_slice()).collect();
                let rb: Vec<&[f64]> = rb_owned.iter().map(|r| r.as_slice()).collect();
                for spec in all_specs() {
                    // full tiles and every partial-tile shape
                    for mh in 1..=PANEL_MR {
                        for nh in 1..=PANEL_NR {
                            let p = kernel_panel(&spec, isa, &ra[..mh], &rb[..nh]);
                            for (a, row_a) in ra[..mh].iter().enumerate() {
                                for (b, row_b) in rb[..nh].iter().enumerate() {
                                    let reference = kernel_row(&spec, row_a, row_b);
                                    assert!(
                                        (p[a][b] - reference).abs() < 1e-12,
                                        "{spec:?} {isa:?} d={d} tile {mh}x{nh} entry ({a},{b}): \
                                         {} vs {reference}",
                                        p[a][b]
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The scalar tier of the dispatched panel must reproduce the panel
    /// evaluators of this module exactly (the pre-SIMD engine).
    #[test]
    fn scalar_tier_kernel_panel_is_bit_identical_to_scalar_panels() {
        let ra_owned = panel_rows(11, 3);
        let rb_owned = panel_rows(11, 6);
        let ra: Vec<&[f64]> = ra_owned.iter().map(|r| r.as_slice()).collect();
        let rb: Vec<&[f64]> = rb_owned.iter().map(|r| r.as_slice()).collect();
        for spec in all_specs() {
            let dispatched = kernel_panel(&spec, Isa::Scalar, &ra, &rb);
            let reference = match spec {
                KernelSpec::Rbf { gamma } => {
                    let mut p = panel_dist_sq(&ra, &rb);
                    for row in &mut p {
                        for v in row {
                            *v = (-gamma * *v).exp();
                        }
                    }
                    p
                }
                ref s => {
                    let mut p = panel_dot(&ra, &rb);
                    for row in &mut p {
                        for v in row {
                            *v = finish_inner_product(s, *v);
                        }
                    }
                    p
                }
            };
            for a in 0..PANEL_MR {
                for b in 0..PANEL_NR {
                    assert_eq!(
                        dispatched[a][b].to_bits(),
                        reference[a][b].to_bits(),
                        "{spec:?} entry ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn panel_dot_and_dist_match_scalar_helpers() {
        let ra_owned = panel_rows(6, 2);
        let rb_owned = panel_rows(6, 4);
        let ra: Vec<&[f64]> = ra_owned.iter().map(|r| r.as_slice()).collect();
        let rb: Vec<&[f64]> = rb_owned.iter().map(|r| r.as_slice()).collect();
        let pd = panel_dot(&ra, &rb);
        let pq = panel_dist_sq(&ra, &rb);
        for a in 0..PANEL_MR {
            for b in 0..PANEL_NR {
                assert!((pd[a][b] - dot(ra[a], rb[b])).abs() < 1e-12);
                assert!((pq[a][b] - dist_sq(ra[a], rb[b])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn default_gamma_is_reciprocal() {
        assert_eq!(default_gamma::<f64>(4), 0.25);
        assert_eq!(default_gamma::<f64>(0), 1.0); // clamped, no div by zero
    }

    #[test]
    fn kernel_flops_scale_with_dimension() {
        assert_eq!(kernel_flops(&KernelSpec::<f64>::Linear, 10), 20);
        assert!(kernel_flops(&KernelSpec::Rbf { gamma: 1.0f64 }, 10) > 30);
    }
}
