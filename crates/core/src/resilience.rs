//! Retry and graceful-degradation policy for storage I/O.
//!
//! The `plssvm-data` [`Vfs`](plssvm_data::vfs::Vfs) layer makes storage
//! faults *observable*; this module decides what the training pipeline
//! does about them:
//!
//! * transient faults (a flaky fsync, a momentary EIO) are retried with
//!   capped exponential backoff, each retry recorded as an
//!   [`RecoveryKind::IoRetry`] telemetry event,
//! * persistent faults exhaust the attempt budget and surface to the
//!   caller, which picks a degradation: checkpoint writes disable
//!   checkpointing and let the solve continue
//!   ([`RecoveryKind::IoDegraded`]); final artifact writes are fatal
//!   with a distinct exit code (the CLI's exit 4).
//!
//! Backoff sleeps are real but tiny and bounded (the default policy
//! sleeps at most ~35 ms in total), so fault harnesses stay fast and
//! deterministic in outcome — the *decision* sequence depends only on
//! the injected fault schedule, never on timing.

use std::fmt::Display;
use std::time::Duration;

use crate::trace::{MetricsSink, RecoveryKind, RecoverySample};

/// Retry budget and backoff shape for storage operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRetryPolicy {
    /// Total attempts (first try + retries); clamped to at least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubled each further retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for IoRetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl IoRetryPolicy {
    /// A policy that never retries (single attempt, for tests).
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based), doubled each
    /// time and capped at [`IoRetryPolicy::max_backoff`].
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << (retry - 1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Runs `op` under `policy`, retrying failures with capped backoff.
///
/// Every retry emits one [`RecoveryKind::IoRetry`] event to `metrics`
/// naming `what` and the error that triggered it. Returns the first
/// success, or the last error once the attempt budget is exhausted —
/// by then the failure is treated as persistent and the caller decides
/// whether to degrade or abort.
pub fn with_io_retry<T, E: Display>(
    policy: &IoRetryPolicy,
    metrics: Option<&dyn MetricsSink>,
    what: &str,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 1..=attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt < attempts {
                    if let Some(m) = metrics {
                        m.record_recovery(RecoverySample::solver(
                            RecoveryKind::IoRetry,
                            attempt as usize,
                            format!("{what}: attempt {attempt}/{attempts} failed: {e}"),
                        ));
                    }
                    let pause = policy.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                last_err = Some(e);
            }
        }
    }
    Err(last_err.expect("at least one attempt always runs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Telemetry;

    #[test]
    fn first_success_needs_no_telemetry() {
        let telemetry = Telemetry::new();
        let r: Result<u32, String> = with_io_retry(
            &IoRetryPolicy::default(),
            Some(&telemetry),
            "write model",
            || Ok(7),
        );
        assert_eq!(r.unwrap(), 7);
        assert!(telemetry.report().recovery.is_empty());
    }

    #[test]
    fn transient_failure_is_retried_and_recorded() {
        let telemetry = Telemetry::new();
        let mut calls = 0;
        let policy = IoRetryPolicy {
            base_backoff: Duration::ZERO,
            ..Default::default()
        };
        let r: Result<u32, String> = with_io_retry(&policy, Some(&telemetry), "append", || {
            calls += 1;
            if calls < 3 {
                Err(format!("flaky #{calls}"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls, 3);
        let recovery = telemetry.report().recovery;
        assert_eq!(recovery.len(), 2);
        assert!(recovery.iter().all(|s| s.kind == RecoveryKind::IoRetry));
        assert!(recovery[0].detail.contains("append"));
        assert!(recovery[0].detail.contains("flaky #1"));
    }

    #[test]
    fn persistent_failure_exhausts_budget() {
        let telemetry = Telemetry::new();
        let policy = IoRetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let r: Result<(), String> = with_io_retry(&policy, Some(&telemetry), "sync", || {
            calls += 1;
            Err("disk gone".to_string())
        });
        assert_eq!(r.unwrap_err(), "disk gone");
        assert_eq!(calls, 4);
        // one retry event per *retried* attempt: attempts 1..3
        assert_eq!(telemetry.report().recovery.len(), 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = IoRetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(18),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(5));
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(18));
        assert_eq!(p.backoff(8), Duration::from_millis(18));
    }

    #[test]
    fn no_retry_policy_fails_immediately() {
        let mut calls = 0;
        let r: Result<(), &str> = with_io_retry(&IoRetryPolicy::no_retry(), None, "x", || {
            calls += 1;
            Err("nope")
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }
}
