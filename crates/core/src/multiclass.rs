//! Multi-class classification — the paper's §V "multi-class
//! classifications" extension.
//!
//! Two standard decompositions over the binary LS-SVM (both go back to
//! Suykens & Vandewalle's multi-class LS-SVM paper, the paper's
//! reference \[27\]):
//!
//! * **one-vs-one** (LIBSVM's scheme): one binary model per unordered
//!   class pair, prediction by majority vote with the summed decision
//!   values as tie breaker — `k·(k−1)/2` small problems;
//! * **one-vs-rest**: one binary model per class against everything else,
//!   prediction by the largest decision value — `k` full-size problems.
//!
//! Every binary subproblem runs through the normal [`crate::svm::LsSvm`]
//! pipeline, so all backends (including the simulated multi-GPU split)
//! apply unchanged.

use std::path::Path;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::SvmModel;
use plssvm_data::multiclass::MultiClassData;
use plssvm_data::{DataError, Real};
use plssvm_simgpu::device::AtomicScalar;

use crate::cg::SolveOutcome;
use crate::error::SvmError;
use crate::svm::{predict_decision_values, LsSvm};

/// The decomposition strategy.
///
/// ```
/// use plssvm_core::prelude::*;
/// use plssvm_data::synthetic::{generate_blobs, BlobsConfig};
///
/// let data = generate_blobs::<f64>(&BlobsConfig::new(90, 4, 3, 5))?;
/// let model = train_multiclass(
///     &data,
///     &LsSvm::new().with_epsilon(1e-6),
///     MultiClassStrategy::OneVsOne,
/// )?;
/// assert_eq!(model.num_models(), 3); // 3 classes → 3 pairs
/// assert!(model.accuracy(&data) > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiClassStrategy {
    /// One binary model per class pair (LIBSVM's default).
    OneVsOne,
    /// One binary model per class against the rest.
    OneVsRest,
}

impl MultiClassStrategy {
    /// Keyword used in the model container file.
    pub fn name(&self) -> &'static str {
        match self {
            MultiClassStrategy::OneVsOne => "ovo",
            MultiClassStrategy::OneVsRest => "ovr",
        }
    }
}

/// A trained multi-class model: a set of binary LS-SVM models plus the
/// class inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassModel<T> {
    /// The distinct classes, sorted ascending.
    pub classes: Vec<i32>,
    /// The decomposition used.
    pub strategy: MultiClassStrategy,
    /// The binary models: for one-vs-one keyed `(a, b)` with `a < b`
    /// (positive class `a`); for one-vs-rest keyed `(c, i32::MIN)`.
    pub models: Vec<((i32, i32), SvmModel<T>)>,
}

impl<T: Real> MultiClassModel<T> {
    /// Number of binary models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Fallible [`MultiClassModel::predict`]: returns a structured
    /// [`SvmError::Solver`] instead of panicking when the query batch is
    /// empty, has zero-feature rows, or does not match the model's
    /// feature count — the contract the serving layer needs for
    /// untrusted requests.
    pub fn try_predict(&self, x: &DenseMatrix<T>) -> Result<Vec<i32>, SvmError> {
        let features = self
            .models
            .first()
            .map(|(_, m)| m.features())
            .ok_or_else(|| SvmError::Solver("multiclass model holds no binary models".into()))?;
        crate::svm::validate_query_batch(features, x)?;
        Ok(self.predict(x))
    }

    /// Predicts original class labels for every row of `x`.
    pub fn predict(&self, x: &DenseMatrix<T>) -> Vec<i32> {
        let k = self.classes.len();
        let class_index = |c: i32| self.classes.iter().position(|&x| x == c).unwrap();
        // decision values of every binary model over all points
        let decisions: Vec<Vec<T>> = self
            .models
            .iter()
            .map(|(_, m)| predict_decision_values(m, x))
            .collect();

        (0..x.rows())
            .map(|p| match self.strategy {
                MultiClassStrategy::OneVsOne => {
                    let mut votes = vec![0usize; k];
                    let mut score = vec![0.0f64; k];
                    for (((a, b), _), values) in self.models.iter().zip(&decisions) {
                        let v = values[p].to_f64();
                        let (ia, ib) = (class_index(*a), class_index(*b));
                        if v >= 0.0 {
                            votes[ia] += 1;
                        } else {
                            votes[ib] += 1;
                        }
                        score[ia] += v;
                        score[ib] -= v;
                    }
                    let best = (0..k)
                        .max_by(|&i, &j| {
                            votes[i].cmp(&votes[j]).then(score[i].total_cmp(&score[j]))
                        })
                        .unwrap();
                    self.classes[best]
                }
                MultiClassStrategy::OneVsRest => {
                    let best = self
                        .models
                        .iter()
                        .zip(&decisions)
                        .max_by(|(_, a), (_, b)| a[p].to_f64().total_cmp(&b[p].to_f64()))
                        .map(|(((c, _), _), _)| *c)
                        .unwrap();
                    best
                }
            })
            .collect()
    }

    /// Fraction of correctly classified points.
    pub fn accuracy(&self, data: &MultiClassData<T>) -> f64 {
        let predictions = self.predict(&data.x);
        let correct = predictions
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / data.points() as f64
    }

    /// Serializes the model container: a header naming the strategy and
    /// classes, then each binary model in the standard LIBSVM layout
    /// framed by `model a b` / `end_model` lines.
    pub fn to_container_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("plssvm_multiclass {}\n", self.strategy.name()));
        out.push_str(&format!("nr_class {}\n", self.classes.len()));
        out.push_str("classes");
        for c in &self.classes {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
        for ((a, b), model) in &self.models {
            out.push_str(&format!("model {a} {b}\n"));
            out.push_str(&model.to_model_string());
            out.push_str("end_model\n");
        }
        out
    }

    /// Writes the container file atomically and durably (temp file +
    /// fsync + rename + parent-directory fsync): a crash mid-save can
    /// never leave a truncated container behind.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataError> {
        plssvm_data::write_atomic(path, self.to_container_string().as_bytes())
    }

    /// [`MultiClassModel::save`] through an explicit
    /// [`Vfs`](plssvm_data::vfs::Vfs).
    pub fn save_with(&self, vfs: &dyn plssvm_data::vfs::Vfs, path: &Path) -> Result<(), DataError> {
        plssvm_data::write_atomic_with(vfs, path, self.to_container_string().as_bytes())
    }

    /// Parses a container produced by [`MultiClassModel::to_container_string`].
    pub fn from_container_string(content: &str) -> Result<Self, DataError> {
        let mut lines = content.lines().peekable();
        let header = lines
            .next()
            .ok_or_else(|| DataError::Invalid("empty container".into()))?;
        let strategy = match header.trim() {
            "plssvm_multiclass ovo" => MultiClassStrategy::OneVsOne,
            "plssvm_multiclass ovr" => MultiClassStrategy::OneVsRest,
            other => {
                return Err(DataError::Invalid(format!(
                    "not a multiclass container: '{other}'"
                )))
            }
        };
        let nr_class_line = lines
            .next()
            .ok_or_else(|| DataError::Invalid("missing nr_class".into()))?;
        let nr_class: usize = nr_class_line
            .strip_prefix("nr_class ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| DataError::Invalid("invalid nr_class line".into()))?;
        let classes_line = lines
            .next()
            .ok_or_else(|| DataError::Invalid("missing classes".into()))?;
        let classes: Vec<i32> = classes_line
            .strip_prefix("classes")
            .ok_or_else(|| DataError::Invalid("invalid classes line".into()))?
            .split_ascii_whitespace()
            .map(|t| t.parse())
            .collect::<Result<_, _>>()
            .map_err(|_| DataError::Invalid("invalid class label".into()))?;
        if classes.len() != nr_class {
            return Err(DataError::Invalid(format!(
                "nr_class {nr_class} but {} classes listed",
                classes.len()
            )));
        }

        let mut models = Vec::new();
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("model ")
                .ok_or_else(|| DataError::Invalid(format!("expected 'model a b', got '{line}'")))?;
            let mut it = rest.split_ascii_whitespace();
            let a: i32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DataError::Invalid("invalid model pair".into()))?;
            let b: i32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DataError::Invalid("invalid model pair".into()))?;
            let mut block = String::new();
            let mut closed = false;
            for inner in lines.by_ref() {
                if inner.trim() == "end_model" {
                    closed = true;
                    break;
                }
                block.push_str(inner);
                block.push('\n');
            }
            if !closed {
                return Err(DataError::Invalid("unterminated model block".into()));
            }
            models.push(((a, b), SvmModel::from_model_string(&block)?));
        }
        if models.is_empty() {
            return Err(DataError::Invalid("container holds no models".into()));
        }
        let expected = match strategy {
            MultiClassStrategy::OneVsOne => nr_class * (nr_class - 1) / 2,
            MultiClassStrategy::OneVsRest => nr_class,
        };
        if models.len() != expected {
            return Err(DataError::Invalid(format!(
                "expected {expected} binary models, found {}",
                models.len()
            )));
        }
        Ok(Self {
            classes,
            strategy,
            models,
        })
    }

    /// Loads a container file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let content = std::fs::read_to_string(path).map_err(|e| DataError::io_path(path, e))?;
        Self::from_container_string(&content)
    }
}

/// A trained multi-class model plus the classified solve outcome of every
/// binary subproblem — the multi-class analogue of
/// [`crate::svm::TrainOutput::outcome`].
#[derive(Debug)]
pub struct MultiClassTrainOutput<T> {
    /// The trained multi-class model.
    pub model: MultiClassModel<T>,
    /// Per-subproblem solve outcomes, keyed like
    /// [`MultiClassModel::models`] (`(a, b)` pairs for one-vs-one,
    /// `(c, i32::MIN)` for one-vs-rest).
    pub outcomes: Vec<((i32, i32), SolveOutcome)>,
    /// CG iterations summed over all binary subproblems (each already
    /// summed across its escalation rungs).
    pub total_iterations: usize,
    /// True when any binary subproblem lost its durable checkpointing to
    /// persistent storage failures (see
    /// [`crate::svm::TrainOutput::io_degraded`]).
    pub io_degraded: bool,
}

impl<T> MultiClassTrainOutput<T> {
    /// Whether every binary subproblem converged.
    pub fn all_converged(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_converged())
    }

    /// The subproblems that did *not* converge, with their classified
    /// outcomes.
    pub fn non_converged(&self) -> Vec<((i32, i32), SolveOutcome)> {
        self.outcomes
            .iter()
            .filter(|(_, o)| !o.is_converged())
            .copied()
            .collect()
    }
}

/// Trains a multi-class LS-SVM by decomposing into binary subproblems,
/// each trained with `trainer`'s configuration (kernel, cost, ε, backend).
pub fn train_multiclass<T: AtomicScalar>(
    data: &MultiClassData<T>,
    trainer: &LsSvm<T>,
    strategy: MultiClassStrategy,
) -> Result<MultiClassModel<T>, SvmError> {
    train_multiclass_with_outcomes(data, trainer, strategy).map(|out| out.model)
}

/// Like [`train_multiclass`], additionally reporting the classified
/// [`SolveOutcome`] of every binary subproblem so callers can tell which
/// pairwise solves needed escalation or never converged.
pub fn train_multiclass_with_outcomes<T: AtomicScalar>(
    data: &MultiClassData<T>,
    trainer: &LsSvm<T>,
    strategy: MultiClassStrategy,
) -> Result<MultiClassTrainOutput<T>, SvmError> {
    if data.num_classes() < 2 {
        return Err(SvmError::Solver(
            "multi-class training needs at least two classes".into(),
        ));
    }
    let mut models = Vec::new();
    let mut outcomes = Vec::new();
    let mut total_iterations = 0;
    let mut io_degraded = false;
    // with a durable journal attached, each binary subproblem checkpoints
    // into its own `task-<k>/` sub-journal (independent generation
    // numbering), so a crash resumes exactly the subproblem it interrupted
    let task_trainer = |task: usize| -> Result<Option<LsSvm<T>>, SvmError> {
        Ok(match &trainer.checkpoint_journal {
            Some(journal) => Some(
                trainer
                    .clone()
                    .with_checkpoint_journal(journal.for_task(task)?),
            ),
            None => None,
        })
    };
    let mut task = 0usize;
    match strategy {
        MultiClassStrategy::OneVsOne => {
            for i in 0..data.classes.len() {
                for j in (i + 1)..data.classes.len() {
                    let (a, b) = (data.classes[i], data.classes[j]);
                    let subset = data.pair_subset(a, b)?;
                    let sub = task_trainer(task)?;
                    task += 1;
                    let out = sub.as_ref().unwrap_or(trainer).train(&subset)?;
                    outcomes.push(((a, b), out.outcome));
                    total_iterations += out.iterations;
                    io_degraded |= out.io_degraded;
                    models.push(((a, b), out.model));
                }
            }
        }
        MultiClassStrategy::OneVsRest => {
            for &c in &data.classes {
                let subset = data.one_vs_rest(c)?;
                let sub = task_trainer(task)?;
                task += 1;
                let out = sub.as_ref().unwrap_or(trainer).train(&subset)?;
                outcomes.push(((c, i32::MIN), out.outcome));
                total_iterations += out.iterations;
                io_degraded |= out.io_degraded;
                models.push(((c, i32::MIN), out.model));
            }
        }
    }
    Ok(MultiClassTrainOutput {
        model: MultiClassModel {
            classes: data.classes.clone(),
            strategy,
            models,
        },
        outcomes,
        total_iterations,
        io_degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_data::model::KernelSpec;
    use plssvm_data::synthetic::{generate_blobs, BlobsConfig};
    use plssvm_simgpu::{hw, Backend as DeviceApi};

    use crate::backend::BackendSelection;

    fn blobs(classes: usize, seed: u64) -> MultiClassData<f64> {
        generate_blobs(&BlobsConfig::new(40 * classes, 6, classes, seed).with_separation(6.0))
            .unwrap()
    }

    fn trainer() -> LsSvm<f64> {
        LsSvm::new().with_epsilon(1e-8)
    }

    #[test]
    fn ovo_classifies_three_blobs() {
        let data = blobs(3, 1);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        assert_eq!(model.num_models(), 3); // 3 choose 2
        let acc = model.accuracy(&data);
        assert!(acc >= 0.97, "accuracy {acc}");
    }

    #[test]
    fn ovr_classifies_three_blobs() {
        let data = blobs(3, 2);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsRest).unwrap();
        assert_eq!(model.num_models(), 3);
        let acc = model.accuracy(&data);
        assert!(acc >= 0.97, "accuracy {acc}");
    }

    #[test]
    fn five_classes_ovo_model_count() {
        let data = blobs(5, 3);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        assert_eq!(model.num_models(), 10); // 5 choose 2
        assert!(model.accuracy(&data) >= 0.95);
    }

    #[test]
    fn strategies_agree_on_separable_data() {
        let data = blobs(4, 4);
        let ovo = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        let ovr = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsRest).unwrap();
        let a = ovo.predict(&data.x);
        let b = ovr.predict(&data.x);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            agree as f64 / a.len() as f64 >= 0.95,
            "strategies agree on {agree}/{}",
            a.len()
        );
    }

    #[test]
    fn container_roundtrip() {
        let data = blobs(3, 5);
        for strategy in [MultiClassStrategy::OneVsOne, MultiClassStrategy::OneVsRest] {
            let model = train_multiclass(&data, &trainer(), strategy).unwrap();
            let text = model.to_container_string();
            let back = MultiClassModel::<f64>::from_container_string(&text).unwrap();
            assert_eq!(model, back);
            assert_eq!(model.predict(&data.x), back.predict(&data.x));
        }
    }

    #[test]
    fn container_file_roundtrip() {
        let data = blobs(3, 6);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        let dir = std::env::temp_dir().join("plssvm_multiclass_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blobs.model");
        model.save(&path).unwrap();
        let back = MultiClassModel::<f64>::load(&path).unwrap();
        assert_eq!(model, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_containers_rejected() {
        assert!(MultiClassModel::<f64>::from_container_string("").is_err());
        assert!(MultiClassModel::<f64>::from_container_string("svm_type c_svc\n").is_err());
        assert!(MultiClassModel::<f64>::from_container_string(
            "plssvm_multiclass ovo\nnr_class 3\nclasses 1 2\n"
        )
        .is_err());
        // unterminated model block
        let bad = "plssvm_multiclass ovo\nnr_class 2\nclasses 1 2\nmodel 1 2\nsvm_type c_svc\n";
        assert!(MultiClassModel::<f64>::from_container_string(bad).is_err());
        // wrong model count
        let data = blobs(3, 7);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        let text = model
            .to_container_string()
            .replace("nr_class 3", "nr_class 4");
        let text = text.replace("classes 1 2 3", "classes 1 2 3 4");
        assert!(MultiClassModel::<f64>::from_container_string(&text).is_err());
    }

    #[test]
    fn works_on_device_backend() {
        let data = blobs(3, 8);
        let t = trainer().with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda));
        let model = train_multiclass(&data, &t, MultiClassStrategy::OneVsOne).unwrap();
        assert!(model.accuracy(&data) >= 0.97);
    }

    #[test]
    fn rbf_solves_nonlinear_multiclass() {
        // three concentric rings: only a nonlinear kernel separates them
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let angle = (i as f64) * 0.33;
            let class = i % 3;
            let radius = 1.0 + 2.0 * class as f64;
            rows.push(vec![radius * angle.cos(), radius * angle.sin()]);
            labels.push(class + 1);
        }
        let data = MultiClassData::new(DenseMatrix::from_rows(rows).unwrap(), labels).unwrap();
        let t = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 1.0 })
            .with_cost(100.0)
            .with_epsilon(1e-8);
        let model = train_multiclass(&data, &t, MultiClassStrategy::OneVsOne).unwrap();
        assert!(model.accuracy(&data) >= 0.97);
    }

    #[test]
    fn journaled_multiclass_uses_per_task_journals_and_resumes() {
        use plssvm_data::CheckpointJournal;
        let data = blobs(3, 9);
        let dir = std::env::temp_dir().join(format!("plssvm_mc_journal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let reference = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        let journaled_trainer = trainer()
            .with_checkpoint_interval(3)
            .with_checkpoint_journal(journal.clone());
        let journaled =
            train_multiclass(&data, &journaled_trainer, MultiClassStrategy::OneVsOne).unwrap();
        assert_eq!(reference, journaled, "journaling must not perturb training");
        // one sub-journal per class pair, each with its own generations
        for task in 0..3 {
            assert!(
                !journal.for_task(task).unwrap().is_empty().unwrap(),
                "task {task} wrote no generations"
            );
        }
        // resuming re-enters every subproblem at its newest snapshot and
        // lands on the bit-identical container
        let resumed_trainer = journaled_trainer.with_resume(true);
        let resumed =
            train_multiclass(&data, &resumed_trainer, MultiClassStrategy::OneVsOne).unwrap();
        assert_eq!(reference, resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_predict_rejects_degenerate_batches() {
        let data = blobs(3, 10);
        let model = train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).unwrap();
        let err = model
            .try_predict(&DenseMatrix::<f64>::zeros(0, 6))
            .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        let err = model
            .try_predict(&DenseMatrix::<f64>::zeros(2, 0))
            .unwrap_err();
        assert!(err.to_string().contains("zero features"), "{err}");
        let err = model
            .try_predict(&DenseMatrix::<f64>::zeros(2, 9))
            .unwrap_err();
        assert!(err.to_string().contains("expects 6"), "{err}");
        assert_eq!(model.try_predict(&data.x).unwrap(), model.predict(&data.x));
    }

    #[test]
    fn single_class_rejected() {
        let x = DenseMatrix::from_rows(vec![vec![1.0f64], vec![2.0]]).unwrap();
        let data = MultiClassData::new(x, vec![1, 1]).unwrap();
        assert!(train_multiclass(&data, &trainer(), MultiClassStrategy::OneVsOne).is_err());
    }
}
