//! Crash-safe training: the bridge between the solver's in-memory
//! checkpoint hooks and the durable on-disk journal of `plssvm-data`.
//!
//! The solver side ([`crate::cg`] / [`crate::guard`]) produces periodic
//! [`CgState`] snapshots tagged with the active escalation rung; the data
//! side ([`plssvm_data::checkpoint`]) persists versioned, checksummed
//! generation files atomically. This module supplies the two adapters
//! between them:
//!
//! * [`JournalSink`] — a [`RungCheckpointSink`] that appends every
//!   snapshot to a [`CheckpointJournal`]. Persistence failures are
//!   recorded as `recovery` telemetry and never abort the solve: a full
//!   disk degrades crash-safety, not training.
//! * [`load_resume_point`] — recovers the newest *valid* generation from
//!   a journal, validates it against the current invocation's
//!   [`ContextFingerprint`] and problem dimension, and reassembles the
//!   [`ResumePoint`] the escalation ladder continues from. Damaged
//!   generations are skipped (and reported), never fatal; an empty
//!   journal simply means "start fresh".

use std::sync::Arc;

use plssvm_data::checkpoint::{fnv1a64, fnv1a64_extend, CheckpointJournal, Snapshot};
use plssvm_data::model::KernelSpec;
use plssvm_data::{CheckpointError, Real};

use crate::cg::CgState;
use crate::error::SvmError;
use crate::guard::{ResumePoint, RungCheckpointSink};
use crate::trace::{MetricsSink, RecoveryKind, RecoverySample};

/// Incrementally fingerprints everything that must match between the run
/// that wrote a checkpoint and the run trying to resume from it: the
/// training data, the kernel and its parameters, the cost, the working
/// precision and the problem shape. Two invocations with the same
/// fingerprint produce bit-identical solver trajectories, so resuming
/// across them is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextFingerprint(u64);

impl ContextFingerprint {
    /// Starts a fresh fingerprint (domain-separated from plain FNV).
    pub fn new() -> Self {
        Self(fnv1a64(b"plssvm-checkpoint-context-v1"))
    }

    /// Absorbs raw bytes.
    pub fn push_bytes(mut self, bytes: &[u8]) -> Self {
        self.0 = fnv1a64_extend(self.0, bytes);
        self
    }

    /// Absorbs a string (length-prefixed so field boundaries can't alias).
    pub fn push_str(self, s: &str) -> Self {
        self.push_u64(s.len() as u64).push_bytes(s.as_bytes())
    }

    /// Absorbs an integer (little-endian).
    pub fn push_u64(self, v: u64) -> Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Absorbs a float by its exact bit pattern (`-0.0` ≠ `0.0`, and any
    /// parameter change — however small — invalidates the checkpoint).
    pub fn push_f64(self, v: f64) -> Self {
        self.push_u64(v.to_bits())
    }

    /// Absorbs a kernel specification: the kernel name plus every
    /// parameter's exact bit pattern.
    pub fn push_kernel<T: Real>(self, kernel: &KernelSpec<T>) -> Self {
        let fp = self.push_str(kernel.name());
        match kernel {
            KernelSpec::Linear => fp,
            KernelSpec::Polynomial {
                degree,
                gamma,
                coef0,
            } => fp
                .push_u64(*degree as u64)
                .push_f64(gamma.to_f64())
                .push_f64(coef0.to_f64()),
            KernelSpec::Rbf { gamma } => fp.push_f64(gamma.to_f64()),
            KernelSpec::Sigmoid { gamma, coef0 } => {
                fp.push_f64(gamma.to_f64()).push_f64(coef0.to_f64())
            }
        }
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for ContextFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams every rung-tagged solver snapshot into a durable
/// [`CheckpointJournal`].
///
/// Append failures are first retried under an
/// [`IoRetryPolicy`](crate::resilience::IoRetryPolicy) (each retry an
/// `io_retry` telemetry event). A failure that survives the whole retry
/// budget is treated as persistent: the sink *degrades* — checkpointing
/// is disabled for the rest of the solve, one `io_degraded` event is
/// recorded, and the solve continues (it just stops being crash-safe
/// from that point on). Snapshots containing non-finite values are
/// skipped outright — the on-disk format rejects them at load time, so
/// writing one would only waste a generation.
pub struct JournalSink {
    journal: CheckpointJournal,
    context_hash: u64,
    metrics: Option<Arc<dyn MetricsSink>>,
    retry: crate::resilience::IoRetryPolicy,
    degraded: std::sync::atomic::AtomicBool,
}

impl JournalSink {
    /// Wraps `journal`, stamping every snapshot with `context_hash`.
    pub fn new(
        journal: CheckpointJournal,
        context_hash: u64,
        metrics: Option<Arc<dyn MetricsSink>>,
    ) -> Self {
        Self {
            journal,
            context_hash,
            metrics,
            retry: crate::resilience::IoRetryPolicy::default(),
            degraded: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Overrides the append retry policy (tests use zero backoff).
    pub fn with_retry_policy(mut self, retry: crate::resilience::IoRetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True once persistent append failures disabled checkpointing for
    /// the rest of the solve.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn emit_kind(&self, kind: RecoveryKind, iteration: usize, detail: String) {
        if let Some(m) = &self.metrics {
            m.record_recovery(RecoverySample::solver(kind, iteration, detail));
        }
    }

    fn emit(&self, iteration: usize, detail: String) {
        self.emit_kind(RecoveryKind::Checkpoint, iteration, detail);
    }
}

impl<T: Real> RungCheckpointSink<T> for JournalSink {
    fn persist(&self, rung: u8, state: &CgState<T>) {
        if self.is_degraded() {
            // Persistent storage failure already disabled checkpointing;
            // skip silently so a dying disk doesn't spam the telemetry.
            return;
        }
        let finite = state.solution().iter().all(|v| v.is_finite())
            && state.residual().iter().all(|v| v.is_finite())
            && state.direction().iter().all(|v| v.is_finite())
            && state.rho().is_finite()
            && state.delta().is_finite()
            && state.delta0().is_finite();
        if !finite {
            self.emit(
                state.iterations(),
                "skipped non-finite snapshot (not persistable)".to_owned(),
            );
            return;
        }
        let snapshot = Snapshot {
            rung,
            context_hash: self.context_hash,
            iterations: state.iterations() as u64,
            x: state.solution().to_vec(),
            r: state.residual().to_vec(),
            d: state.direction().to_vec(),
            rho: state.rho(),
            delta: state.delta(),
            delta0: state.delta0(),
        };
        let metrics = self.metrics.as_deref();
        let attempt =
            crate::resilience::with_io_retry(&self.retry, metrics, "checkpoint append", || {
                self.journal.append(&snapshot)
            });
        match attempt {
            Ok(generation) => self.emit(
                state.iterations(),
                format!("durable checkpoint generation {generation} (rung {rung})"),
            ),
            Err(e) => {
                // Persistent failure: degrade rather than abort — a live
                // solve is worth more than its crash insurance.
                self.degraded
                    .store(true, std::sync::atomic::Ordering::Relaxed);
                self.emit_kind(
                    RecoveryKind::IoDegraded,
                    state.iterations(),
                    format!(
                        "checkpointing disabled after {} failed attempt(s) ({}): {e}",
                        self.retry.max_attempts.max(1),
                        e.kind()
                    ),
                );
            }
        }
    }
}

/// Recovers the resume point from a journal, or `None` if the journal is
/// empty (a kill before the first checkpoint resumes as a fresh start).
///
/// Damaged generations (torn writes, bit flips, foreign files) are
/// skipped with a recorded `recovery` event each — the newest generation
/// that verifies wins. The surviving snapshot must then match the current
/// invocation: a [`CheckpointError::ContextMismatch`] or
/// [`CheckpointError::DimensionMismatch`] means the journal belongs to a
/// *different* training run and resuming would silently corrupt the
/// model, so that is a hard error rather than a fallback.
pub fn load_resume_point<T: Real>(
    journal: &CheckpointJournal,
    context_hash: u64,
    dim: usize,
    metrics: Option<&dyn MetricsSink>,
) -> Result<Option<ResumePoint<T>>, SvmError> {
    let (loaded, skipped) = journal.load_latest::<T>()?;
    if let Some(m) = metrics {
        for s in &skipped {
            m.record_recovery(RecoverySample::solver(
                RecoveryKind::Checkpoint,
                0,
                format!(
                    "skipped damaged checkpoint generation {} ({})",
                    s.generation,
                    s.reason.kind()
                ),
            ));
        }
    }
    let Some(loaded) = loaded else {
        if skipped.is_empty() {
            return Ok(None);
        }
        return Err(SvmError::Solver(format!(
            "checkpoint journal at '{}' holds {} generation(s) but none are loadable; \
             remove the directory to restart from scratch",
            journal.dir().display(),
            skipped.len()
        )));
    };
    let snapshot = loaded.snapshot;
    if snapshot.context_hash != context_hash {
        return Err(SvmError::Checkpoint(CheckpointError::ContextMismatch {
            stored: snapshot.context_hash,
            expected: context_hash,
        }));
    }
    if snapshot.x.len() != dim {
        return Err(SvmError::Checkpoint(CheckpointError::DimensionMismatch {
            stored: snapshot.x.len() as u64,
            expected: dim as u64,
        }));
    }
    if let Some(m) = metrics {
        m.record_recovery(RecoverySample::solver(
            RecoveryKind::Checkpoint,
            snapshot.iterations as usize,
            format!(
                "resuming from checkpoint generation {} (rung {})",
                loaded.generation, snapshot.rung
            ),
        ));
    }
    let rung = snapshot.rung;
    let state = CgState::from_raw_parts(
        snapshot.x,
        snapshot.r,
        snapshot.d,
        snapshot.rho,
        snapshot.delta,
        snapshot.delta0,
        snapshot.iterations as usize,
    );
    Ok(Some(ResumePoint { rung, state }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Telemetry;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plssvm_core_ckpt_{}_{}", tag, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn state(n: usize, seed: f64) -> CgState<f64> {
        CgState::from_raw_parts(
            (0..n).map(|i| seed + i as f64).collect(),
            (0..n).map(|i| 0.1 * (seed + i as f64)).collect(),
            (0..n).map(|i| 0.2 * (seed + i as f64)).collect(),
            1.5,
            2.5,
            3.5,
            7,
        )
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let a = ContextFingerprint::new().push_str("ab").push_str("c");
        let b = ContextFingerprint::new().push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix must break aliasing");
        let c = ContextFingerprint::new().push_f64(0.0);
        let d = ContextFingerprint::new().push_f64(-0.0);
        assert_ne!(c.finish(), d.finish(), "bit-pattern hashing: -0.0 ≠ 0.0");
        assert_eq!(
            ContextFingerprint::new().push_u64(9).finish(),
            ContextFingerprint::new().push_u64(9).finish()
        );
    }

    #[test]
    fn sink_roundtrips_through_load_resume_point() {
        let dir = tempdir("roundtrip");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let ctx = ContextFingerprint::new().push_str("test").finish();
        let t = Telemetry::shared();
        let sink = JournalSink::new(journal.clone(), ctx, Some(t.clone()));
        let original = state(5, 1.0);
        RungCheckpointSink::persist(&sink, 2, &original);

        let resumed = load_resume_point::<f64>(&journal, ctx, 5, Some(&*t))
            .unwrap()
            .expect("snapshot present");
        assert_eq!(resumed.rung, 2);
        assert_eq!(resumed.state, original);
        // both the append and the resume left an audit trail
        let report = t.report();
        assert!(report
            .recovery
            .iter()
            .any(|s| s.detail.contains("durable checkpoint generation 1")));
        assert!(report
            .recovery
            .iter()
            .any(|s| s.detail.contains("resuming from checkpoint generation 1")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_journal_resumes_as_fresh_start() {
        let dir = tempdir("empty");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let got = load_resume_point::<f64>(&journal, 1, 5, None).unwrap();
        assert!(got.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn context_and_dimension_mismatches_are_hard_errors() {
        let dir = tempdir("mismatch");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let sink = JournalSink::new(journal.clone(), 42, None);
        RungCheckpointSink::persist(&sink, 0, &state(5, 1.0));

        match load_resume_point::<f64>(&journal, 43, 5, None) {
            Err(SvmError::Checkpoint(CheckpointError::ContextMismatch { stored, expected })) => {
                assert_eq!((stored, expected), (42, 43));
            }
            other => panic!("expected context mismatch, got {other:?}"),
        }
        match load_resume_point::<f64>(&journal, 42, 6, None) {
            Err(SvmError::Checkpoint(CheckpointError::DimensionMismatch { stored, expected })) => {
                assert_eq!((stored, expected), (5, 6));
            }
            other => panic!("expected dimension mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_snapshot_is_skipped_not_written() {
        let dir = tempdir("nonfinite");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let t = Telemetry::shared();
        let sink = JournalSink::new(journal.clone(), 1, Some(t.clone()));
        let mut bad = state(4, 1.0);
        bad = CgState::from_raw_parts(
            bad.solution().to_vec(),
            bad.residual().to_vec(),
            bad.direction().to_vec(),
            f64::NAN,
            bad.delta(),
            bad.delta0(),
            bad.iterations(),
        );
        RungCheckpointSink::persist(&sink, 0, &bad);
        assert!(journal.is_empty().unwrap());
        assert!(t
            .report()
            .recovery
            .iter()
            .any(|s| s.detail.contains("non-finite")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_damaged_is_a_structured_error() {
        let dir = tempdir("alldamaged");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let sink = JournalSink::new(journal.clone(), 7, None);
        RungCheckpointSink::persist(&sink, 0, &state(4, 1.0));
        // corrupt the only generation
        let file = journal.generations().unwrap()[0];
        let path = dir.join(format!("gen-{file:08}.ckpt"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, bytes).unwrap();

        match load_resume_point::<f64>(&journal, 7, 4, None) {
            Err(SvmError::Solver(msg)) => assert!(msg.contains("none are loadable")),
            other => panic!("expected structured error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
