//! Cross-backend differential conformance suite.
//!
//! Every execution backend solves the same LS-SVM system, so on a seeded
//! problem they must agree: α and ρ within a floating-point tolerance of
//! the serial reference, and byte-identical predicted labels. The same
//! holds across device counts (the multi-device split is a distribution
//! detail, not a math change) and across fault-injected runs (recovery
//! must restore the exact computation, not an approximation of it).

use std::sync::Arc;

use plssvm_core::backend::{BackendSelection, CpuTilingConfig};
use plssvm_core::simd::Isa;
use plssvm_core::svm::{predict_labels, LsSvm, TrainOutput};
use plssvm_core::trace::{RecoveryKind, Telemetry};
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_data::CheckpointJournal;
use plssvm_simgpu::device::AtomicScalar;
use plssvm_simgpu::{hw, Backend as DeviceApi, FaultPlan};

fn planes<T: AtomicScalar>(points: usize, features: usize, seed: u64) -> LabeledData<T> {
    generate_planes(
        &PlanesConfig::new(points, features, seed)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap()
}

fn kernels<T: AtomicScalar>() -> Vec<(&'static str, KernelSpec<T>)> {
    vec![
        ("linear", KernelSpec::Linear),
        (
            "polynomial",
            KernelSpec::Polynomial {
                degree: 3,
                gamma: T::from_f64(0.25),
                coef0: T::from_f64(1.0),
            },
        ),
        (
            "rbf",
            KernelSpec::Rbf {
                gamma: T::from_f64(0.5),
            },
        ),
        (
            "sigmoid",
            KernelSpec::Sigmoid {
                gamma: T::from_f64(0.1),
                coef0: T::from_f64(0.25),
            },
        ),
    ]
}

fn train<T: AtomicScalar>(
    backend: BackendSelection,
    kernel: KernelSpec<T>,
    data: &LabeledData<T>,
    epsilon: f64,
) -> TrainOutput<T> {
    LsSvm::new()
        .with_kernel(kernel)
        .with_cost(T::from_f64(2.0))
        .with_epsilon(T::from_f64(epsilon))
        .with_backend(backend)
        .train(data)
        .unwrap()
}

/// Asserts two coefficient vectors agree to `tol`, relative to the
/// largest magnitude in the reference.
fn assert_close<T: AtomicScalar>(label: &str, reference: &[T], other: &[T], tol: f64) {
    assert_eq!(reference.len(), other.len(), "{label}: length");
    let scale = reference
        .iter()
        .map(|v| v.to_f64().abs())
        .fold(1.0f64, f64::max);
    for (i, (a, b)) in reference.iter().zip(other).enumerate() {
        let diff = (a.to_f64() - b.to_f64()).abs() / scale;
        assert!(
            diff <= tol,
            "{label}: coefficient {i} differs by {diff:.3e}"
        );
    }
}

/// The conformance check proper: `other` must match the serial reference
/// on α, ρ and (byte-identically) on predicted labels.
fn assert_conforms<T: AtomicScalar>(
    label: &str,
    reference: &TrainOutput<T>,
    other: &TrainOutput<T>,
    data: &LabeledData<T>,
    tol: f64,
) {
    assert_close(label, &reference.model.coef, &other.model.coef, tol);
    let rho_diff = (reference.model.rho.to_f64() - other.model.rho.to_f64()).abs();
    assert!(rho_diff <= tol, "{label}: rho differs by {rho_diff:.3e}");
    assert_eq!(
        predict_labels(&reference.model, &data.x),
        predict_labels(&other.model, &data.x),
        "{label}: predicted labels"
    );
}

fn cpu_and_device_backends(linear: bool) -> Vec<(String, BackendSelection)> {
    let mut v = vec![
        ("openmp".to_owned(), BackendSelection::openmp(Some(2))),
        // tile-size extremes: degenerate 1×1 tiles, tiles far larger than
        // the problem, and the symmetry-free schedule must all agree
        (
            "openmp-tile-1".to_owned(),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::new(1, 1),
            },
        ),
        (
            "openmp-tile-4096".to_owned(),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::new(4096, 4096),
            },
        ),
        (
            "openmp-nosym".to_owned(),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::default().with_symmetry(false),
            },
        ),
        (
            "sparse".to_owned(),
            BackendSelection::SparseCpu { threads: None },
        ),
        (
            "simgpu".to_owned(),
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ),
        (
            "simgpu-rows-2".to_owned(),
            BackendSelection::sim_multi_gpu_rows(hw::A100, DeviceApi::Cuda, 2),
        ),
    ];
    // one row per SIMD tier the host supports (always includes the
    // forced-scalar tier): every micro-kernel path must conform at the
    // same tolerance as the pre-existing backends, on both schedules
    for isa in Isa::available() {
        v.push((
            format!("openmp-isa-{isa}"),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::default().with_isa(isa),
            },
        ));
        v.push((
            format!("openmp-nosym-isa-{isa}"),
            BackendSelection::OpenMp {
                threads: Some(2),
                tiling: CpuTilingConfig::default()
                    .with_symmetry(false)
                    .with_isa(isa),
            },
        ));
    }
    if linear {
        // the feature-wise split is linear-kernel only (paper §III-C-5)
        v.push((
            "simgpu-features-2".to_owned(),
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2),
        ));
    }
    v
}

fn conformance_over_kernels<T: AtomicScalar>(tol: f64) {
    let data: LabeledData<T> = planes(56, 7, 4242);
    for (kname, kernel) in kernels::<T>() {
        let reference = train(BackendSelection::Serial, kernel, &data, 1e-10);
        for (bname, backend) in cpu_and_device_backends(kname == "linear") {
            let out = train(backend, kernel, &data, 1e-10);
            assert_conforms(&format!("{kname}/{bname}"), &reference, &out, &data, tol);
        }
    }
}

#[test]
fn backends_agree_on_seeded_problems_f64() {
    conformance_over_kernels::<f64>(1e-6);
}

#[test]
fn backends_agree_on_seeded_problems_f32() {
    // single precision: the same math at a correspondingly looser bound
    conformance_over_kernels::<f32>(5e-2);
}

#[test]
fn device_count_does_not_change_the_model() {
    let data: LabeledData<f64> = planes(64, 8, 77);
    for (kname, kernel) in kernels::<f64>() {
        let make = |devices: usize| -> BackendSelection {
            if kname == "linear" {
                BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, devices)
            } else {
                BackendSelection::sim_multi_gpu_rows(hw::A100, DeviceApi::Cuda, devices)
            }
        };
        let single = train(make(1), kernel, &data, 1e-10);
        for devices in [2, 4] {
            let multi = train(make(devices), kernel, &data, 1e-10);
            assert_conforms(
                &format!("{kname}/{devices}-devices"),
                &single,
                &multi,
                &data,
                1e-6,
            );
        }
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let data: LabeledData<f64> = planes(48, 6, 9);
    for (bname, backend) in cpu_and_device_backends(true) {
        let a = train(backend.clone(), KernelSpec::Linear, &data, 1e-8);
        let b = train(backend, KernelSpec::Linear, &data, 1e-8);
        assert_eq!(a.model.coef, b.model.coef, "{bname}: alphas");
        assert_eq!(a.model.rho, b.model.rho, "{bname}: rho");
        assert_eq!(a.iterations, b.iterations, "{bname}: iterations");
    }
}

/// The issue's acceptance scenario: device 1 of 4 fail-stops at CG
/// iteration 5 (launch attempt 4 — attempt 0 is the first CG matvec);
/// the solver must redistribute its feature shard over the survivors and
/// converge to the fault-free model, emitting failover telemetry.
#[test]
fn fail_stop_of_one_in_four_devices_recovers_to_the_fault_free_model() {
    let data: LabeledData<f64> = planes(72, 12, 2026);
    let backend = BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 4);
    let fault_free = train(backend.clone(), KernelSpec::Linear, &data, 1e-10);
    assert!(
        fault_free.iterations > 5,
        "need a solve that outlives the fault"
    );

    let telemetry = Telemetry::shared();
    let faulted = LsSvm::new()
        .with_cost(2.0)
        .with_epsilon(1e-10)
        .with_backend(backend)
        .with_fault_plan(FaultPlan::new().fail_stop(1, 4))
        .with_checkpoint_interval(4)
        .with_metrics(Arc::clone(&telemetry))
        .train(&data)
        .unwrap();

    assert!(faulted.converged);
    assert_conforms("fail-stop 1/4", &fault_free, &faulted, &data, 1e-6);

    let report = faulted.telemetry.expect("telemetry enabled");
    let failovers: Vec<_> = report
        .recovery
        .iter()
        .filter(|e| e.kind == RecoveryKind::Failover)
        .collect();
    assert_eq!(failovers.len(), 1, "{:?}", report.recovery);
    assert_eq!(failovers[0].device, Some(1));
    assert_eq!(failovers[0].at_launch, Some(4));
    assert!(report
        .recovery
        .iter()
        .any(|e| e.kind == RecoveryKind::Checkpoint));
    // the recovery events survive into the serialized telemetry
    let json = report.to_json_lines();
    assert!(json.contains("\"type\":\"recovery\""), "{json}");
    assert!(json.contains("\"kind\":\"failover\""), "{json}");
}

/// Transient faults never change the result: the retried launch reruns
/// the identical computation, so the model is byte-identical.
#[test]
fn transient_faults_leave_the_model_byte_identical() {
    let data: LabeledData<f64> = planes(48, 8, 31);
    let backend = BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2);
    let clean = train(backend.clone(), KernelSpec::Linear, &data, 1e-10);
    let faulted = LsSvm::new()
        .with_cost(2.0)
        .with_epsilon(1e-10)
        .with_backend(backend)
        .with_fault_plan(FaultPlan::new().transient(0, 2, 1).transient(1, 3, 2))
        .train(&data)
        .unwrap();
    assert_eq!(clean.model.coef, faulted.model.coef);
    assert_eq!(clean.model.rho, faulted.model.rho);
    assert_eq!(clean.iterations, faulted.iterations);
}

mod eval_halving {
    use super::*;
    use proptest::prelude::*;

    /// Trains once on `points` rows and returns the physical kernel
    /// evaluations per CG matvec launch as reported by unified telemetry.
    fn evals_per_launch(points: usize, tiling: CpuTilingConfig) -> u128 {
        let data: LabeledData<f64> = planes(points, 5, 11);
        let telemetry = Telemetry::shared();
        let out = LsSvm::new()
            .with_cost(2.0)
            .with_epsilon(1e-8)
            .with_backend(BackendSelection::OpenMp {
                threads: Some(2),
                tiling,
            })
            .with_metrics(Arc::clone(&telemetry))
            .train(&data)
            .unwrap();
        let report = out.telemetry.expect("telemetry enabled");
        let launches = report.kernels["svm_kernel"].launches as u128;
        let total = report.kernel_evals["svm_kernel"];
        assert_eq!(total % launches, 0, "evals divide launches");
        total / launches
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The telemetry kernel-eval counters must show the symmetric
        /// schedule performing exactly the upper triangle per matvec:
        /// `2·sym == full + n`, i.e. the evaluation count halves (up to
        /// the diagonal) relative to the symmetry-free schedule, for any
        /// problem size and tile shape.
        #[test]
        fn symmetry_halves_physical_kernel_evals(
            points in 8usize..48,
            row_tile in 1usize..10,
            col_tile in 1usize..10,
        ) {
            let sym = evals_per_launch(points, CpuTilingConfig::new(row_tile, col_tile));
            let full = evals_per_launch(
                points,
                CpuTilingConfig::new(row_tile, col_tile).with_symmetry(false),
            );
            // the reduced LS-SVM system has dimension points - 1
            let n = (points - 1) as u128;
            prop_assert_eq!(sym, n * (n + 1) / 2);
            prop_assert_eq!(full, n * n);
            prop_assert_eq!(2 * sym, full + n);
        }
    }
}

/// The durable checkpoint journal is an observer: attaching it — and
/// resuming from its final generation — must leave every backend's
/// model byte-identical to the plain run. This extends the kill-matrix
/// harness (serial/openmp/simgpu) to the full backend list, including
/// the multi-device splits and the sparse CPU path.
#[test]
fn checkpoint_journaling_never_perturbs_any_backend() {
    let data: LabeledData<f64> = planes(48, 6, 123);
    for (bname, backend) in cpu_and_device_backends(true) {
        let plain = train(backend.clone(), KernelSpec::Linear, &data, 1e-10);
        let dir = std::env::temp_dir().join(format!(
            "plssvm-conformance-journal-{}-{bname}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let journaled_trainer = |resume: bool| {
            LsSvm::new()
                .with_cost(2.0)
                .with_epsilon(1e-10)
                .with_backend(backend.clone())
                .with_checkpoint_interval(4)
                .with_checkpoint_journal(CheckpointJournal::open(&dir, 4).unwrap())
                .with_resume(resume)
        };
        let journaled = journaled_trainer(false).train(&data).unwrap();
        assert_eq!(
            plain.model.coef, journaled.model.coef,
            "{bname}: journaled alphas"
        );
        assert_eq!(
            plain.model.rho, journaled.model.rho,
            "{bname}: journaled rho"
        );
        assert_eq!(
            plain.iterations, journaled.iterations,
            "{bname}: iterations"
        );

        let resumed = journaled_trainer(true).train(&data).unwrap();
        assert_eq!(
            plain.model.coef, resumed.model.coef,
            "{bname}: resumed alphas"
        );
        assert_eq!(plain.model.rho, resumed.model.rho, "{bname}: resumed rho");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Low-rank solver conformance.
///
/// Tolerance note: unlike a bare Nyström approximation, the low-rank
/// *solver* terminates on the exact relative residual — when the direct
/// Woodbury solve misses epsilon it escalates to Nyström-preconditioned
/// CG with exact matvecs, and finally to the exact guarded ladder. The
/// trained model therefore agrees with the exact solver to the same
/// epsilon-driven tolerance at *every* rank (1e-6 for f64, 5e-2 for
/// f32, matching the cross-backend rows above); rank only shifts where
/// the work happens. The dedicated full-rank row below additionally
/// pins the escalation-free direct solve: with every point a landmark
/// the factorization is exact, so it must match exact CG to near
/// machine precision.
mod lowrank_conformance {
    use super::*;
    use plssvm_core::lowrank::SolverSelection;

    fn train_lowrank<T: AtomicScalar>(
        backend: BackendSelection,
        kernel: KernelSpec<T>,
        data: &LabeledData<T>,
        epsilon: f64,
        rank: usize,
    ) -> TrainOutput<T> {
        LsSvm::new()
            .with_kernel(kernel)
            .with_cost(T::from_f64(2.0))
            .with_epsilon(T::from_f64(epsilon))
            .with_backend(backend)
            .with_solver(SolverSelection::lowrank(rank))
            .train(data)
            .unwrap()
    }

    fn lowrank_backends() -> Vec<(&'static str, BackendSelection)> {
        vec![
            ("serial", BackendSelection::Serial),
            ("openmp", BackendSelection::openmp(Some(2))),
            (
                "simgpu",
                BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
            ),
        ]
    }

    /// PSD kernels only: Nyström assumes a positive semi-definite Gram
    /// matrix, so the indefinite sigmoid kernel is out of scope here.
    fn psd_kernels<T: AtomicScalar>() -> Vec<(&'static str, KernelSpec<T>)> {
        kernels::<T>()
            .into_iter()
            .filter(|(name, _)| *name != "sigmoid")
            .collect()
    }

    fn lowrank_agrees_with_exact<T: AtomicScalar>(tol: f64) {
        let data: LabeledData<T> = planes(56, 7, 4242);
        for (kname, kernel) in psd_kernels::<T>() {
            let reference = train(BackendSelection::Serial, kernel, &data, 1e-10);
            for (bname, backend) in lowrank_backends() {
                let out = train_lowrank(backend, kernel, &data, 1e-10, 24);
                assert_conforms(
                    &format!("lowrank-24/{kname}/{bname}"),
                    &reference,
                    &out,
                    &data,
                    tol,
                );
            }
        }
    }

    #[test]
    fn lowrank_agrees_with_exact_f64() {
        lowrank_agrees_with_exact::<f64>(1e-6);
    }

    #[test]
    fn lowrank_agrees_with_exact_f32() {
        lowrank_agrees_with_exact::<f32>(5e-2);
    }

    /// rank = m (every training point a landmark): the Nyström
    /// factorization is exact, the direct Woodbury solve needs no
    /// escalation, and the model matches exact CG to near machine
    /// precision (1e-9 leaves headroom for the conditioning of the
    /// reduced system; observed agreement is tighter).
    #[test]
    fn full_rank_matches_exact_cg_to_machine_precision() {
        let data: LabeledData<f64> = planes(56, 7, 4242);
        for (kname, kernel) in psd_kernels::<f64>() {
            let reference = train(BackendSelection::Serial, kernel, &data, 1e-10);
            // the reduced system has dimension points - 1; requesting the
            // full point count exercises the documented clamp as well
            let out = train_lowrank(
                BackendSelection::Serial,
                kernel,
                &data,
                1e-10,
                data.points(),
            );
            assert_conforms(
                &format!("lowrank-full/{kname}"),
                &reference,
                &out,
                &data,
                1e-9,
            );
        }
    }

    /// Exhaustive rank sweep (every rank from 1 to the full system
    /// dimension, all PSD kernels, both scalar types) — minutes of
    /// work, so it runs behind `--ignored`; CI's lowrank leg invokes it
    /// explicitly.
    #[test]
    #[ignore = "exhaustive sweep; run with --ignored (CI lowrank leg)"]
    fn exhaustive_rank_sweep_conforms_at_every_rank() {
        fn sweep<T: AtomicScalar>(tol: f64) {
            let data: LabeledData<T> = planes(40, 5, 4242);
            for (kname, kernel) in psd_kernels::<T>() {
                let reference = train(BackendSelection::Serial, kernel, &data, 1e-10);
                for rank in 1..=data.points() {
                    let out = train_lowrank(BackendSelection::Serial, kernel, &data, 1e-10, rank);
                    assert_conforms(
                        &format!("sweep/{kname}/rank-{rank}"),
                        &reference,
                        &out,
                        &data,
                        tol,
                    );
                }
            }
        }
        sweep::<f64>(1e-6);
        sweep::<f32>(5e-2);
    }

    /// The deterministic seed contract holds across backends: the same
    /// seed and rank give byte-identical models on every thread count.
    #[test]
    fn lowrank_is_deterministic_across_thread_counts() {
        let data: LabeledData<f64> = planes(48, 6, 9);
        let reference = train_lowrank(
            BackendSelection::openmp(Some(1)),
            KernelSpec::Rbf { gamma: 0.5 },
            &data,
            1e-8,
            16,
        );
        for threads in [2, 4] {
            let out = train_lowrank(
                BackendSelection::openmp(Some(threads)),
                KernelSpec::Rbf { gamma: 0.5 },
                &data,
                1e-8,
                16,
            );
            assert_eq!(
                reference.model.coef, out.model.coef,
                "{threads} threads: alphas"
            );
            assert_eq!(reference.model.rho, out.model.rho, "{threads} threads: rho");
        }
    }
}

/// Fault plans are rejected, not silently ignored, on CPU backends.
#[test]
fn cpu_backends_reject_fault_plans() {
    let data: LabeledData<f64> = planes(20, 4, 5);
    for backend in [
        BackendSelection::Serial,
        BackendSelection::openmp(None),
        BackendSelection::SparseCpu { threads: None },
    ] {
        let err = LsSvm::<f64>::new()
            .with_backend(backend)
            .with_fault_plan(FaultPlan::new().fail_stop(0, 0))
            .train(&data)
            .unwrap_err();
        assert!(err.to_string().contains("simulated"), "{err}");
    }
}
