//! Property tests for the randomized low-rank (Nyström) solver path.
//!
//! Three contracts, exercised over randomized fixtures:
//!
//! 1. **Determinism** — the same sampling seed gives bit-identical
//!    landmark sets (nested across ranks, since the partial
//!    Fisher–Yates draws are rank-independent) and bit-identical
//!    trained models regardless of the OpenMP thread count.
//! 2. **Rank monotonicity** — on a PSD fixture the direct-solve
//!    relative residual is non-increasing in the rank: uniform
//!    landmark sets with one seed are nested, so a larger rank can
//!    only improve the Nyström approximation in the PSD order. The
//!    assertion carries a small slack because PSD-order improvement
//!    guarantees the trend, not pointwise strictness for a single
//!    right-hand side in floating point.
//! 3. **Robustness** — rank-deficient Gram matrices (duplicated
//!    training rows) never panic: the Cholesky jitter ladder and the
//!    escalation path always return a model.

use std::sync::Arc;

use plssvm_core::backend::BackendSelection;
use plssvm_core::lowrank::{LandmarkStrategy, SolverSelection};
use plssvm_core::svm::LsSvm;
use plssvm_core::trace::Telemetry;
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::sampling::sample_uniform;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use proptest::prelude::*;

fn planes(points: usize, features: usize, seed: u64) -> LabeledData<f64> {
    generate_planes(
        &PlanesConfig::new(points, features, seed)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap()
}

/// Trains with the low-rank solver and returns the model plus the
/// direct-solve relative residual from the telemetry sample.
fn train_lowrank(
    data: &LabeledData<f64>,
    rank: usize,
    seed: u64,
    threads: usize,
    cost: f64,
) -> (Vec<f64>, f64, f64) {
    let telemetry = Telemetry::shared();
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
        .with_cost(cost)
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::openmp(Some(threads)))
        .with_solver(SolverSelection::LowRank {
            rank,
            seed,
            strategy: LandmarkStrategy::Uniform,
        })
        .with_metrics(Arc::clone(&telemetry))
        .train(data)
        .unwrap();
    let sample = out
        .telemetry
        .expect("telemetry enabled")
        .lowrank
        .expect("low-rank sample recorded");
    (
        out.model.coef.clone(),
        out.model.rho,
        sample.direct_relative_residual,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Landmark sampling is deterministic and nested: the same seed
    /// reproduces the set bit for bit, and the rank-k set is a subset
    /// of the rank-k' set for k ≤ k' (the i-th Fisher–Yates draw does
    /// not depend on the requested rank).
    #[test]
    fn landmarks_are_deterministic_and_nested(
        n in 8usize..200,
        seed in any::<u64>(),
        k1 in 1usize..32,
        extra in 0usize..32,
    ) {
        let k1 = k1.min(n);
        let k2 = (k1 + extra).min(n);
        let a = sample_uniform(n, k1, seed);
        prop_assert_eq!(&a, &sample_uniform(n, k1, seed));
        let b = sample_uniform(n, k2, seed);
        for i in &a {
            prop_assert!(b.contains(i), "rank-{k1} landmark {i} missing at rank {k2}");
        }
    }

    /// Same seed + same rank ⇒ bit-identical model on any thread count.
    #[test]
    fn model_is_bit_identical_across_thread_counts(
        data_seed in 0u64..1000,
        sample_seed in any::<u64>(),
        rank in 4usize..24,
    ) {
        let data = planes(40, 5, data_seed);
        let (coef1, rho1, _) = train_lowrank(&data, rank, sample_seed, 1, 2.0);
        for threads in [2, 4] {
            let (coef, rho, _) = train_lowrank(&data, rank, sample_seed, threads, 2.0);
            prop_assert_eq!(&coef1, &coef, "{} threads", threads);
            prop_assert_eq!(rho1, rho, "{} threads", threads);
        }
    }

    /// Nested landmark sets ⇒ the direct-solve residual does not get
    /// worse as the rank grows (up to floating-point slack), and the
    /// full-rank factorization is exact.
    #[test]
    fn direct_residual_is_non_increasing_in_rank(
        data_seed in 0u64..1000,
        sample_seed in any::<u64>(),
    ) {
        let data = planes(48, 6, data_seed);
        // moderate cost keeps the ridge diagonal significant, so the
        // Woodbury inverse stays well conditioned and the residual
        // tracks the (monotone, by nestedness) approximation error; a
        // tiny ridge would amplify the error non-monotonically instead
        let residuals: Vec<f64> = [6usize, 12, 24, 47]
            .iter()
            .map(|&k| train_lowrank(&data, k, sample_seed, 2, 2.0).2)
            .collect();
        for w in residuals.windows(2) {
            prop_assert!(
                w[1] <= w[0] * 1.05 + 1e-10,
                "residual increased with rank: {:?}",
                residuals
            );
        }
        // rank = n: Nyström is exact, the direct solve hits machine noise
        prop_assert!(residuals[3] <= 1e-8, "{:?}", residuals);
    }

    /// Duplicated rows make the Gram matrix exactly rank deficient; the
    /// jitter ladder (and, if it gives up, the escalation to exact CG)
    /// must always produce a model without panicking.
    #[test]
    fn rank_deficient_fixtures_never_panic(
        data_seed in 0u64..1000,
        sample_seed in any::<u64>(),
        rank in 2usize..32,
    ) {
        let base = planes(24, 4, data_seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for p in 0..base.points() {
            let row: Vec<f64> = (0..base.features()).map(|f| base.x.get(p, f)).collect();
            // every point twice: the kernel matrix has at most 24
            // distinct rows, so any rank > 24 sketch is degenerate
            rows.push(row.clone());
            rows.push(row);
            y.push(base.y[p]);
            y.push(base.y[p]);
        }
        let data = LabeledData::new(
            plssvm_data::DenseMatrix::from_rows(rows).unwrap(),
            y,
        )
        .unwrap();
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
            .with_cost(1e6)
            .with_epsilon(1e-6)
            .with_solver(SolverSelection::LowRank {
                rank,
                seed: sample_seed,
                strategy: LandmarkStrategy::Uniform,
            })
            .train(&data);
        prop_assert!(out.is_ok(), "{:?}", out.err().map(|e| e.to_string()));
    }
}
