//! Property tests for the SIMD micro-kernels (`plssvm_core::simd`).
//!
//! Three contracts, exercised over adversarial vector lengths — 0, 1,
//! every lane width W in use (2, 4, 8, 16) plus W−1 and W+1, and primes
//! that are coprime to every lane width:
//!
//! 1. **Accuracy** — each SIMD `dot`/`dist_sq` agrees with the scalar
//!    reference within a 4-ULP reassociation bound. The ULP is anchored
//!    at Σ|aᵢ·bᵢ| (the condition-free magnitude of the sum), not at the
//!    result: a dot product can cancel to near zero, where no summation
//!    order stays within ULPs of another, while the element terms bound
//!    the error of *any* reassociation. `dist_sq` terms are squares, so
//!    its result and its magnitude basis coincide.
//! 2. **Panel ≡ per-pair** — every entry of a dispatched panel is
//!    bitwise identical to the per-pair `dot`/`dist_sq` of the same
//!    tier, for full 4×4 tiles and ragged partial tiles alike. This is
//!    the invariant that makes the blocked engine's output independent
//!    of how rows are grouped into panels.
//! 3. **Degeneration** — for d below the tier's lane width the vector
//!    chain has no full chunk, so every tier must reproduce the scalar
//!    chain bit for bit.
//!
//! All tiers the host supports are exercised; on a machine without any
//! vector unit the properties reduce to scalar self-consistency.

use plssvm_core::kernel::{self, PANEL_MR, PANEL_NR};
use plssvm_core::simd::{self, Isa};
use proptest::prelude::*;

/// Lengths that straddle every lane width plus primes coprime to all of
/// them: 0, 1, W−1, W, W+1 for W ∈ {2, 4, 8, 16}, and 97 / 257.
fn adversarial_lengths() -> Vec<usize> {
    let mut lens = vec![0, 1, 97, 257];
    for w in [2usize, 4, 8, 16] {
        lens.extend([w - 1, w, w + 1]);
    }
    lens.sort_unstable();
    lens.dedup();
    lens
}

/// A strategy drawing one adversarial length.
fn length() -> impl Strategy<Value = usize> {
    let lens = adversarial_lengths();
    (0..lens.len()).prop_map(move |i| lens[i])
}

/// One vector component: mostly moderate magnitudes, with exact zeros
/// and tiny values mixed in to stress sign and scale edge cases.
fn component() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0..100.0f64,
        -100.0..100.0f64,
        Just(0.0f64),
        -1e-6..1e-6f64,
    ]
}

/// Two equal-length vectors of one adversarial length.
fn vector_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    length().prop_flat_map(|d| {
        (
            proptest::collection::vec(component(), d..=d),
            proptest::collection::vec(component(), d..=d),
        )
    })
}

/// 4-ULP-style reassociation bound anchored at the magnitude `basis`
/// (which must be ≥ |true result| and non-cancelling).
fn bound(basis: f64, d: usize) -> f64 {
    4.0 * f64::EPSILON * d.max(1) as f64 * basis.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SIMD `dot` agrees with the scalar reference within the 4-ULP
    /// reassociation bound, on every tier the host supports.
    #[test]
    fn simd_dot_matches_scalar((a, b) in vector_pair()) {
        let scalar = kernel::dot(&a, &b);
        let basis: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        for isa in Isa::available() {
            let got = simd::dot(isa, &a, &b);
            let err = (got - scalar).abs();
            prop_assert!(
                err <= bound(basis, a.len()),
                "{isa} dot d={}: {got} vs {scalar} (err {err:e})",
                a.len()
            );
        }
    }

    /// SIMD `dist_sq` agrees with the scalar reference within the
    /// 4-ULP reassociation bound; its terms are non-negative so the
    /// result itself is the magnitude basis.
    #[test]
    fn simd_dist_sq_matches_scalar((a, b) in vector_pair()) {
        let scalar = kernel::dist_sq(&a, &b);
        for isa in Isa::available() {
            let got = simd::dist_sq(isa, &a, &b);
            let err = (got - scalar).abs();
            prop_assert!(
                err <= bound(scalar, a.len()),
                "{isa} dist_sq d={}: {got} vs {scalar} (err {err:e})",
                a.len()
            );
        }
    }

    /// Below the lane width the vector chain has no full chunk and must
    /// degenerate to the scalar chain exactly (bitwise).
    #[test]
    fn short_vectors_degenerate_to_scalar_bits(
        (a, b) in length().prop_flat_map(|d| {
            let d = d.min(3);
            (
                proptest::collection::vec(-100.0..100.0f64, d..=d),
                proptest::collection::vec(-100.0..100.0f64, d..=d),
            )
        })
    ) {
        for isa in Isa::available() {
            if a.len() < isa.lanes_f64() {
                prop_assert_eq!(
                    simd::dot(isa, &a, &b).to_bits(),
                    kernel::dot(&a, &b).to_bits(),
                    "{} dot d={}", isa, a.len()
                );
                prop_assert_eq!(
                    simd::dist_sq(isa, &a, &b).to_bits(),
                    kernel::dist_sq(&a, &b).to_bits(),
                    "{} dist_sq d={}", isa, a.len()
                );
            }
        }
    }

    /// Every panel entry — full or ragged — is bitwise identical to the
    /// per-pair evaluation of the same tier.
    #[test]
    fn panel_entries_bitwise_match_per_pair(
        (rows, h, w) in length().prop_flat_map(|d| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(-100.0..100.0f64, d..=d),
                    PANEL_MR + PANEL_NR..=PANEL_MR + PANEL_NR,
                ),
                1..=PANEL_MR,
                1..=PANEL_NR,
            )
        })
    ) {
        let ra: Vec<&[f64]> = rows[..h].iter().map(Vec::as_slice).collect();
        let rb: Vec<&[f64]> = rows[PANEL_MR..PANEL_MR + w].iter().map(Vec::as_slice).collect();
        for isa in Isa::available() {
            let dots = simd::panel_dot(isa, &ra, &rb);
            let dists = simd::panel_dist_sq(isa, &ra, &rb);
            for (i, &row_a) in ra.iter().enumerate() {
                for (j, &row_b) in rb.iter().enumerate() {
                    prop_assert_eq!(
                        dots[i][j].to_bits(),
                        simd::dot(isa, row_a, row_b).to_bits(),
                        "{} panel_dot [{},{}] h={} w={} d={}", isa, i, j, h, w, row_a.len()
                    );
                    prop_assert_eq!(
                        dists[i][j].to_bits(),
                        simd::dist_sq(isa, row_a, row_b).to_bits(),
                        "{} panel_dist_sq [{},{}] h={} w={} d={}", isa, i, j, h, w, row_a.len()
                    );
                }
            }
        }
    }

    /// f32 accuracy: the same 4-ULP contract holds in single precision.
    #[test]
    fn simd_dot_matches_scalar_f32((a, b) in vector_pair()) {
        let a: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let scalar = kernel::dot(&a, &b);
        let basis: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let tol = 4.0 * f32::EPSILON * a.len().max(1) as f32 * basis.max(1.0);
        for isa in Isa::available() {
            let got = simd::dot(isa, &a, &b);
            let err = (got - scalar).abs();
            prop_assert!(
                err <= tol,
                "{isa} f32 dot d={}: {got} vs {scalar} (err {err:e})",
                a.len()
            );
        }
    }
}

/// The forced-scalar tier is the reference implementation itself: pin
/// that `simd::dot`/`dist_sq` at `Isa::Scalar` route to the exact
/// `kernel` functions on a fixed fixture (belt and braces next to the
/// property tests above, which only exercise host-supported tiers).
#[test]
fn scalar_tier_is_the_reference_implementation() {
    let a: Vec<f64> = (0..97).map(|i| (i as f64).sin() * 10.0).collect();
    let b: Vec<f64> = (0..97).map(|i| (i as f64).cos() * 10.0).collect();
    assert_eq!(
        simd::dot(Isa::Scalar, &a, &b).to_bits(),
        kernel::dot(&a, &b).to_bits()
    );
    assert_eq!(
        simd::dist_sq(Isa::Scalar, &a, &b).to_bits(),
        kernel::dist_sq(&a, &b).to_bits()
    );
}
