//! Cross-backend conformance and determinism tests for the unified
//! observability layer (`plssvm_core::trace`).
//!
//! These back the paper's profiling claims end-to-end: identical seeded
//! runs produce byte-identical deterministic telemetry on every backend,
//! the CPU backends report the exact same logical counters, the device
//! backend launches exactly the paper's three compute kernels on the
//! linear path (§IV-C), and the CG residual history is finite, ends below
//! ε·‖r₀‖ and has exactly one sample per reported iteration.

use std::sync::Arc;

use plssvm_core::backend::BackendSelection;
use plssvm_core::kernel::kernel_flops;
use plssvm_core::svm::{LsSvm, TrainOutput};
use plssvm_core::trace::{spans, Telemetry, TelemetryReport};
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_simgpu::{hw, Backend as DeviceApi};

fn planes(points: usize, features: usize, seed: u64) -> LabeledData<f64> {
    generate_planes(
        &PlanesConfig::new(points, features, seed)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap()
}

fn train_with_metrics(
    backend: BackendSelection,
    data: &LabeledData<f64>,
    epsilon: f64,
) -> (TrainOutput<f64>, TelemetryReport) {
    let telemetry = Telemetry::shared();
    let out = LsSvm::new()
        .with_epsilon(epsilon)
        .with_backend(backend)
        .with_metrics(Arc::clone(&telemetry))
        .train(data)
        .unwrap();
    let report = out.telemetry.clone().expect("telemetry enabled");
    (out, report)
}

fn all_backends() -> Vec<BackendSelection> {
    vec![
        BackendSelection::Serial,
        BackendSelection::openmp(Some(2)),
        BackendSelection::SparseCpu { threads: None },
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 2),
    ]
}

#[test]
fn identical_seeded_runs_produce_byte_identical_telemetry() {
    let data = planes(48, 6, 1234);
    for backend in all_backends() {
        let (_, first) = train_with_metrics(backend.clone(), &data, 1e-6);
        let (_, second) = train_with_metrics(backend.clone(), &data, 1e-6);
        assert_eq!(
            first.deterministic_summary(),
            second.deterministic_summary(),
            "backend {}",
            backend.name()
        );
        // and the deterministic subset really is populated
        assert!(first.iterations() > 0, "backend {}", backend.name());
        assert!(first.total_launches() > 0, "backend {}", backend.name());
        assert!(first.total_flops() > 0, "backend {}", backend.name());
        assert!(first.total_bytes() > 0, "backend {}", backend.name());
    }
}

#[test]
fn serial_and_parallel_counters_agree_exactly() {
    let data = planes(40, 5, 7);
    let (serial_out, serial) = train_with_metrics(BackendSelection::Serial, &data, 1e-8);
    let (parallel_out, parallel) =
        train_with_metrics(BackendSelection::openmp(Some(2)), &data, 1e-8);
    // the logical counting convention: both backends compute the same
    // mathematical operator, so their logical counters are identical; the
    // physical evaluation savings of the symmetric schedules show up in
    // the separate kernel_evals channel instead
    assert_eq!(serial.kernels, parallel.kernels);
    assert_eq!(serial_out.iterations, parallel_out.iterations);
    assert_eq!(serial.cg.len(), parallel.cg.len());
    for name in ["q_kernel", "svm_kernel", "w_kernel"] {
        assert!(serial.kernels.contains_key(name), "missing {name}");
    }
}

#[test]
fn simgpu_linear_training_reports_exactly_three_kernels() {
    // the paper's §IV-C profiling claim: the linear training path spawns
    // exactly three distinct compute kernels
    let data = planes(40, 6, 22);
    let (out, report) = train_with_metrics(
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        &data,
        1e-6,
    );
    let names: Vec<&String> = report.kernels.keys().collect();
    assert_eq!(names.len(), 3, "{names:?}");
    assert_eq!(report.kernels["q_kernel"].launches, 1);
    assert_eq!(report.kernels["w_kernel"].launches, 1);
    assert!(report.kernels["svm_kernel"].launches as usize >= out.iterations);
    assert!(report.kernels["svm_kernel"].sim_time_s > 0.0);
}

#[test]
fn simgpu_flops_match_cpu_within_tiled_accounting() {
    let data = planes(50, 8, 9);
    let (_, cpu) = train_with_metrics(BackendSelection::Serial, &data, 1e-6);
    let (_, gpu) = train_with_metrics(
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        &data,
        1e-6,
    );
    // q_kernel: both count m+1 kernel evaluations over real (unpadded)
    // rows, so the FLOP counts agree exactly
    assert_eq!(cpu.kernels["q_kernel"].flops, gpu.kernels["q_kernel"].flops);
    // svm_kernel: the CPU convention counts every K·v entry (n² evals at
    // kf+2 FLOPs); the device's triangular scheduling evaluates the lower
    // triangle only, mirroring via atomics (n(n+1)/2 entries at kf+4
    // FLOPs, §III-C). Compare per-launch costs against that accounting.
    let n = (data.points() - 1) as u128;
    let kf = u128::from(kernel_flops(&KernelSpec::<f64>::Linear, data.features()));
    let cpu_per_launch =
        cpu.kernels["svm_kernel"].flops / u128::from(cpu.kernels["svm_kernel"].launches);
    let gpu_per_launch =
        gpu.kernels["svm_kernel"].flops / u128::from(gpu.kernels["svm_kernel"].launches);
    assert_eq!(cpu_per_launch, n * n * (kf + 2));
    assert_eq!(gpu_per_launch, n * (n + 1) / 2 * (kf + 4));
    let ratio = gpu_per_launch as f64 / cpu_per_launch as f64;
    assert!((0.25..1.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn residual_history_is_finite_converged_and_complete() {
    let epsilon = 1e-8;
    let data = planes(64, 6, 77);
    for backend in all_backends() {
        let (out, report) = train_with_metrics(backend.clone(), &data, epsilon);
        assert!(out.converged, "backend {}", backend.name());
        let history = report.residual_history();
        assert_eq!(history.len(), out.iterations, "backend {}", backend.name());
        assert!(
            history.iter().all(|r| r.is_finite()),
            "backend {}",
            backend.name()
        );
        let r0 = report.cg_initial_residual_norm.expect("initial residual");
        assert!(r0.is_finite() && r0 > 0.0);
        let last = *history.last().unwrap();
        assert!(
            last <= epsilon * r0,
            "backend {}: {last} > {epsilon}·{r0}",
            backend.name()
        );
    }
}

#[test]
fn component_times_are_a_projection_of_the_spans() {
    let data = planes(40, 5, 3);
    let (out, report) = train_with_metrics(BackendSelection::Serial, &data, 1e-6);
    assert_eq!(out.times.cg, report.span(spans::CG));
    assert_eq!(out.times.transform, report.span(spans::TRANSFORM));
    assert_eq!(out.times.write, report.span(spans::WRITE));
    assert_eq!(out.times.total, report.span(spans::TRAIN));
    // the hierarchical children nest inside their parent
    assert!(report.span(spans::CG) >= report.span(spans::CG_SOLVE));
    assert!(report.span(spans::CG) >= report.span(spans::CG_SETUP));
}

#[test]
fn telemetry_does_not_perturb_training() {
    let data = planes(60, 6, 15);
    let plain = LsSvm::new().with_epsilon(1e-8).train(&data).unwrap();
    let (tracked, _) = train_with_metrics(BackendSelection::default(), &data, 1e-8);
    assert!(plain.telemetry.is_none());
    assert_eq!(plain.iterations, tracked.iterations);
    assert_eq!(plain.model.rho, tracked.model.rho);
    assert_eq!(plain.model.coef, tracked.model.coef);
}
