//! Storage-fault resilience at the library level: journaled training on
//! a [`FaultVfs`] must retry transient faults (leaving `io_retry`
//! telemetry), degrade gracefully under persistent journal failures
//! (`io_degraded`, solve continues), and fall back past bit-rotted
//! generations on resume — in every case producing a model
//! byte-identical to the fault-free run. A fault-free [`FaultVfs`] must
//! be observationally identical to [`RealVfs`].

use std::path::PathBuf;
use std::sync::Arc;

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::{LsSvm, TrainOutput};
use plssvm_core::trace::{RecoveryKind, Telemetry};
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_data::vfs::{FaultKind, FaultPlan, FaultVfs, OpClass, Vfs};
use plssvm_data::CheckpointJournal;

/// Retention window larger than any solve here produces, so every
/// generation survives and resume points are predictable.
const KEEP: usize = 64;

fn dataset() -> LabeledData<f64> {
    generate_planes(
        &PlanesConfig::new(64, 8, 20260)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap()
}

fn trainer() -> LsSvm<f64> {
    LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
        .with_cost(2.0)
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::Serial)
        .with_checkpoint_interval(4)
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plssvm-io-res-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Journaled training over an explicit VFS, with telemetry collected.
fn train_over(
    dir: &std::path::Path,
    vfs: Arc<dyn Vfs>,
    resume: bool,
) -> (TrainOutput<f64>, Arc<Telemetry>) {
    let telemetry = Telemetry::shared();
    let journal = CheckpointJournal::open_with_vfs(dir, KEEP, vfs).unwrap();
    let out = trainer()
        .with_checkpoint_journal(journal)
        .with_resume(resume)
        .with_metrics(Arc::clone(&telemetry))
        .train(&dataset())
        .unwrap();
    (out, telemetry)
}

/// The fault-free reference: journaled training over the real
/// filesystem. Every faulted run below must reproduce this model
/// byte-for-byte.
fn reference() -> TrainOutput<f64> {
    let dir = scratch_dir("reference");
    let (out, _) = train_over(&dir, Arc::new(plssvm_data::RealVfs), false);
    assert!(out.converged, "reference run must converge");
    assert!(!out.io_degraded);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn assert_bit_identical(label: &str, got: &TrainOutput<f64>, want: &TrainOutput<f64>) {
    assert!(got.converged, "{label}: must converge");
    assert_eq!(
        got.model.to_model_string(),
        want.model.to_model_string(),
        "{label}: model must be byte-identical to the fault-free run"
    );
    assert_eq!(got.iterations, want.iterations, "{label}: iterations");
}

/// A fault-free FaultVfs is a pure pass-through: training over it is
/// indistinguishable from training over RealVfs.
#[test]
fn fault_free_fault_vfs_trains_identically_to_real_vfs() {
    let want = reference();
    let dir = scratch_dir("passthrough");
    let vfs = Arc::new(FaultVfs::new(FaultPlan::new()));
    let (out, _) = train_over(&dir, Arc::clone(&vfs) as Arc<dyn Vfs>, false);
    assert_bit_identical("passthrough", &out, &want);
    assert!(!out.io_degraded);
    assert_eq!(vfs.total_injected(), 0);
    assert!(
        vfs.ops(OpClass::Write) > 0,
        "journaled training must route checkpoint writes through the VFS"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transient EIO on the first checkpoint write is absorbed by the
/// retry policy: one or more `io_retry` telemetry events, no
/// degradation, and a bit-identical model.
#[test]
fn transient_journal_fault_is_retried_and_leaves_io_retry_telemetry() {
    let want = reference();
    let dir = scratch_dir("transient");
    let plan = FaultPlan::new().fault(FaultKind::Eio, OpClass::Write, 0, Some("gen-"), false);
    let vfs = Arc::new(FaultVfs::new(plan));
    let (out, telemetry) = train_over(&dir, Arc::clone(&vfs) as Arc<dyn Vfs>, false);

    assert_bit_identical("transient", &out, &want);
    assert!(
        !out.io_degraded,
        "a transient fault must not degrade checkpointing"
    );
    assert_eq!(vfs.total_injected(), 1, "{:?}", vfs.injected());

    let report = telemetry.report();
    let retries: Vec<_> = report
        .recovery
        .iter()
        .filter(|e| e.kind == RecoveryKind::IoRetry)
        .collect();
    assert!(
        !retries.is_empty(),
        "retried append must be recorded: {:?}",
        report.recovery
    );
    assert!(retries[0].detail.contains("checkpoint append"));
    assert!(
        !report
            .recovery
            .iter()
            .any(|e| e.kind == RecoveryKind::IoDegraded),
        "no degradation on a transient fault"
    );
    // the retried generation made it to disk after all
    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    assert!(!journal.is_empty().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A persistent write failure on the journal exhausts the retry budget,
/// degrades checkpointing (one `io_degraded` event, `io_degraded` flag
/// on the output) — and the solve still completes bit-identically.
#[test]
fn persistent_journal_fault_degrades_but_training_completes() {
    let want = reference();
    let dir = scratch_dir("persistent");
    let plan = FaultPlan::new().fault(FaultKind::Enospc, OpClass::Write, 0, Some("gen-"), true);
    let vfs = Arc::new(FaultVfs::new(plan));
    let (out, telemetry) = train_over(&dir, Arc::clone(&vfs) as Arc<dyn Vfs>, false);

    assert_bit_identical("persistent", &out, &want);
    assert!(
        out.io_degraded,
        "persistent journal failure must surface as io_degraded"
    );

    let report = telemetry.report();
    let degraded: Vec<_> = report
        .recovery
        .iter()
        .filter(|e| e.kind == RecoveryKind::IoDegraded)
        .collect();
    assert_eq!(degraded.len(), 1, "{:?}", report.recovery);
    assert!(degraded[0].detail.contains("checkpointing disabled"));
    // the retry budget was spent before giving up
    assert!(report
        .recovery
        .iter()
        .any(|e| e.kind == RecoveryKind::IoRetry));
    // nothing durable ever landed
    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    assert!(journal.is_empty().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume over a journal whose newest generation suffers bit rot at
/// read time: the damaged generation is skipped (recorded as recovery
/// telemetry), the previous one is used, and the resumed solve is
/// byte-identical.
#[test]
fn bit_rotted_newest_generation_falls_back_on_resume() {
    let want = reference();
    // first, a clean journaled run leaves its generations behind
    let dir = scratch_dir("bitrot");
    let (first, _) = train_over(&dir, Arc::new(plssvm_data::RealVfs), false);
    assert!(first.converged);
    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    let gens = journal.generations().unwrap();
    assert!(
        gens.len() >= 2,
        "need at least 2 generations to fall back across, got {gens:?}"
    );
    let newest = *gens.last().unwrap();

    // resume with the first `gen-` read bit-rotted (transient: only the
    // newest generation's read is damaged, the fallback read is clean)
    let plan = FaultPlan::new().fault(FaultKind::BitRot, OpClass::Read, 0, Some("gen-"), false);
    let vfs = Arc::new(FaultVfs::new(plan));
    let (out, telemetry) = train_over(&dir, Arc::clone(&vfs) as Arc<dyn Vfs>, true);

    assert_bit_identical("bitrot-resume", &out, &want);
    assert_eq!(vfs.total_injected(), 1, "{:?}", vfs.injected());

    let report = telemetry.report();
    assert!(
        report.recovery.iter().any(|e| {
            e.kind == RecoveryKind::Checkpoint
                && e.detail
                    .contains(&format!("skipped damaged checkpoint generation {newest}"))
        }),
        "{:?}",
        report.recovery
    );
    assert!(report.recovery.iter().any(|e| {
        e.detail.contains(&format!(
            "resuming from checkpoint generation {}",
            newest - 1
        ))
    }));
    let _ = std::fs::remove_dir_all(&dir);
}
