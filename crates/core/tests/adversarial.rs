//! Adversarial solver fixtures: deterministic pathological problems that
//! must come back with a *classified* [`SolveOutcome`] — converged via the
//! escalation ladder, or an honest failure — never a panic and never a
//! silently-wrong model.

use plssvm_core::cg::SolveOutcome;
use plssvm_core::guard::RecoveryPolicy;
use plssvm_core::prelude::*;
use plssvm_core::trace::RecoveryKind;
use plssvm_data::dense::DenseMatrix;
use plssvm_data::libsvm::RegressionData;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};

/// The paper's planes problem, deterministic seed, no label noise.
fn planes(points: usize, seed: u64) -> LabeledData<f64> {
    generate_planes(&PlanesConfig::new(points, 4, seed).with_flip_fraction(0.0)).unwrap()
}

#[test]
fn ill_conditioned_rbf_is_classified_honestly() {
    // cost = 1e12 (ridge 1e-12) with an extreme gamma drives the RBF
    // kernel matrix to numerical rank deficiency: far-apart points give
    // k ≈ 0, so K ≈ I + ridge — nearly the identity — while gamma
    // underflow on near-duplicate distances can produce exact ties. The
    // solve must report whatever happened truthfully.
    let data = planes(60, 17);
    let telemetry = Telemetry::shared();
    let out = LsSvm::<f64>::new()
        .with_kernel(KernelSpec::Rbf { gamma: 1e6 })
        .with_cost(1e12)
        .with_epsilon(1e-12)
        .with_max_iterations(300)
        .with_metrics(telemetry.clone())
        .train(&data)
        .unwrap();

    // the boolean, the classification and the telemetry must agree
    assert_eq!(out.converged, out.outcome.is_converged());
    assert!(out.relative_residual.is_finite());
    let report = out.telemetry.as_ref().unwrap();
    let recorded = report.cg_outcome.as_ref().expect("outcome recorded");
    assert_eq!(recorded.outcome, out.outcome.as_str());
    assert_eq!(recorded.iterations, out.iterations);
    // every escalation rung that engaged left a recovery event
    for kind in &out.escalations {
        assert!(
            report.recovery.iter().any(|s| s.kind == *kind),
            "escalation {kind:?} missing from recovery telemetry"
        );
    }
}

#[test]
fn ill_conditioned_linear_high_cost_is_classified_honestly() {
    // Linear kernel on 60 points with 4 features: K = XXᵀ has rank ≤ 5,
    // so with ridge = 1/cost = 1e-12 the system's condition number is
    // ~1e13 and CG cannot reach 1e-14. The outcome must say so.
    let data = planes(60, 23);
    let out = LsSvm::<f64>::new()
        .with_cost(1e12)
        .with_epsilon(1e-14)
        .with_max_iterations(400)
        .train(&data)
        .unwrap();
    assert_eq!(out.converged, out.outcome.is_converged());
    if !out.converged {
        // honest failure: classified, with the engaged rungs recorded
        assert_ne!(out.outcome, SolveOutcome::Converged);
        assert!(!out.escalations.is_empty(), "ladder should have engaged");
    }
}

#[test]
fn near_duplicate_rows_yield_classified_outcome() {
    // 24 points that are all tiny perturbations of two base rows: the
    // kernel matrix is numerically rank-2, the reduced system nearly
    // singular at cost = 1e10.
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..24 {
        let eps = i as f64 * 1e-13;
        if i % 2 == 0 {
            rows.push(vec![1.0 + eps, 2.0 - eps, 3.0 + eps, 4.0 - eps]);
            y.push(1.0);
        } else {
            rows.push(vec![-1.0 - eps, -2.0 + eps, -3.0 - eps, -4.0 + eps]);
            y.push(-1.0);
        }
    }
    let data = LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap();
    let out = LsSvm::<f64>::new()
        .with_cost(1e10)
        .with_epsilon(1e-12)
        .with_max_iterations(200)
        .train(&data)
        .unwrap();
    assert_eq!(out.converged, out.outcome.is_converged());
    assert!(out.relative_residual.is_finite());
}

#[test]
fn all_equal_labels_are_classified_not_panicked() {
    // Every label identical: the reduced right-hand side is exactly zero,
    // so the solve is trivially converged (x = 0) — or the constructor
    // rejects the degenerate set with a structured error. Either is fine;
    // a panic is not.
    let x = DenseMatrix::from_rows(vec![
        vec![1.0, 2.0],
        vec![3.0, 4.0],
        vec![5.0, 6.0],
        vec![7.0, 8.0],
    ])
    .unwrap();
    match LabeledData::new(x, vec![1.0, 1.0, 1.0, 1.0]) {
        Ok(data) => {
            let out = LsSvm::<f64>::new().train(&data).unwrap();
            assert_eq!(out.converged, out.outcome.is_converged());
            assert_eq!(out.outcome, SolveOutcome::Converged);
            assert!(out.escalations.is_empty());
        }
        Err(e) => {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn single_point_dataset_is_classified_not_panicked() {
    // One training point: the reduced system has dimension zero. Training
    // must either produce a (trivial) model or a structured error.
    let x = DenseMatrix::from_rows(vec![vec![0.5, -1.5]]).unwrap();
    match LabeledData::new(x, vec![1.0]) {
        Ok(data) => match LsSvm::<f64>::new().train(&data) {
            Ok(out) => {
                assert_eq!(out.converged, out.outcome.is_converged());
                assert_eq!(out.model.total_sv(), 1);
            }
            Err(e) => assert!(!e.to_string().is_empty()),
        },
        Err(e) => assert!(!e.to_string().is_empty()),
    }
}

mod lowrank {
    //! Adversarial fixtures for the randomized low-rank solver: abusive
    //! ranks, degenerate sketches, and problems the Nyström direct solve
    //! cannot crack — each must end in a structured error or a
    //! classified outcome with the lowrank→exact-CG escalation on
    //! record, never a panic.

    use super::*;
    use plssvm_core::lowrank::{LandmarkStrategy, SolverSelection};
    use plssvm_core::SvmError;

    #[test]
    fn rank_zero_is_a_structured_error() {
        let data = planes(30, 3);
        let err = LsSvm::<f64>::new()
            .with_solver(SolverSelection::lowrank(0))
            .train(&data)
            .unwrap_err();
        assert!(
            matches!(err, SvmError::Solver(_)),
            "rank 0 must be a solver error, got {err}"
        );
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn rank_one_and_oversized_ranks_train_classified() {
        // rank 1: a single landmark is a legal (if crude) sketch; rank
        // 10·m documents the clamp to the reduced-system dimension.
        // Both must produce classified outcomes, not panics.
        let data = planes(40, 7);
        for rank in [1, 400] {
            let out = LsSvm::<f64>::new()
                .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
                .with_cost(2.0)
                .with_epsilon(1e-8)
                .with_solver(SolverSelection::lowrank(rank))
                .train(&data)
                .unwrap();
            assert_eq!(out.converged, out.outcome.is_converged(), "rank {rank}");
            assert!(out.relative_residual.is_finite(), "rank {rank}");
            assert!(
                out.converged,
                "rank {rank} should still converge via escalation"
            );
        }
    }

    #[test]
    fn duplicate_rows_make_a_degenerate_sketch_not_a_panic() {
        // 24 points, each an exact duplicate of one of two base rows:
        // any sketch with more than two landmarks picks duplicate
        // columns, so S = W + CᵀD⁻¹C is singular up to the jitter
        // ladder. Training must survive with a classified outcome.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            if i % 2 == 0 {
                rows.push(vec![1.0, 2.0, 3.0, 4.0]);
                y.push(1.0);
            } else {
                rows.push(vec![-1.0, -2.0, -3.0, -4.0]);
                y.push(-1.0);
            }
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap();
        for strategy in [LandmarkStrategy::Uniform, LandmarkStrategy::Leverage] {
            let out = LsSvm::<f64>::new()
                .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
                .with_cost(1e8)
                .with_epsilon(1e-10)
                .with_solver(SolverSelection::LowRank {
                    rank: 12,
                    seed: 42,
                    strategy,
                })
                .train(&data)
                .unwrap();
            assert_eq!(
                out.converged,
                out.outcome.is_converged(),
                "{strategy:?}: classification"
            );
            assert!(out.relative_residual.is_finite(), "{strategy:?}");
        }
    }

    #[test]
    fn ill_conditioned_fixture_trains_only_via_recorded_escalation_to_exact_cg() {
        // gamma = 1e6 drives K to a numerical identity, which a rank-4
        // Nyström sketch cannot represent: the direct Woodbury solve
        // misses epsilon, the Nyström-preconditioned CG inherits the
        // useless preconditioner, and only the fallback to the exact
        // guarded ladder trains the model. Every transition must be on
        // the telemetry record.
        let data = planes(60, 17);
        let telemetry = Telemetry::shared();
        let out = LsSvm::<f64>::new()
            .with_kernel(KernelSpec::Rbf { gamma: 1e6 })
            .with_cost(1e12)
            .with_epsilon(1e-10)
            .with_max_iterations(300)
            .with_solver(SolverSelection::lowrank(4))
            .with_metrics(telemetry.clone())
            .train(&data)
            .unwrap();

        assert_eq!(out.converged, out.outcome.is_converged());
        assert!(
            out.escalations.contains(&RecoveryKind::Precondition),
            "the Nyström-PCG rung must have engaged: {:?}",
            out.escalations
        );
        assert!(
            out.escalations.contains(&RecoveryKind::SolverFallback),
            "training must have fallen back to exact CG: {:?}",
            out.escalations
        );
        assert!(
            out.converged,
            "the exact ladder must rescue the run (outcome {})",
            out.outcome
        );

        // telemetry carries the same story: both lowrank transitions as
        // recovery events, plus the low-rank sample itself
        let report = out.telemetry.as_ref().unwrap();
        for kind in [RecoveryKind::Precondition, RecoveryKind::SolverFallback] {
            assert!(
                report.recovery.iter().any(|s| s.kind == kind),
                "recovery telemetry misses {kind:?}"
            );
        }
        let sample = report.lowrank.as_ref().expect("lowrank sample recorded");
        assert_eq!(sample.rank, 4);
        assert!(sample.direct_relative_residual > 1e-10);
        let json = report.to_json_lines();
        assert!(json.contains("\"kind\":\"solver_fallback\""), "{json}");
        assert!(json.contains("\"type\":\"lowrank\""), "{json}");
    }
}

#[test]
fn f32_svr_trains_only_via_precision_escalation() {
    // Regression targets at scale 1e25: every individual value fits f32,
    // but ‖b‖² ≈ 1e50 overflows at the very first dot product, so every
    // f32-native rung (plain, restarted, Jacobi) sees a non-finite
    // residual norm and is classified breakdown_nonfinite. Only the f64
    // refinement rung — f64 norms, unit-normalized inner right-hand
    // sides — can train this, and it must say so in the telemetry.
    const SCALE: f64 = 1e25;
    let n = 32;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| (0..3).map(|j| ((i * 3 + j) as f32 * 0.37).sin()).collect())
        .collect();
    let y: Vec<f32> = (0..n)
        .map(|i| (SCALE * (1.0 + (i as f64 * 0.73).sin())) as f32)
        .collect();
    let data = RegressionData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap();

    let unguarded = LsSvr::<f32>::new()
        .with_cost(10.0)
        .with_epsilon(1e-4)
        .with_recovery_policy(RecoveryPolicy::disabled())
        .train(&data)
        .unwrap();
    assert!(
        !unguarded.converged,
        "fixture must defeat the plain f32 solve (outcome {})",
        unguarded.outcome
    );
    assert_eq!(
        unguarded.outcome.as_str(),
        "breakdown_nonfinite",
        "‖b‖² overflow must be classified as a non-finite breakdown"
    );

    let telemetry = Telemetry::shared();
    let guarded = LsSvr::<f32>::new()
        .with_cost(10.0)
        .with_epsilon(1e-4)
        .with_metrics(telemetry.clone())
        .train(&data)
        .unwrap();
    assert_eq!(
        guarded.outcome,
        SolveOutcome::Converged,
        "escalation ladder must rescue the f32 training run"
    );
    assert!(
        guarded
            .escalations
            .contains(&RecoveryKind::PrecisionEscalation),
        "convergence must come from the f64 refinement rung, got {:?}",
        guarded.escalations
    );
    assert!(
        guarded.escalations.contains(&RecoveryKind::Precondition),
        "the Jacobi rung engages (and fails) before precision escalation"
    );
    let report = guarded.telemetry.as_ref().unwrap();
    for kind in [
        RecoveryKind::Restart,
        RecoveryKind::Precondition,
        RecoveryKind::PrecisionEscalation,
    ] {
        assert!(
            report.recovery.iter().any(|s| s.kind == kind),
            "recovery telemetry misses the {kind:?} rung"
        );
    }
    let recorded = report.cg_outcome.as_ref().unwrap();
    assert_eq!(recorded.outcome, "converged");
    assert!(recorded.relative_residual <= 1e-4 * 1.01);
}
