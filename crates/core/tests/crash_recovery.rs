//! Crash-injection recovery harness (library level).
//!
//! The acceptance property for durable checkpointing is *kill-anywhere*:
//! a training process killed immediately after any checkpoint generation
//! becomes durable must, on `--resume`, produce a model byte-identical
//! to the uninterrupted run. This harness proves it by re-spawning the
//! test binary as a child with [`plssvm_data::checkpoint::CRASH_AFTER_ENV`]
//! set — the journal then calls `std::process::abort()` right after the
//! chosen generation hits disk, the worst possible moment — and resuming
//! in the parent.
//!
//! The default test covers a representative slice of the
//! backend × kernel × precision matrix plus the corruption-fallback
//! scenario; the exhaustive matrix (every backend, every kernel, every
//! precision, killed at *every* generation) runs under `--ignored` and
//! is exercised by the CI crash-recovery leg in release mode.

use std::env;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::{LsSvm, TrainOutput};
use plssvm_core::trace::{RecoveryKind, Telemetry};
use plssvm_data::checkpoint::CRASH_AFTER_ENV;
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_data::CheckpointJournal;
use plssvm_simgpu::device::AtomicScalar;
use plssvm_simgpu::{hw, Backend as DeviceApi};

/// Marks a spawned process as the crash-injection child and names its
/// `backend:kernel:precision` case.
const CASE_ENV: &str = "PLSSVM_CRASH_CHILD_CASE";
/// Journal directory handed to the crash-injection child.
const DIR_ENV: &str = "PLSSVM_CRASH_CHILD_DIR";

/// Retention window — larger than any solve in this harness produces,
/// so the parent can count generations exactly.
const KEEP: usize = 64;

fn dataset<T: AtomicScalar>() -> LabeledData<T> {
    generate_planes(
        &PlanesConfig::new(64, 8, 20260)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap()
}

fn backend_for(tag: &str) -> BackendSelection {
    match tag {
        "serial" => BackendSelection::Serial,
        "openmp" => BackendSelection::openmp(Some(2)),
        "simgpu" => BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        other => panic!("unknown backend tag '{other}'"),
    }
}

fn kernel_for<T: AtomicScalar>(tag: &str) -> KernelSpec<T> {
    match tag {
        "linear" => KernelSpec::Linear,
        "rbf" => KernelSpec::Rbf {
            gamma: T::from_f64(0.5),
        },
        other => panic!("unknown kernel tag '{other}'"),
    }
}

fn trainer<T: AtomicScalar>(backend: &str, kernel: &str) -> LsSvm<T> {
    // single precision cannot reach the double-precision target and
    // converges in fewer iterations, so it checkpoints more often to
    // still produce several generations to kill at
    let (epsilon, interval) = if T::BYTES == 4 { (1e-5, 2) } else { (1e-10, 4) };
    LsSvm::new()
        .with_kernel(kernel_for(kernel))
        .with_cost(T::from_f64(2.0))
        .with_epsilon(T::from_f64(epsilon))
        .with_backend(backend_for(backend))
        .with_checkpoint_interval(interval)
}

fn train_journaled<T: AtomicScalar>(
    backend: &str,
    kernel: &str,
    dir: &Path,
    resume: bool,
) -> TrainOutput<T> {
    let journal = CheckpointJournal::open(dir, KEEP).unwrap();
    trainer(backend, kernel)
        .with_checkpoint_journal(journal)
        .with_resume(resume)
        .train(&dataset::<T>())
        .unwrap()
}

fn run_child(case: &str, dir: &Path) {
    let parts: Vec<&str> = case.split(':').collect();
    let [backend, kernel, precision] = parts[..] else {
        panic!("malformed case '{case}'");
    };
    match precision {
        "f32" => {
            train_journaled::<f32>(backend, kernel, dir, false);
        }
        "f64" => {
            train_journaled::<f64>(backend, kernel, dir, false);
        }
        other => panic!("unknown precision tag '{other}'"),
    }
}

/// Child dispatcher. In a normal test run the marker environment is
/// unset and this test is an immediate pass; when the harness re-spawns
/// the binary with [`CASE_ENV`] set, it trains with crash injection
/// armed and is expected to die by `abort()` before returning.
#[test]
fn child_entry() {
    if let (Ok(case), Ok(dir)) = (env::var(CASE_ENV), env::var(DIR_ENV)) {
        run_child(&case, Path::new(&dir));
        panic!("crash-injection child completed without crashing");
    }
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = env::temp_dir().join(format!(
        "plssvm-crash-{}-{}",
        std::process::id(),
        label.replace(':', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns this test binary as a crash-injection child that aborts right
/// after `crash_gen` becomes durable, and asserts it died by signal
/// (abort), not by an orderly test failure.
fn spawn_crashing_child(case: &str, dir: &Path, crash_gen: u64) {
    let exe = env::current_exe().unwrap();
    let status = Command::new(exe)
        .args(["child_entry", "--exact", "--test-threads=1"])
        .env(CASE_ENV, case)
        .env(DIR_ENV, dir)
        .env(CRASH_AFTER_ENV, crash_gen.to_string())
        .status()
        .unwrap();
    assert!(
        status.code().is_none(),
        "{case}: child killed at generation {crash_gen} should die by \
         signal (abort), got {status:?}"
    );
}

/// The kill-anywhere property for one case and one crash point: kill
/// the child right after `crash_gen` is durable, resume in-process,
/// and require the resumed model to be byte-identical to `reference`.
fn kill_and_resume<T: AtomicScalar>(case: &str, crash_gen: u64, reference: &TrainOutput<T>) {
    let parts: Vec<&str> = case.split(':').collect();
    let (backend, kernel) = (parts[0], parts[1]);
    let dir = scratch_dir(&format!("{case}-g{crash_gen}"));

    spawn_crashing_child(case, &dir, crash_gen);

    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    let gens = journal.generations().unwrap();
    assert_eq!(
        gens.last().copied(),
        Some(crash_gen),
        "{case}: journal must end at the crash generation"
    );

    let resumed = train_journaled::<T>(backend, kernel, &dir, true);
    assert_eq!(
        resumed.model.to_model_string(),
        reference.model.to_model_string(),
        "{case}: resumed model after crash at generation {crash_gen} \
         must be byte-identical"
    );
    assert_eq!(resumed.model.coef, reference.model.coef, "{case}: alphas");
    assert_eq!(resumed.model.rho, reference.model.rho, "{case}: rho");
    // the resumed iteration counter is absolute, so it matches the
    // uninterrupted run exactly
    assert_eq!(
        resumed.iterations, reference.iterations,
        "{case}: iterations"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Counts how many checkpoint generations an uninterrupted journaled
/// run of this case produces, and returns it with the reference output.
fn reference_run<T: AtomicScalar>(case: &str) -> (TrainOutput<T>, u64) {
    let parts: Vec<&str> = case.split(':').collect();
    let (backend, kernel) = (parts[0], parts[1]);
    let dir = scratch_dir(&format!("{case}-reference"));
    let out = train_journaled::<T>(backend, kernel, &dir, false);
    assert!(out.converged, "{case}: reference run must converge");
    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    let generations = journal.generations().unwrap().len() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        generations >= 3,
        "{case}: need at least 3 generations to kill at, got {generations}"
    );
    (out, generations)
}

fn exercise_case<T: AtomicScalar>(case: &str, every_generation: bool) {
    let (reference, generations) = reference_run::<T>(case);
    let crash_points: Vec<u64> = if every_generation {
        (1..=generations).collect()
    } else {
        // first, middle and last generation — the retention edge cases
        vec![1, generations / 2 + 1, generations]
    };
    for crash_gen in crash_points {
        kill_and_resume::<T>(case, crash_gen, &reference);
    }
}

/// Representative slice of the kill matrix, fast enough for tier-1.
#[test]
fn kill_anywhere_resume_is_bit_exact_representative() {
    exercise_case::<f64>("serial:linear:f64", false);
    exercise_case::<f32>("openmp:rbf:f32", false);
    exercise_case::<f64>("simgpu:rbf:f64", false);
}

/// The exhaustive matrix: every backend × kernel × precision, killed at
/// every checkpoint generation. Run via `cargo test --release -- --ignored`
/// (the CI crash-recovery leg).
#[test]
#[ignore = "exhaustive kill matrix; run by the CI crash-recovery leg"]
fn kill_matrix_full() {
    for backend in ["serial", "openmp", "simgpu"] {
        for kernel in ["linear", "rbf"] {
            exercise_case::<f32>(&format!("{backend}:{kernel}:f32"), true);
            exercise_case::<f64>(&format!("{backend}:{kernel}:f64"), true);
        }
    }
}

/// Corruption fallback: after a crash at generation g, the newest
/// snapshot is damaged on disk (torn write / bit rot). Resume must fall
/// back to generation g−1, record the skipped generation as recovery
/// telemetry, and still converge to the byte-identical model.
#[test]
fn corrupted_newest_generation_falls_back_and_still_converges() {
    let case = "serial:rbf:f64";
    let (reference, generations) = reference_run::<f64>(case);
    let crash_gen = generations.min(4);
    let dir = scratch_dir("corrupt-tail");

    spawn_crashing_child(case, &dir, crash_gen);

    // damage the newest generation: truncate it mid-payload (torn write)
    let newest = dir.join(format!("gen-{crash_gen:08}.ckpt"));
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let telemetry = Telemetry::shared();
    let journal = CheckpointJournal::open(&dir, KEEP).unwrap();
    let resumed = trainer::<f64>("serial", "rbf")
        .with_checkpoint_journal(journal)
        .with_resume(true)
        .with_metrics(Arc::clone(&telemetry))
        .train(&dataset::<f64>())
        .unwrap();

    assert!(resumed.converged);
    assert_eq!(
        resumed.model.to_model_string(),
        reference.model.to_model_string()
    );
    assert_eq!(resumed.iterations, reference.iterations);

    let report = resumed.telemetry.expect("telemetry enabled");
    let skipped: Vec<_> = report
        .recovery
        .iter()
        .filter(|e| e.kind == RecoveryKind::Checkpoint && e.detail.contains("skipped damaged"))
        .collect();
    assert_eq!(skipped.len(), 1, "{:?}", report.recovery);
    assert!(
        skipped[0]
            .detail
            .contains(&format!("generation {crash_gen}")),
        "{}",
        skipped[0].detail
    );
    assert!(report.recovery.iter().any(|e| e.detail.contains(&format!(
        "resuming from checkpoint generation {}",
        crash_gen - 1
    ))));

    let _ = std::fs::remove_dir_all(&dir);
}
