//! Integration tests of the beyond-v1.0.1 extensions (sigmoid kernel,
//! sparse backend, LS-SVR, multi-class, weighted LS-SVM, cross-validation)
//! interacting across crates and with the simulated device backends.

use plssvm::core::backend::BackendSelection;
use plssvm::core::multiclass::{train_multiclass, MultiClassModel, MultiClassStrategy};
use plssvm::core::regression::{mean_squared_error, predict_values, LsSvr};
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::core::validation::cross_validate;
use plssvm::core::weighted::train_robust;
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{
    generate_blobs, generate_planes, generate_sinc, BlobsConfig, PlanesConfig, SincConfig,
};
use plssvm::simgpu::{hw, Backend as DeviceApi};

#[test]
fn sigmoid_kernel_trains_with_smo_and_predicts() {
    // the sigmoid kernel is indefinite for the LS-SVM in general, but SMO
    // (box-constrained) handles it the way LIBSVM does
    let data = generate_planes::<f64>(
        &PlanesConfig::new(120, 6, 21)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let cfg = plssvm::smo::SmoConfig {
        kernel: KernelSpec::Sigmoid {
            gamma: 0.05,
            coef0: 0.0,
        },
        cost: 1.0,
        ..Default::default()
    };
    let out = plssvm::smo::solver::train_dense(&data, &cfg).unwrap();
    let acc = accuracy(&out.model, &data);
    assert!(acc >= 0.9, "sigmoid SMO accuracy {acc}");
    // model file round trip keeps the sigmoid hyperparameters
    let text = out.model.to_model_string();
    let back = plssvm::data::model::SvmModel::<f64>::from_model_string(&text).unwrap();
    assert_eq!(back.kernel, cfg.kernel);
}

#[test]
fn sigmoid_lssvm_small_gamma_behaves_like_linear() {
    // for small γ, tanh(γ·ip) ≈ γ·ip: the kernel is near-PSD and the
    // LS-SVM trains fine — parity across backends included
    let data = generate_planes::<f64>(
        &PlanesConfig::new(80, 5, 22)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let kernel = KernelSpec::Sigmoid {
        gamma: 0.01,
        coef0: 0.0,
    };
    let cpu = LsSvm::new()
        .with_kernel(kernel)
        .with_epsilon(1e-8)
        .train(&data)
        .unwrap();
    let gpu = LsSvm::new()
        .with_kernel(kernel)
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .train(&data)
        .unwrap();
    assert!(accuracy(&cpu.model, &data) >= 0.95);
    assert!((cpu.model.rho - gpu.model.rho).abs() < 1e-6);
}

#[test]
fn sparse_backend_full_training_run_matches_dense() {
    let mut data = generate_planes::<f64>(&PlanesConfig::new(100, 10, 23)).unwrap();
    for p in 0..data.points() {
        for f in 0..10 {
            if (p + f) % 4 != 0 {
                data.x.set(p, f, 0.0);
            }
        }
    }
    let dense = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
    let sparse = LsSvm::new()
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::SparseCpu { threads: None })
        .train(&data)
        .unwrap();
    assert_eq!(dense.iterations, sparse.iterations);
    assert!((dense.model.rho - sparse.model.rho).abs() < 1e-8);
    assert_eq!(sparse.backend_name, "sparse");
}

#[test]
fn regression_on_simulated_multi_gpu() {
    // LS-SVR through the feature-split multi-device path (linear kernel)
    let mut x = plssvm::data::dense::DenseMatrix::<f64>::zeros(80, 8);
    let mut y = Vec::new();
    for p in 0..80 {
        let mut t = -1.0;
        for f in 0..8 {
            let v = ((p * (2 * f + 1)) % 23) as f64 / 7.0 - 1.5;
            x.set(p, f, v);
            t += (f as f64 * 0.5 - 1.75) * v;
        }
        y.push(t);
    }
    let data = plssvm::data::libsvm::RegressionData::new(x, y).unwrap();
    let out = LsSvr::new()
        .with_cost(1e4)
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::sim_multi_gpu(
            hw::A100,
            DeviceApi::Cuda,
            4,
        ))
        .train(&data)
        .unwrap();
    assert!(out.device.unwrap().per_device.len() == 4);
    assert!(mean_squared_error(&out.model, &data) < 1e-6);
}

#[test]
fn rbf_training_on_four_row_split_devices() {
    // the paper: "the polynomial and radial kernels do not currently
    // support multi-GPU execution" — the row-split extension lifts that
    let data = generate_planes::<f64>(
        &PlanesConfig::new(120, 8, 28)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let single = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.2 })
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .train(&data)
        .unwrap();
    let quad = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.2 })
        .with_epsilon(1e-10)
        .with_backend(BackendSelection::sim_multi_gpu_rows(
            hw::A100,
            DeviceApi::Cuda,
            4,
        ))
        .train(&data)
        .unwrap();
    assert!((single.model.rho - quad.model.rho).abs() < 1e-7);
    assert_eq!(quad.device.unwrap().per_device.len(), 4);
    assert!(accuracy(&quad.model, &data) >= 0.97);
    assert!(quad.backend_name.contains("row split"));
}

#[test]
fn multiclass_on_device_backend_with_rbf() {
    let data =
        generate_blobs::<f64>(&BlobsConfig::new(120, 5, 3, 24).with_separation(5.0)).unwrap();
    let trainer = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.2 })
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::sim_gpu(hw::V100, DeviceApi::OpenCl));
    let model = train_multiclass(&data, &trainer, MultiClassStrategy::OneVsOne).unwrap();
    assert!(model.accuracy(&data) >= 0.97);
    // container round trip through a file keeps predictions
    let dir = std::env::temp_dir().join("plssvm_ext_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mc_rbf.model");
    model.save(&path).unwrap();
    let back = MultiClassModel::<f64>::load(&path).unwrap();
    assert_eq!(model.predict(&data.x), back.predict(&data.x));
    std::fs::remove_file(&path).ok();
}

#[test]
fn weighted_training_composes_with_cross_validation() {
    // robust weights from stage 1 can be fed into any trainer — verify CV
    // still runs with weighted training configured fold-wise... CV trains
    // per-fold, so weights cannot be preset; verify the error is clean.
    let data = generate_planes::<f64>(&PlanesConfig::new(60, 4, 25)).unwrap();
    let weighted_trainer = LsSvm::new().with_sample_weights(vec![1.0; 60]);
    // per-fold training sees fewer points than weights → clean error
    let err = cross_validate(&data, &weighted_trainer, 5, 1).unwrap_err();
    assert!(err.to_string().contains("sample weights"), "{err}");

    // the supported composition: CV on the plain trainer, robust on full
    let cv = cross_validate(&data, &LsSvm::new().with_epsilon(1e-6), 5, 1).unwrap();
    assert!(cv.accuracy > 0.8);
    let robust = train_robust(&data, &LsSvm::new().with_epsilon(1e-6)).unwrap();
    assert!(accuracy(&robust.weighted.model, &data) > 0.8);
}

#[test]
fn regression_prediction_matches_training_targets_at_interpolation() {
    let data = generate_sinc::<f64>(&SincConfig::new(100, 26).with_noise(0.0)).unwrap();
    let out = LsSvr::new()
        .with_kernel(KernelSpec::Rbf { gamma: 1.0 })
        .with_cost(1e6)
        .with_epsilon(1e-12)
        .train(&data)
        .unwrap();
    let values = predict_values(&out.model, &data.x);
    // near-interpolation: the 1/C = 1e-6 ridge and the RBF system's
    // conditioning leave a small smoothing residual
    for (v, y) in values.iter().zip(&data.y) {
        assert!((v - y).abs() < 1e-3, "{v} vs {y}");
    }
}

#[test]
fn all_four_kernels_round_trip_through_binary_training() {
    let data = generate_planes::<f64>(
        &PlanesConfig::new(60, 4, 27)
            .with_cluster_sep(4.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    for kernel in [
        KernelSpec::Linear,
        KernelSpec::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        },
        KernelSpec::Rbf { gamma: 0.25 },
        KernelSpec::Sigmoid {
            gamma: 0.02,
            coef0: 0.0,
        },
    ] {
        let out = LsSvm::new()
            .with_kernel(kernel)
            .with_epsilon(1e-8)
            .train(&data)
            .unwrap();
        let acc = accuracy(&out.model, &data);
        assert!(acc >= 0.9, "{kernel:?}: accuracy {acc}");
        let text = out.model.to_model_string();
        let back = plssvm::data::model::SvmModel::<f64>::from_model_string(&text).unwrap();
        assert_eq!(back.kernel, kernel);
    }
}
