//! Cross-crate integration tests: the full pipelines a user of the
//! published library would run, spanning `plssvm-data`, `plssvm-core`,
//! `plssvm-simgpu` and `plssvm-smo`.

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, predict_decision_values, predict_labels, LsSvm};
use plssvm::data::libsvm::{read_libsvm_str, write_libsvm_string};
use plssvm::data::model::{KernelSpec, SvmModel};
use plssvm::data::scale::ScalingParams;
use plssvm::data::split::train_test_split;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};
use plssvm::simgpu::{hw, Backend as DeviceApi};
use plssvm::smo::{SmoConfig, ThunderConfig, ThunderSolver};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("plssvm_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_scale_split_train_save_load_predict() {
    // 1. generate
    let mut data =
        generate_planes::<f64>(&PlanesConfig::new(300, 12, 424).with_cluster_sep(3.0)).unwrap();
    // 2. scale to [-1, 1]
    let params = ScalingParams::fit(&data.x, -1.0, 1.0).unwrap();
    params.apply(&mut data.x).unwrap();
    // 3. split
    let (train, test) = train_test_split(&data, 0.25, true, 1).unwrap();
    // 4. train
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Linear)
        .with_epsilon(1e-8)
        .train(&train)
        .unwrap();
    assert!(out.converged);
    // 5. save + reload, predictions identical
    let path = tmp("e2e.model");
    out.model.save(&path).unwrap();
    let loaded = SvmModel::<f64>::load(&path).unwrap();
    assert_eq!(
        predict_labels(&out.model, &test.x),
        predict_labels(&loaded, &test.x)
    );
    // 6. accuracy sane on held-out data (1 % label flips bound it)
    let acc = accuracy(&loaded, &test);
    assert!(acc > 0.90, "test accuracy {acc}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn libsvm_text_roundtrip_preserves_training_result() {
    let data = generate_planes::<f64>(&PlanesConfig::new(120, 8, 5)).unwrap();
    let text = write_libsvm_string(&data, true);
    let reparsed = read_libsvm_str::<f64>(&text, Some(data.features())).unwrap();
    let a = LsSvm::new().with_epsilon(1e-10).train(&data).unwrap();
    let b = LsSvm::new().with_epsilon(1e-10).train(&reparsed).unwrap();
    assert_eq!(a.iterations, b.iterations);
    // LIBSVM maps the *first label in the file* to +1, so the sign of rho
    // may flip on re-parse — predictions in original label space must be
    // identical though.
    assert!((a.model.rho.abs() - b.model.rho.abs()).abs() < 1e-12);
    assert_eq!(
        predict_labels(&a.model, &data.x),
        predict_labels(&b.model, &data.x)
    );
}

#[test]
fn all_backends_produce_interchangeable_models() {
    let data = generate_planes::<f64>(&PlanesConfig::new(150, 10, 6)).unwrap();
    let backends = [
        BackendSelection::Serial,
        BackendSelection::openmp(Some(2)),
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        BackendSelection::sim_gpu(hw::RADEON_VII, DeviceApi::OpenCl),
        BackendSelection::sim_gpu(hw::V100, DeviceApi::SyclHip),
        BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 3),
    ];
    let outputs: Vec<_> = backends
        .iter()
        .map(|b| {
            LsSvm::new()
                .with_epsilon(1e-10)
                .with_backend(b.clone())
                .train(&data)
                .unwrap()
        })
        .collect();
    let reference = predict_decision_values(&outputs[0].model, &data.x);
    for out in &outputs[1..] {
        let values = predict_decision_values(&out.model, &data.x);
        for (a, b) in reference.iter().zip(&values) {
            assert!(
                (a - b).abs() < 1e-6,
                "{}: decision values diverge: {a} vs {b}",
                out.backend_name
            );
        }
    }
}

#[test]
fn lssvm_and_smo_reach_comparable_accuracy() {
    // the paper's central accuracy claim: LS-SVM accuracy on par with SMO
    let data =
        generate_planes::<f64>(&PlanesConfig::new(200, 16, 7).with_cluster_sep(2.5)).unwrap();
    let ls = LsSvm::new().with_epsilon(1e-8).train(&data).unwrap();
    let smo = plssvm::smo::solver::train_dense(&data, &SmoConfig::default()).unwrap();
    let thunder = ThunderSolver::new(ThunderConfig {
        working_set_size: 32,
        ..Default::default()
    })
    .unwrap()
    .train(&data)
    .unwrap();
    let a_ls = accuracy(&ls.model, &data);
    let a_smo = accuracy(&smo.model, &data);
    let a_th = accuracy(&thunder.model, &data);
    assert!((a_ls - a_smo).abs() < 0.05, "LS {a_ls} vs SMO {a_smo}");
    assert!((a_ls - a_th).abs() < 0.05, "LS {a_ls} vs Thunder {a_th}");
    assert!(a_ls > 0.93);
}

#[test]
fn lssvm_uses_all_points_smo_uses_few_on_separable_data() {
    // the structural difference §II-C describes
    let data = generate_planes::<f64>(
        &PlanesConfig::new(160, 8, 8)
            .with_cluster_sep(4.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let ls = LsSvm::new().train(&data).unwrap();
    let smo = plssvm::smo::solver::train_dense(&data, &SmoConfig::default()).unwrap();
    assert_eq!(ls.model.total_sv(), data.points());
    assert!(
        smo.model.total_sv() < data.points() / 4,
        "SMO kept {} of {} points",
        smo.model.total_sv(),
        data.points()
    );
}

#[test]
fn device_memory_limit_is_enforced_end_to_end() {
    // the Intel iGPU has an 8 GiB budget; a data set bigger than that must
    // fail with an out-of-memory device error, not crash
    let data = generate_planes::<f64>(&PlanesConfig::new(64, 8, 9)).unwrap();
    // shrink the budget by using a custom spec
    let mut tiny = hw::INTEL_P630;
    tiny.memory_gib = 1.0 / (1 << 18) as f64; // 4 KiB
    let err = LsSvm::new()
        .with_backend(BackendSelection::sim_gpu(tiny, DeviceApi::OpenCl))
        .train(&data)
        .unwrap_err();
    assert!(err.to_string().contains("out of memory"), "{err}");
}

#[test]
fn f32_and_f64_models_agree_on_easy_data() {
    let data64 = generate_planes::<f64>(
        &PlanesConfig::new(100, 6, 10)
            .with_cluster_sep(4.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let data32 = generate_planes::<f32>(
        &PlanesConfig::new(100, 6, 10)
            .with_cluster_sep(4.0)
            .with_flip_fraction(0.0),
    )
    .unwrap();
    let out64 = LsSvm::<f64>::new()
        .with_epsilon(1e-6)
        .train(&data64)
        .unwrap();
    let out32 = LsSvm::<f32>::new()
        .with_epsilon(1e-4)
        .train(&data32)
        .unwrap();
    assert_eq!(accuracy(&out64.model, &data64), 1.0);
    assert_eq!(accuracy(&out32.model, &data32), 1.0);
}

#[test]
fn polynomial_kernel_end_to_end() {
    let data = generate_planes::<f64>(&PlanesConfig::new(120, 6, 11)).unwrap();
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        })
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .train(&data)
        .unwrap();
    assert!(out.converged);
    assert!(accuracy(&out.model, &data) > 0.9);
    // model file roundtrip keeps the kernel hyperparameters
    let path = tmp("poly.model");
    out.model.save(&path).unwrap();
    let loaded = SvmModel::<f64>::load(&path).unwrap();
    assert_eq!(loaded.kernel, out.model.kernel);
    std::fs::remove_file(&path).ok();
}
