//! Cross-crate property-based tests (proptest): the mathematical
//! invariants of the reproduction hold on *random* data, not just on the
//! hand-picked fixtures of the unit tests.

// index loops mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use plssvm::core::backend::{BackendSelection, Prepared};
use plssvm::core::cg::{conjugate_gradients, conjugate_gradients_resume, CgConfig, LinOp};
use plssvm::core::kernel::kernel_row;
use plssvm::core::matrix_free::{assemble_q_tilde, bias, full_alpha, reduced_rhs, QTildeParams};
use plssvm::core::svm::LsSvm;
use plssvm::data::dense::{DenseMatrix, SoAMatrix};
use plssvm::data::libsvm::{read_libsvm_str, write_libsvm_string, LabeledData};
use plssvm::data::model::KernelSpec;
use plssvm::data::scale::ScalingParams;
use plssvm::simgpu::{hw, Backend as DeviceApi};

/// Strategy: a small random labeled data set with both classes present.
fn labeled_data(max_points: usize, max_features: usize) -> impl Strategy<Value = LabeledData<f64>> {
    (2..max_points, 1..max_features)
        .prop_flat_map(|(m, d)| {
            (
                proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, d..=d), m..=m),
                proptest::collection::vec(prop_oneof![Just(1.0), Just(-1.0)], m..=m),
            )
        })
        .prop_map(|(rows, y)| LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap())
}

fn kernels() -> impl Strategy<Value = KernelSpec<f64>> {
    prop_oneof![
        Just(KernelSpec::Linear),
        // coef0 ≥ 0: a polynomial kernel is only a Mercer (PSD) kernel for
        // non-negative offsets — negative r makes Q̃ indefinite, which the
        // q_tilde_is_spd property correctly flags
        (1..4i32, 0.01..2.0f64, 0.0..1.0f64).prop_map(|(degree, gamma, coef0)| {
            KernelSpec::Polynomial {
                degree,
                gamma,
                coef0,
            }
        }),
        (0.01..2.0f64).prop_map(|gamma| KernelSpec::Rbf { gamma }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kernel function is symmetric for every kernel type.
    #[test]
    fn kernel_is_symmetric(data in labeled_data(12, 6), kernel in kernels()) {
        for i in 0..data.points() {
            for j in 0..data.points() {
                let a = kernel_row(&kernel, data.x.row(i), data.x.row(j));
                let b = kernel_row(&kernel, data.x.row(j), data.x.row(i));
                prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
            }
        }
    }

    /// The assembled Q̃ is symmetric positive semi-definite plus the ridge
    /// (vᵀQ̃v > 0 for v ≠ 0) — the precondition for CG.
    #[test]
    fn q_tilde_is_spd(data in labeled_data(10, 4), kernel in kernels(), c in 0.1..10.0f64) {
        let soa = SoAMatrix::from_dense(&data.x, 4);
        let q = assemble_q_tilde(&soa, &kernel, c);
        let n = q.rows();
        // symmetry
        for i in 0..n {
            for j in 0..n {
                prop_assert!((q.get(i, j) - q.get(j, i)).abs() < 1e-9);
            }
        }
        // positive definiteness along random-ish directions
        for s in 0..3u32 {
            let v: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.3) * (s as f64 + 0.7)).sin()).collect();
            let norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if norm_sq < 1e-12 {
                continue;
            }
            let mut quad = 0.0;
            for i in 0..n {
                for j in 0..n {
                    quad += v[i] * q.get(i, j) * v[j];
                }
            }
            prop_assert!(quad > 0.0, "vᵀQ̃v = {quad}");
        }
    }

    /// Serial, parallel and simulated-device backends compute the same
    /// Q̃·v on random data for every kernel.
    #[test]
    fn backends_agree_on_random_data(data in labeled_data(24, 8), kernel in kernels(), c in 0.1..10.0f64) {
        let n = data.points() - 1;
        let v: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64 - 5.0) / 3.0).collect();
        let mut reference = vec![0.0; n];
        Prepared::new(&BackendSelection::Serial, &data.x, None, &kernel, c)
            .unwrap()
            .apply(&v, &mut reference);
        for sel in [
            BackendSelection::openmp(Some(2)),
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ] {
            let mut out = vec![0.0; n];
            Prepared::new(&sel, &data.x, None, &kernel, c)
                .unwrap()
                .apply(&v, &mut out);
            for i in 0..n {
                let scale = reference[i].abs().max(1.0);
                prop_assert!(
                    (out[i] - reference[i]).abs() < 1e-7 * scale,
                    "{} row {i}: {} vs {}",
                    sel.name(), out[i], reference[i]
                );
            }
        }
    }

    /// CG solves the reduced system: the returned solution satisfies the
    /// augmented KKT system of Eq. 11 (both block rows).
    #[test]
    fn trained_solution_satisfies_eq11(data in labeled_data(16, 5), c in 0.5..5.0f64) {
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let soa = SoAMatrix::from_dense(&data.x, 4);
        let params = QTildeParams::compute(&soa, &kernel, c);
        let prepared = Prepared::new(&BackendSelection::Serial, &data.x, None, &kernel, c).unwrap();
        let rhs = reduced_rhs(&data.y);
        let solve = conjugate_gradients(&prepared, &rhs, &CgConfig::with_epsilon(1e-12));
        prop_assume!(solve.converged);
        let b = bias(&params, &data.y, &solve.x);
        let alpha = full_alpha(&solve.x);
        let m = data.points();
        // Σ αᵢ = 0 (last row of Eq. 11)
        let s: f64 = alpha.iter().sum();
        prop_assert!(s.abs() < 1e-6);
        // rows i: Σⱼ (k(xᵢ,xⱼ) + δᵢⱼ/C) αⱼ + b = yᵢ
        for i in 0..m {
            let mut lhs = b;
            for j in 0..m {
                let k = kernel_row(&kernel, data.x.row(i), data.x.row(j))
                    + if i == j { 1.0 / c } else { 0.0 };
                lhs += k * alpha[j];
            }
            prop_assert!((lhs - data.y[i]).abs() < 1e-5, "row {i}: {lhs} vs {}", data.y[i]);
        }
    }

    /// LIBSVM text serialization round-trips arbitrary data sets exactly.
    #[test]
    fn libsvm_roundtrip(data in labeled_data(16, 8), sparse in any::<bool>()) {
        let text = write_libsvm_string(&data, sparse);
        let back = read_libsvm_str::<f64>(&text, Some(data.features())).unwrap();
        prop_assert_eq!(&data.x, &back.x);
        // the ±1 mapping may flip (first label in the file ↦ +1), but the
        // original label of every point must survive
        for i in 0..data.points() {
            prop_assert_eq!(
                data.original_label(data.y[i]),
                back.original_label(back.y[i])
            );
        }
    }

    /// Scaling maps the fitted data into the target interval, and the
    /// range-file round trip reproduces the parameters.
    #[test]
    fn scaling_bounds_and_roundtrip(data in labeled_data(12, 6), lo in -3.0..0.0f64, width in 0.5..4.0f64) {
        let hi = lo + width;
        let mut x = data.x.clone();
        let params = ScalingParams::fit(&x, lo, hi).unwrap();
        params.apply(&mut x).unwrap();
        for p in 0..x.rows() {
            for f in 0..x.cols() {
                let v = x.get(p, f);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
            }
        }
        let reparsed = ScalingParams::<f64>::from_range_string(&params.to_range_string()).unwrap();
        prop_assert_eq!(params, reparsed);
    }

    /// Any seeded fault plan that leaves at least one live device (the
    /// generator never fail-stops device 0) trains to the same model as
    /// the fault-free run: recovery restores the computation, it does not
    /// approximate it.
    #[test]
    fn fault_recovery_preserves_model(data in labeled_data(20, 8), devices in 2..5usize, seed in any::<u64>()) {
        // the backend clamps the device count to the feature count; the
        // plan must address the devices that actually exist
        let devices = devices.min(data.features());
        let backend = BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, devices);
        let clean = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(backend.clone())
            .train(&data)
            .unwrap();
        let plan = plssvm::simgpu::FaultPlan::seeded(seed, devices, 8);
        let faulted = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(backend)
            .with_fault_plan(plan)
            .train(&data)
            .unwrap();
        prop_assert!(faulted.converged == clean.converged);
        // shard redistribution reassociates partial sums, so agreement is
        // to solver tolerance (same bound as feature_split_invariance)
        let scale = clean.model.rho.abs().max(1.0);
        prop_assert!(
            (clean.model.rho - faulted.model.rho).abs() < 1e-5 * scale,
            "rho {} vs {}", clean.model.rho, faulted.model.rho
        );
        let a = plssvm::core::svm::predict_decision_values(&clean.model, &data.x);
        let b = plssvm::core::svm::predict_decision_values(&faulted.model, &data.x);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// A solve interrupted at an arbitrary iteration and resumed from its
    /// checkpoint performs the exact arithmetic of an uninterrupted solve:
    /// bit-identical solution, identical total iteration count.
    #[test]
    fn checkpoint_restart_equals_uninterrupted_solve(data in labeled_data(16, 6), c in 0.5..5.0f64, stop in 1..8usize) {
        let kernel = KernelSpec::Rbf { gamma: 0.5 };
        let prepared = Prepared::new(&BackendSelection::Serial, &data.x, None, &kernel, c).unwrap();
        let rhs = reduced_rhs(&data.y);
        let cfg = CgConfig::with_epsilon(1e-10);
        let full = conjugate_gradients(&prepared, &rhs, &cfg);

        let interrupted = conjugate_gradients(&prepared, &rhs, &CgConfig {
            max_iterations: Some(stop),
            checkpoint_interval: Some(1),
            ..CgConfig::with_epsilon(1e-10)
        });
        let state = interrupted.checkpoint.expect("checkpointing enabled");
        let resumed = conjugate_gradients_resume(&prepared, &rhs, &cfg, &state);
        prop_assert_eq!(&resumed.x, &full.x);
        prop_assert_eq!(resumed.iterations, full.iterations);
        prop_assert_eq!(resumed.converged, full.converged);
        prop_assert_eq!(resumed.residual_norm, full.residual_norm);
    }

    /// The weighted feature split (the failover redistribution primitive)
    /// covers every feature exactly once, in order, for any positive
    /// weight vector.
    #[test]
    fn weighted_split_covers_every_feature_exactly_once(
        data in labeled_data(12, 10),
        weights in proptest::collection::vec(0.1..10.0f64, 1..5),
    ) {
        let soa = SoAMatrix::from_dense(&data.x, 4);
        let parts = soa.split_features_weighted(&weights);
        prop_assert_eq!(parts.len(), weights.len());
        let total: usize = parts.iter().map(|p| p.features()).sum();
        prop_assert_eq!(total, soa.features());
        let mut start = 0;
        for part in &parts {
            prop_assert_eq!(part.points(), soa.points());
            for f in 0..part.features() {
                for p in 0..soa.points() {
                    prop_assert_eq!(part.get(p, f), soa.get(p, start + f));
                }
            }
            start += part.features();
        }
    }

    /// Multi-device linear training equals single-device training.
    #[test]
    fn feature_split_invariance(data in labeled_data(20, 8), devices in 2..5usize) {
        let single = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
            .train(&data)
            .unwrap();
        let multi = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, devices))
            .train(&data)
            .unwrap();
        // partial sums reassociate across devices and CG amplifies the
        // rounding on ill-conditioned random data — agreement is to solver
        // tolerance, not bit-exact
        let scale = single.model.rho.abs().max(1.0);
        prop_assert!(
            (single.model.rho - multi.model.rho).abs() < 1e-5 * scale,
            "rho {} vs {}", single.model.rho, multi.model.rho
        );
        let a = plssvm::core::svm::predict_decision_values(&single.model, &data.x);
        let b = plssvm::core::svm::predict_decision_values(&multi.model, &data.x);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4 * x.abs().max(1.0), "{x} vs {y}");
        }
    }
}
