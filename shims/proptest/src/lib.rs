//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the property-testing API subset its tests use:
//! numeric range strategies, tuples, `Just`, `prop_oneof!`, collection
//! vectors, `prop_map`/`prop_flat_map`/`prop_filter`, and the `proptest!`
//! macro with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from real proptest, chosen deliberately for this repo:
//! - **Deterministic**: case seeds derive from the test name, so every run
//!   generates the same inputs (no `proptest-regressions` churn, no flaky
//!   CI).
//! - **No shrinking**: a failure reports the case number and seed instead
//!   of a minimized input.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejected, TestRng};

    /// Inclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejected> {
            let len = rng.uniform_usize(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::arbitrary` — the `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejected, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_from(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_from(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_from(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_from(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_from(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary_from(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Strategy generating any value of `T`.
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            Self(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
            Ok(T::arbitrary_from(rng))
        }
    }

    /// `proptest::prelude::any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current property case with a formatted message unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Rejects the current case (drawing a fresh one) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Picks uniformly between alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests; see the crate docs for the
/// differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest($config, stringify!($name), |__rng| {
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strategy), __rng) {
                        ::core::result::Result::Ok(v) => v,
                        ::core::result::Result::Err(r) => {
                            return ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(r.into_reason()),
                            )
                        }
                    };
                )+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}
