//! The property-test driver: configuration, RNG, and the case loop.

/// Runtime configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Global rejection budget (assumption failures / exhausted filters)
    /// before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why one drawn case did not count as a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was invalid (failed `prop_assume!` or a filter); draw
    /// another.
    Reject(String),
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds the rejection variant.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Result type of one property case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A strategy draw that produced no value (filter exhausted its retries).
#[derive(Debug, Clone)]
pub struct Rejected {
    reason: String,
}

impl Rejected {
    /// Wraps the human-readable rejection reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }

    /// Unwraps the reason string.
    pub fn into_reason(self) -> String {
        self.reason
    }
}

/// The deterministic case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one case seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }
}

/// FNV-1a, used to derive a per-test seed base from the test name.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one `proptest!`-declared test: draws cases until `config.cases`
/// pass, panicking on the first falsified case.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many global rejects \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest {name}: case #{} falsified (seed {seed:#018x})\n{reason}",
                    passed + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    #[test]
    fn runner_is_deterministic() {
        let collect = |_| {
            let mut seen = Vec::new();
            run_proptest(ProptestConfig::with_cases(10), "det", |rng| {
                seen.push(rng.next_u64());
                Ok(())
            });
            seen
        };
        assert_eq!(collect(()), collect(()));
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic() {
        run_proptest(ProptestConfig::with_cases(4), "fails", |rng| {
            let x = (0u64..100).generate(rng).unwrap();
            prop_assert!(x < 1, "x = {x}");
            Ok(())
        });
    }

    #[test]
    fn rejections_draw_new_cases() {
        let mut draws = 0u32;
        run_proptest(ProptestConfig::with_cases(5), "rej", |rng| {
            draws += 1;
            let x: u64 = (0u64..10).generate(rng).unwrap();
            prop_assume!(x.is_multiple_of(2));
            Ok(())
        });
        assert!(draws >= 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 10usize..20), flag in any::<bool>()) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0.0..1.0f64, 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![Just(1i32), Just(2), 5i32..8]
                                .prop_filter("not two", |v| *v != 2)) {
            prop_assert!(x == 1 || (5..8).contains(&x));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(Just(n), n..=n)
        })) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }
    }
}
