//! Value-generation strategies: what to feed a property test.

use crate::test_runner::{Rejected, TestRng};

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for heterogeneous unions.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or reports that this draw was rejected (e.g. a
    /// filter never matched).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, fun: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, fun }
    }

    /// Discards values failing the predicate (resampling up to an internal
    /// retry limit before rejecting the case).
    fn prop_filter<R, F>(self, whence: R, fun: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            fun,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
        Ok((self.fun)(self.source.generate(rng)?))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    fun: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejected> {
        (self.fun)(self.source.generate(rng)?).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: String,
    fun: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        const LOCAL_RETRIES: usize = 256;
        for _ in 0..LOCAL_RETRIES {
            let value = self.source.generate(rng)?;
            if (self.fun)(&value) {
                return Ok(value);
            }
        }
        Err(Rejected::new(self.whence.clone()))
    }
}

/// Uniform choice between same-typed strategies (the `prop_oneof!` macro).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        let pick = rng.uniform_usize(0, self.options.len() - 1);
        self.options[pick].generate(rng)
    }
}

impl std::fmt::Debug for Union<()> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                Ok(self.start + u * (self.end - self.start))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                Ok(lo + u * (hi - lo))
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Ok(self.start + (rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok(lo + (rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
