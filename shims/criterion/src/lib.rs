//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the harness API subset its `[[bench]]` targets use.
//! Semantics follow criterion's CLI contract: `cargo bench` passes
//! `--bench`, which selects measurement mode (warmup + timed samples,
//! min/mean/max printed per benchmark); any other invocation (e.g.
//! `cargo test` running the bench target) runs each benchmark body once as
//! a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier `group/function/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where benchmarks are named.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measurement settings shared by a run.
#[derive(Debug, Clone, Copy)]
struct Mode {
    /// Timed measurement (`--bench`) vs. run-once smoke test.
    measure: bool,
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            mode: Mode { measure },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.to_string(),
            sample_size: 10,
            mode: self.mode,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mode = self.mode;
        run_benchmark(&id.into_id(), 10, mode, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    mode: Mode,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.sample_size, self.mode, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.mode, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing happens per-benchmark here).
    pub fn finish(self) {}
}

/// Per-benchmark timer handle; the body calls [`Bencher::iter`] exactly
/// once with the routine to measure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine` (or runs it once in smoke-test mode).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if !self.mode.measure {
            black_box(routine());
            return;
        }
        // Warmup, then choose an iteration count targeting ~10 ms/sample so
        // sub-microsecond routines still get stable timings.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.samples_ns.push(per_iter);
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mode: Mode, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        mode,
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if !mode.measure {
        println!("{id}: ok (smoke test)");
        return;
    }
    let s = &mut bencher.samples_ns;
    if s.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = s[0];
    let max = s[s.len() - 1];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{id}  time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode { measure: false },
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("f", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode { measure: true },
        };
        let mut runs = 0u64;
        c.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        assert!(runs > 10, "{runs}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("eps", "1e-6").id, "eps/1e-6");
    }
}
