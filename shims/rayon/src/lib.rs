//! Vendored, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the API subset it uses. The "parallel" iterators here
//! are the corresponding **sequential** standard-library iterators: this
//! container exposes a single CPU core, so work-stealing threads would add
//! overhead without speedup — and sequential execution makes every
//! reduction order (including simulated-GPU `atomicAdd` accumulation)
//! bitwise deterministic, which the telemetry determinism tests rely on.
//!
//! Because the adaptors *are* `std` iterators, every chained combinator
//! (`map`, `zip`, `enumerate`, `for_each`, `collect::<Result<_, _>>`, …)
//! keeps its standard semantics, including item order.

use std::error::Error;
use std::fmt;

/// Mirrors `rayon::iter::IntoParallelIterator` (sequential here).
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mirrors `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a shared reference).
    type Item: 'data;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `self` by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mirrors `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (an exclusive reference).
    type Item: 'data;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates `self` by mutable reference.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mirrors `rayon::slice::ParallelSlice` (`.par_chunks()`).
pub trait ParallelSlice<T> {
    /// Chunked shared iteration.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Mirrors `rayon::slice::ParallelSliceMut` (`.par_chunks_mut()`).
pub trait ParallelSliceMut<T> {
    /// Chunked exclusive iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Number of threads of the global pool (always 1 in this stand-in).
pub fn current_num_threads() -> usize {
    1
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here; the type
/// exists so caller error plumbing compiles unchanged).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl Error for ThreadPoolBuildError {}

/// A scoped "pool". [`ThreadPool::install`] runs the closure on the calling
/// thread; the configured thread count is reported back unchanged so
/// backend telemetry can still label runs with the requested parallelism.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` within the pool (directly, on this thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The configured number of threads.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Mirrors `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num_threads` threads (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// Glob-import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chains_match_std_semantics() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let zipped: Vec<i32> = v.par_iter().zip(&doubled).map(|(a, b)| a + b).collect();
        assert_eq!(zipped, vec![3, 6, 9, 12]);

        let range: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(range, vec![0, 1, 4, 9]);
    }

    #[test]
    fn fallible_collect() {
        let ok: Result<Vec<i32>, &str> = [1, 2].par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), vec![1, 2]);
        let err: Result<Vec<i32>, &str> = [1, 2].par_iter().map(|_| Err("boom")).collect();
        assert!(err.is_err());
    }

    #[test]
    fn chunks_mut_order_preserved() {
        let mut out = [0usize; 7];
        out.par_chunks_mut(3)
            .enumerate()
            .for_each(|(block, chunk)| {
                for slot in chunk.iter_mut() {
                    *slot = block;
                }
            });
        assert_eq!(out, [0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn pool_reports_configured_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 21 * 2), 42);
        let auto = crate::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(auto.current_num_threads(), crate::current_num_threads());
    }
}
