//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *exact API subset it uses* behind the same paths
//! (`rand::prelude::*`, `rand::rngs::StdRng`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed
//! on every platform, which the telemetry determinism tests rely on.
//!
//! Nothing here is cryptographic; it is a simulation/test PRNG only.

/// A source of raw 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, `bool` fair coin, integers uniform
    /// over their full range).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(&mut || self.next_u64())
    }

    /// Samples uniformly from a range (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Produces one sample given a raw bit source.
    fn sample_from(next: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for f64 {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> f64 {
        // 53 high bits → uniform in [0, 1)
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> f32 {
        (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> u64 {
        next()
    }
}

impl StandardSample for u32 {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> u32 {
        (next() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_from(next: &mut dyn FnMut() -> u64) -> usize {
        next() as usize
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Produces one uniform sample given a raw bit source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_from(next);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_from(next);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (next() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                lo + (next() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i32, i64);

/// In-place slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// The deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 (the reference
    /// initialization recommended by its authors).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&n));
            let m = rng.random_range(0usize..4);
            assert!(m < 4);
        }
        // degenerate inclusive range is fine
        assert_eq!(rng.random_range(5usize..=5), 5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
