//! Vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking API
//! (`lock()` returns the guard directly). Poisoning is transparently
//! recovered — parking_lot has no poisoning, so neither does this shim.

use std::fmt;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` cannot fail, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
