//! The CG termination criterion ε (paper §IV-F, Fig. 3): how tolerance
//! affects iterations, runtime and accuracy — and why "the exact choice
//! is not critical".
//!
//! ```sh
//! cargo run --release --example epsilon_study
//! ```

use std::time::Instant;

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_planes::<f64>(&PlanesConfig::new(1024, 128, 31))?;
    println!(
        "{} points x {} features, linear kernel\n",
        data.points(),
        data.features()
    );
    println!(
        "{:>8}  {:>10}  {:>10}  {:>14}  {:>16}",
        "epsilon", "iterations", "runtime", "train accuracy", "rel. residual"
    );
    let mut knee_time = None;
    let mut last_time = 0.0;
    for exp in 1..=12 {
        let eps = 10f64.powi(-exp);
        let t0 = Instant::now();
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(eps)
            .with_backend(BackendSelection::openmp(None))
            .train(&data)?;
        let t = t0.elapsed().as_secs_f64();
        last_time = t;
        if exp == 7 {
            knee_time = Some(t);
        }
        println!(
            "{:>8}  {:>10}  {:>9.3}s  {:>13.2}%  {:>16.3e}",
            format!("1e-{exp:02}"),
            out.iterations,
            t,
            100.0 * accuracy(&out.model, &data),
            out.relative_residual,
        );
    }
    if let Some(k) = knee_time {
        println!(
            "\ntightening ε from 1e-07 to 1e-12 costs only {:.2}x runtime \
             (paper: ~1.83x over eight decades) — pick a small ε and stop worrying.",
            last_time / k
        );
    }
    Ok(())
}
