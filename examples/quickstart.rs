//! Quickstart: generate a synthetic classification problem, train an
//! LS-SVM, inspect the result, and round-trip the model through a
//! LIBSVM-compatible model file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, predict_labels, LsSvm};
use plssvm::data::model::{KernelSpec, SvmModel};
use plssvm::data::split::train_test_split;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A "planes" problem: two Gaussian clusters separated by a random
    //    hyperplane, 1 % label noise (the paper's synthetic workload).
    let data = generate_planes::<f64>(&PlanesConfig::new(1024, 64, 42))?;
    let (train, test) = train_test_split(&data, 0.2, true, 7)?;
    println!(
        "data: {} train / {} test points, {} features",
        train.points(),
        test.points(),
        train.features()
    );

    // 2. Train. Training an LS-SVM = solving one SPD linear system with
    //    CG; every training point becomes a support vector.
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Linear)
        .with_cost(1.0)
        .with_epsilon(1e-6)
        .with_backend(BackendSelection::openmp(None))
        .train(&train)?;
    println!(
        "trained with {} CG iterations (converged: {}, relative residual {:.2e})",
        out.iterations, out.converged, out.relative_residual
    );
    println!("timings: {}", out.times);

    // 3. Evaluate.
    println!(
        "train accuracy: {:.2}%  |  test accuracy: {:.2}%",
        100.0 * accuracy(&out.model, &train),
        100.0 * accuracy(&out.model, &test),
    );

    // 4. Save / load the LIBSVM-compatible model file.
    let path = std::env::temp_dir().join("plssvm_quickstart.model");
    out.model.save(&path)?;
    let reloaded = SvmModel::<f64>::load(&path)?;
    let labels = predict_labels(&reloaded, &test.x);
    println!(
        "model file round trip: {} -> {} predictions, first five: {:?}",
        path.display(),
        labels.len(),
        &labels[..5]
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
