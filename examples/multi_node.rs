//! Multi-node, heterogeneous multi-GPU training — the paper's §V
//! long-term goal, runnable today on the simulated cluster substrate.
//!
//! Trains the same linear-kernel problem on
//! * one A100,
//! * one node with four A100s,
//! * two nodes with mixed hardware (A100+P100 / 2×V100) over InfiniBand,
//!   with and without throughput-weighted load balancing,
//!
//! and shows that all configurations produce the identical model while the
//! simulated cost varies.
//!
//! ```sh
//! cargo run --release --example multi_node
//! ```

use plssvm::core::backend::simgpu::TilingConfig;
use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::LsSvm;
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};
use plssvm::simgpu::{hw, Backend as DeviceApi, Interconnect, NodeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_planes::<f64>(&PlanesConfig::new(512, 256, 77))?;
    let trainer = |backend| {
        LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(1e-8)
            .with_backend(backend)
    };

    let mixed_nodes = vec![
        NodeConfig {
            devices: vec![(hw::A100, DeviceApi::Cuda), (hw::P100, DeviceApi::Cuda)],
        },
        NodeConfig::homogeneous(hw::V100, DeviceApi::Cuda, 2),
    ];

    let configs: Vec<(&str, BackendSelection)> = vec![
        (
            "1x A100",
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ),
        (
            "1 node, 4x A100",
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 4),
        ),
        (
            "2 nodes, mixed, even split",
            BackendSelection::SimCluster {
                nodes: mixed_nodes.clone(),
                interconnect: Interconnect::HDR_INFINIBAND,
                tiling: TilingConfig::default(),
                balance: false,
            },
        ),
        (
            "2 nodes, mixed, balanced",
            BackendSelection::SimCluster {
                nodes: mixed_nodes.clone(),
                interconnect: Interconnect::HDR_INFINIBAND,
                tiling: TilingConfig::default(),
                balance: true,
            },
        ),
        (
            "2 nodes, mixed, balanced, 10GbE",
            BackendSelection::SimCluster {
                nodes: mixed_nodes,
                interconnect: Interconnect::TEN_GBE,
                tiling: TilingConfig::default(),
                balance: true,
            },
        ),
    ];

    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>10}",
        "configuration", "device time", "network", "total", "rho"
    );
    let mut reference: Option<f64> = None;
    for (name, backend) in configs {
        let out = trainer(backend).train(&data)?;
        let report = out.device.expect("device backend");
        let rho: f64 = out.model.rho;
        if let Some(r) = reference {
            assert!(
                (rho - r).abs() < 1e-7,
                "{name}: model diverged ({rho} vs {r})"
            );
        }
        reference.get_or_insert(rho);
        println!(
            "{:<34} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>10.5}",
            name,
            report.sim_parallel_time_s * 1e3,
            report.network_time_s * 1e3,
            report.total_sim_time_s() * 1e3,
            rho,
        );
    }
    println!(
        "\nEvery configuration computes the identical model (asserted above).\n\
         Balancing shifts features from the P100 to the A100; the slow network\n\
         only adds the per-iteration allreduce. At paper-plus scale (2^16 x 2^14,\n\
         see `figures multinode`) 4 nodes x 4 A100s reach ~16x on InfiniBand."
    );
    Ok(())
}
