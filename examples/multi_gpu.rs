//! Multi-GPU training via the feature-wise split (paper §III-C-5).
//!
//! Trains the same linear-kernel problem on 1–4 simulated A100 devices,
//! shows that the results are identical, and reports the simulated-time
//! speedup and the per-device memory reduction that lets larger-than-one-
//! GPU data sets be trained.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};
use plssvm::simgpu::{hw, Backend as DeviceApi};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_planes::<f64>(&PlanesConfig::new(512, 256, 99))?;
    println!(
        "training {} points x {} features, linear kernel, on simulated A100s\n",
        data.points(),
        data.features()
    );

    let mut baseline_time = None;
    let mut baseline_rho = None;
    println!(
        "{:>5}  {:>12}  {:>9}  {:>12}  {:>10}",
        "GPUs", "sim time", "speedup", "mem/GPU", "accuracy"
    );
    for devices in 1..=4usize {
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(1e-8)
            .with_backend(BackendSelection::sim_multi_gpu(
                hw::A100,
                DeviceApi::Cuda,
                devices,
            ))
            .train(&data)?;
        let report = out.device.expect("device backend");
        let t = report.sim_parallel_time_s;
        let speedup = baseline_time.get_or_insert(t).to_owned() / t;
        // identical model regardless of the split (linearity of the
        // feature-wise decomposition)
        let rho = out.model.rho;
        if let Some(base) = baseline_rho {
            let diff: f64 = rho - base;
            assert!(diff.abs() < 1e-8, "multi-device result diverged");
        }
        baseline_rho.get_or_insert(rho);
        println!(
            "{:>5}  {:>12}  {:>8.2}x  {:>9.1} KiB  {:>9.2}%",
            devices,
            format!("{:.3} ms", t * 1e3),
            speedup,
            report.peak_memory_per_device_bytes as f64 / 1024.0,
            100.0 * accuracy(&out.model, &data),
        );
    }
    println!(
        "\nThe paper reports 3.71x on four A100s at 2^16 x 2^14 (where the matvec\n\
         dominates the fixed per-iteration transfers far more than at this demo size),\n\
         and a memory drop from 8.15 GiB to 2.14 GiB per GPU."
    );

    // the polynomial and radial kernels are single-device, as in the paper
    let err = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.1 })
        .with_backend(BackendSelection::sim_multi_gpu(
            hw::A100,
            DeviceApi::Cuda,
            2,
        ))
        .train(&data)
        .unwrap_err();
    println!("\nRBF on two devices is rejected, as in the paper:\n  {err}");

    // the row-split extension lifts that restriction (data replicated,
    // output rows partitioned — every kernel parallelizes)
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.1 })
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::sim_multi_gpu_rows(
            hw::A100,
            DeviceApi::Cuda,
            2,
        ))
        .train(&data)?;
    println!(
        "…but the row-split extension runs it: {} on 2 devices, accuracy {:.2}%",
        out.backend_name,
        100.0 * accuracy(&out.model, &data)
    );
    Ok(())
}
