//! Hyperparameter selection — LIBSVM's `grid.py` workflow on the LS-SVM:
//! sweep `(C, γ)` with stratified cross-validation and train the final
//! model at the winner.
//!
//! ```sh
//! cargo run --release --example grid_search
//! ```

use plssvm::core::backend::BackendSelection;
use plssvm::core::model_selection::{grid_search, GridSearchConfig};
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::data::model::KernelSpec;
use plssvm::data::split::train_test_split;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a problem with overlap: the right (C, γ) genuinely matters
    let data = generate_planes::<f64>(
        &PlanesConfig::new(400, 8, 7)
            .with_cluster_sep(1.2)
            .with_flip_fraction(0.03),
    )?;
    let (train, test) = train_test_split(&data, 0.25, true, 3)?;
    println!(
        "grid search on {} train points ({} held out), RBF kernel\n",
        train.points(),
        test.points()
    );

    let template = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma: 1.0 })
        .with_epsilon(1e-6)
        .with_backend(BackendSelection::openmp(None));
    let config = GridSearchConfig {
        costs: vec![0.125, 1.0, 8.0, 64.0],
        gammas: vec![0.001, 0.01, 0.1, 1.0],
        folds: 4,
        seed: 11,
    };
    let result = grid_search(&train, &template, &config)?;

    println!("{:>8}  {:>8}  {:>12}", "C", "gamma", "CV accuracy");
    for point in &result.evaluated {
        let gamma = match point.kernel {
            KernelSpec::Rbf { gamma } => gamma,
            _ => unreachable!(),
        };
        let marker = if point == &result.best {
            "  <- best"
        } else {
            ""
        };
        println!(
            "{:>8}  {:>8}  {:>11.2}%{marker}",
            point.cost,
            gamma,
            100.0 * point.cv_accuracy
        );
    }

    // train the final model at the winner and evaluate held out
    let final_model = template
        .clone()
        .with_kernel(result.best.kernel)
        .with_cost(result.best.cost)
        .train(&train)?;
    println!(
        "\nfinal model at (C={}, {:?}): test accuracy {:.2}%",
        result.best.cost,
        result.best.kernel,
        100.0 * accuracy(&final_model.model, &test)
    );
    Ok(())
}
