//! The paper's real-world workload (§IV-D): SAT-6 airborne image
//! classification — man-made structures vs natural land cover.
//!
//! The original SAT-6 imagery is not redistributable, so this example uses
//! the SAT-6-like generator (same geometry: 28×28 pixels × 4 channels =
//! 3136 features; same class ratio) at a reduced patch count, scales all
//! features to [-1, 1] like the paper does with `svm-scale`, and trains
//! with the RBF kernel — the kernel the paper found best on SAT-6.
//!
//! ```sh
//! cargo run --release --example sat6_airborne
//! ```

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::data::model::KernelSpec;
use plssvm::data::sat6::{generate_sat6, Sat6Config};
use plssvm::data::scale::ScalingParams;
use plssvm::data::split::train_test_split;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SAT-6 real scale: 324 000 train + 81 000 test patches. Reduced here
    // to stay friendly to a single CPU core; geometry is the real one.
    let mut data = generate_sat6::<f64>(&Sat6Config::new(400, 2024).with_image_size(14))?;
    println!(
        "SAT-6-like data: {} patches x {} features ({} man-made / {} natural)",
        data.points(),
        data.features(),
        data.class_counts().1,
        data.class_counts().0,
    );

    // svm-scale to [-1, 1], fitted on the whole set like the paper's
    // preprocessing, then the 80/20 split
    let params = ScalingParams::fit(&data.x, -1.0, 1.0)?;
    params.apply(&mut data.x)?;
    let (train, test) = train_test_split(&data, 0.2, true, 3)?;

    let gamma = 1.0 / train.features() as f64; // LIBSVM default
    let out = LsSvm::new()
        .with_kernel(KernelSpec::Rbf { gamma })
        .with_cost(10.0)
        .with_epsilon(1e-6)
        .with_backend(BackendSelection::openmp(None))
        .train(&train)?;

    println!(
        "trained in {} CG iterations | timings: {}",
        out.iterations, out.times
    );
    println!(
        "train accuracy: {:.1}%  |  test accuracy: {:.1}%",
        100.0 * accuracy(&out.model, &train),
        100.0 * accuracy(&out.model, &test),
    );
    println!(
        "\nPaper (full SAT-6, radial kernel, one A100): 95% test accuracy in 23.5 min,\n\
         vs ThunderSVM 94% in 40.6 min — a 1.73x runtime advantage for the LS-SVM."
    );
    Ok(())
}
