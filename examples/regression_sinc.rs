//! LS-SVR regression (paper §V "regression tasks"): fit the classic
//! `sinc` benchmark with the RBF kernel.
//!
//! The least squares formulation makes this free: real-valued targets go
//! through the *identical* reduced linear system as classification — only
//! the prediction drops the sign function.
//!
//! ```sh
//! cargo run --release --example regression_sinc
//! ```

use plssvm::core::backend::BackendSelection;
use plssvm::core::regression::{mean_squared_error, predict_values, r_squared, LsSvr};
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_sinc, SincConfig};
use plssvm::simgpu::{hw, Backend as DeviceApi};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = generate_sinc::<f64>(&SincConfig::new(400, 42).with_noise(0.05))?;
    let test = generate_sinc::<f64>(&SincConfig::new(200, 43).with_noise(0.0))?;
    println!(
        "sinc regression: {} noisy training samples, {} clean test samples",
        train.points(),
        test.points()
    );

    let out = LsSvr::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
        .with_cost(10.0)
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::openmp(None))
        .train(&train)?;
    println!(
        "trained in {} CG iterations (converged: {})",
        out.iterations, out.converged
    );
    println!(
        "train MSE {:.2e} | test MSE {:.2e} | test R^2 {:.4}",
        mean_squared_error(&out.model, &train),
        mean_squared_error(&out.model, &test),
        r_squared(&out.model, &test),
    );

    // an ASCII view of the fit
    let mut grid = plssvm::data::dense::DenseMatrix::<f64>::zeros(61, 1);
    for (i, x) in (-30..=30).enumerate() {
        grid.set(i, 0, x as f64 / 3.0);
    }
    let values = predict_values(&out.model, &grid);
    println!("\n  f(x) over [-10, 10]   ('*' = prediction, '.' = true sinc)");
    for row in (0..12).rev() {
        let level = row as f64 / 10.0 - 0.25;
        let mut line = String::new();
        for (i, &v) in values.iter().enumerate() {
            let x = grid.get(i, 0);
            let truth = if x.abs() < 1e-9 { 1.0 } else { x.sin() / x };
            line.push(if (v - level).abs() < 0.05 {
                '*'
            } else if (truth - level).abs() < 0.05 {
                '.'
            } else {
                ' '
            });
        }
        println!("  {line}");
    }

    // the same model trains on a simulated device, multi-GPU included
    let gpu = LsSvr::new()
        .with_kernel(KernelSpec::Rbf { gamma: 0.5 })
        .with_cost(10.0)
        .with_epsilon(1e-8)
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .train(&train)?;
    println!(
        "\nsame fit on a simulated A100: {} iterations, {:.3} ms simulated device time",
        gpu.iterations,
        gpu.device.unwrap().sim_parallel_time_s * 1e3
    );
    Ok(())
}
