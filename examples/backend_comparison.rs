//! Runtime-selectable backends (paper §III): the same training problem on
//! the serial CPU reference, the multi-threaded "OpenMP" backend, and
//! simulated CUDA/OpenCL/SYCL devices across the hardware catalog of
//! Table I — identical results everywhere, different (simulated) cost.
//!
//! ```sh
//! cargo run --release --example backend_comparison
//! ```

use std::time::Instant;

use plssvm::core::backend::BackendSelection;
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_planes, PlanesConfig};
use plssvm::simgpu::{hw, Backend as DeviceApi};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate_planes::<f64>(&PlanesConfig::new(384, 96, 5))?;
    let trainer = |backend: BackendSelection| {
        LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(1e-8)
            .with_backend(backend)
    };

    println!("--- host backends (measured wall-clock) ---");
    let mut reference_rho = None;
    for backend in [BackendSelection::Serial, BackendSelection::openmp(None)] {
        let t0 = Instant::now();
        let out = trainer(backend).train(&data)?;
        let rho: f64 = out.model.rho;
        if let Some(r) = reference_rho {
            let d: f64 = rho - r;
            assert!(d.abs() < 1e-8, "backends disagree");
        }
        reference_rho.get_or_insert(rho);
        println!(
            "{:<24} {:>8.0} ms   acc {:.2}%   {} iterations",
            out.backend_name,
            t0.elapsed().as_secs_f64() * 1e3,
            100.0 * accuracy(&out.model, &data),
            out.iterations,
        );
    }

    println!("\n--- simulated devices (Table I style, simulated time) ---");
    for spec in hw::TABLE1_GPUS {
        for api in [DeviceApi::Cuda, DeviceApi::OpenCl, DeviceApi::SyclHip] {
            if !api.supports(spec) {
                continue;
            }
            let out = trainer(BackendSelection::sim_gpu((*spec).clone(), api)).train(&data)?;
            let rho: f64 = out.model.rho;
            assert!((rho - reference_rho.unwrap()).abs() < 1e-8);
            let report = out.device.unwrap();
            println!(
                "{:<30} {:<15} {:>10.3} ms simulated",
                spec.name,
                api.name(),
                report.sim_parallel_time_s * 1e3,
            );
        }
    }
    println!(
        "\nEvery backend produces the same model (asserted above); only the cost\n\
         profile differs — that is the paper's portability argument."
    );
    Ok(())
}
