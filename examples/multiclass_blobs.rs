//! Multi-class classification (paper §V "multi-class classifications"):
//! one-vs-one and one-vs-rest LS-SVM decompositions on Gaussian blobs,
//! plus the robust *weighted* LS-SVM under label noise.
//!
//! ```sh
//! cargo run --release --example multiclass_blobs
//! ```

use plssvm::core::multiclass::{train_multiclass, MultiClassStrategy};
use plssvm::core::svm::{accuracy, LsSvm};
use plssvm::core::weighted::train_robust;
use plssvm::data::model::KernelSpec;
use plssvm::data::synthetic::{generate_blobs, generate_planes, BlobsConfig, PlanesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- multi-class: four Gaussian blobs ---
    let data = generate_blobs::<f64>(&BlobsConfig::new(400, 8, 4, 7).with_separation(5.0))?;
    println!(
        "blobs: {} points x {} features, {} classes {:?}",
        data.points(),
        data.features(),
        data.num_classes(),
        data.classes
    );
    let trainer = LsSvm::new().with_epsilon(1e-8);
    for strategy in [MultiClassStrategy::OneVsOne, MultiClassStrategy::OneVsRest] {
        let model = train_multiclass(&data, &trainer, strategy)?;
        println!(
            "  {:<4} -> {} binary models, training accuracy {:.2}%",
            strategy.name(),
            model.num_models(),
            100.0 * model.accuracy(&data)
        );
    }

    // the container file round-trips like a normal model file
    let model = train_multiclass(&data, &trainer, MultiClassStrategy::OneVsOne)?;
    let path = std::env::temp_dir().join("plssvm_blobs.model");
    model.save(&path)?;
    let reloaded = plssvm::core::multiclass::MultiClassModel::<f64>::load(&path)?;
    assert_eq!(model.predict(&data.x), reloaded.predict(&data.x));
    println!("  container file round trip ok: {}", path.display());
    std::fs::remove_file(&path).ok();

    // --- robust weighted LS-SVM (Suykens et al. [25]) under label noise ---
    println!("\nweighted LS-SVM vs 8% label noise (binary):");
    let noisy = generate_planes::<f64>(
        &PlanesConfig::new(300, 6, 9)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.08),
    )?;
    let clean = generate_planes::<f64>(
        &PlanesConfig::new(300, 6, 9)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )?;
    let out = train_robust(
        &noisy,
        &LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(1e-8),
    )?;
    println!(
        "  stage 1 (unweighted): accuracy on clean labels {:.2}%",
        100.0 * accuracy(&out.unweighted.model, &clean)
    );
    println!(
        "  stage 2 (weighted):   accuracy on clean labels {:.2}%  ({} points downweighted)",
        100.0 * accuracy(&out.weighted.model, &clean),
        out.downweighted
    );
    Ok(())
}
