//! PLSSVM — Parallel Least Squares Support Vector Machine.
//!
//! Umbrella crate re-exporting the workspace members. See the individual
//! crates for details:
//!
//! * [`plssvm_core`] — the LS-SVM trainer (kernels, CG, backends),
//! * [`plssvm_data`] — matrices, LIBSVM file formats, generators,
//! * [`plssvm_simgpu`] — the simulated GPGPU device substrate,
//! * [`plssvm_smo`] — the LIBSVM/ThunderSVM-style SMO baselines.

pub use plssvm_core as core;
pub use plssvm_data as data;
pub use plssvm_simgpu as simgpu;
pub use plssvm_smo as smo;

pub use plssvm_core::prelude;
